//! Release-only perf smoke for the two budgets this repo's perf PRs
//! pinned at the `SystemSize::Huge` rung:
//!
//! * **Epoch-loop budget** (DESIGN.md §15): a KGreedy run — a trivial
//!   policy, so the measurement is the fast-forward/dirty-set/hot-state
//!   engine itself — must stay far under the pre-§15 full-rescan cost.
//!   Locally the warm loop sits at ~22 ms; the 150 ms bar is CI headroom
//!   that a return to per-epoch `jobs × types` rescans (≈50 ms local,
//!   growing with scale) or any quadratic regression blows through.
//! * **Bounded-candidate invariant** (DESIGN.md §14): `MQB-Approx` must
//!   never run slower than exact MQB — approximation is allowed to cost
//!   accuracy, never time. Locally ~0.20 s vs ~0.33 s; the assert is the
//!   plain inequality on min-of-N wall times, the same invariant the
//!   scale-bench recording enforces per rung.
//!
//! Debug builds skip this (a Huge instance in debug takes minutes); CI
//! runs it in the `--release` step alongside the other Huge smokes.

use std::time::{Duration, Instant};

use fhs_core::{make_policy, Algorithm};
use fhs_sim::{engine, Mode, RunOptions, Workspace};
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};

/// Minimum wall time of `samples` warm runs of `algo` on the instance.
fn min_run_time(
    job: &kdag::KDag,
    cfg: &fhs_sim::MachineConfig,
    algo: Algorithm,
    samples: usize,
) -> Duration {
    let mut ws = Workspace::new();
    let mut policy = make_policy(algo);
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        let out = engine::run_in(
            &mut ws,
            job,
            cfg,
            policy.as_mut(),
            Mode::NonPreemptive,
            &RunOptions::seeded(2),
        );
        best = best.min(t0.elapsed());
        assert!(out.makespan > 0, "{}", algo.label());
    }
    best
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "Huge instances are exercised in --release (its own CI step)"
)]
fn huge_perf_budgets() {
    // Same instance the scale bench's Huge rung records: layered IR,
    // K = 4, seed 2 → ~110k tasks.
    let spec = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Huge, 4);
    let (job, cfg) = spec.sample(2);
    assert!(job.num_tasks() >= 100_000);

    let kgreedy = min_run_time(&job, &cfg, Algorithm::KGreedy, 5);
    let mqb = min_run_time(&job, &cfg, Algorithm::Mqb, 3);
    let approx = min_run_time(&job, &cfg, Algorithm::MqbApprox, 3);
    println!(
        "huge perf smoke: kgreedy {kgreedy:?} | mqb {mqb:?} | mqb-approx {approx:?} \
         ({} tasks)",
        job.num_tasks()
    );

    assert!(
        kgreedy < Duration::from_millis(150),
        "Huge KGreedy epoch loop took {kgreedy:?} (local budget 27 ms, CI bar \
         150 ms) — fast-forward / dirty-set / hot-state regression?"
    );
    assert!(
        approx <= mqb,
        "MQB-Approx ({approx:?}) ran slower than exact MQB ({mqb:?}) on Huge — \
         the bounded-candidate path must never cost more time than the index"
    );
}
