//! Schedule-quality bound for `MQB-Approx` (the bounded-candidate MQB
//! variant): capping each contested pick at `DEFAULT_APPROX_CAP`
//! candidates — taken top-c by total descendant value — must cost almost
//! nothing in completion-time ratio against exact MQB on the paper's
//! workload families, while staying inside the (K+1)-competitive envelope
//! outright.
//!
//! The bound is an empirical pin, not a theorem: the measured mean-ratio
//! gap on the seeded instance sets below is well under 2%, and the test
//! fails if a selection change pushes the approximation past 5% — loose
//! enough to survive fp-order-preserving refactors, tight enough to catch
//! a broken candidate ordering (e.g. dropping the `d_total` sort would
//! blow the gap past 30% on layered IR).

use fhs_core::mqb::{InfoModel, Mqb, MqbTuning};
use fhs_core::registry::{make_policy, Algorithm, DEFAULT_APPROX_CAP};
use fhs_sim::{metrics, Mode};
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};

/// Mean completion-time ratio of `policy` over `instances` seeded samples.
fn mean_ratio(
    spec: &WorkloadSpec,
    mode: Mode,
    instances: u64,
    mut make: impl FnMut() -> Box<dyn fhs_sim::Policy>,
) -> f64 {
    let mut sum = 0.0;
    for seed in 0..instances {
        let (job, cfg) = spec.sample(seed);
        let mut p = make();
        sum += metrics::evaluate(&job, &cfg, p.as_mut(), mode, seed).ratio;
    }
    sum / instances as f64
}

fn exact() -> Box<dyn fhs_sim::Policy> {
    Box::new(Mqb::default())
}

fn approx() -> Box<dyn fhs_sim::Policy> {
    Box::new(Mqb::with_tuning(
        InfoModel::default(),
        MqbTuning {
            max_candidates: Some(DEFAULT_APPROX_CAP),
            ..MqbTuning::default()
        },
    ))
}

/// Small/Medium instances across families: queues rarely cross the cap,
/// so the approximation must track exact MQB essentially everywhere
/// (≤ 1% mean-ratio gap), and both stay (K+1)-competitive.
#[test]
fn approx_tracks_exact_mqb_on_small_and_medium() {
    for (family, size, instances) in [
        (Family::Ep, SystemSize::Small, 20),
        (Family::Ir, SystemSize::Small, 20),
        (Family::Tree, SystemSize::Medium, 8),
        (Family::Ir, SystemSize::Medium, 8),
    ] {
        let spec = WorkloadSpec::new(family, Typing::Layered, size, 4);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let e = mean_ratio(&spec, mode, instances, exact);
            let a = mean_ratio(&spec, mode, instances, approx);
            println!(
                "{:?} {:?} {:?}: exact {e:.4} approx {a:.4} gap {:+.2}%",
                family,
                size,
                mode,
                100.0 * (a / e - 1.0)
            );
            assert!(
                a <= e * 1.01 + 1e-9,
                "{family:?} {size:?} {mode:?}: approx mean ratio {a:.4} strays >1% above exact {e:.4}"
            );
            assert!(
                (1.0..5.0).contains(&a),
                "approx left the competitive envelope"
            );
        }
    }
}

/// Large instances: queues exceed the cap on many contested rounds, so
/// the cap genuinely bites — the pinned bound is the 5% empirical
/// envelope (measured gap < 2%).
#[test]
fn approx_quality_bound_holds_where_the_cap_bites() {
    let spec = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Large, 4);
    for mode in [Mode::NonPreemptive, Mode::Preemptive] {
        let e = mean_ratio(&spec, mode, 4, exact);
        let a = mean_ratio(&spec, mode, 4, approx);
        println!(
            "Large Ir {:?}: exact {e:.4} approx {a:.4} gap {:+.2}%",
            mode,
            100.0 * (a / e - 1.0)
        );
        assert!(
            a <= e * 1.05 + 1e-9,
            "Large Ir {mode:?}: approx mean ratio {a:.4} strays >5% above exact {e:.4}"
        );
    }
    // The registry-built policy is the same configuration.
    let (job, cfg) = spec.sample(0);
    let mut reg = make_policy(Algorithm::MqbApprox);
    let mut own = approx();
    let r1 = metrics::evaluate(&job, &cfg, reg.as_mut(), Mode::NonPreemptive, 0);
    let r2 = metrics::evaluate(&job, &cfg, own.as_mut(), Mode::NonPreemptive, 0);
    assert_eq!(
        r1.makespan, r2.makespan,
        "registry MqbApprox differs from cap tuning"
    );
}
