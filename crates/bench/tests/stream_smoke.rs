//! Release-only smoke test for the session engine's streaming path: a
//! bounded Poisson job stream through one long-lived session per policy,
//! with wall-clock and correctness guards.
//!
//! This is the steady-state shape the session engine exists for — many
//! jobs through one machine, runtimes and policy values recycled across
//! retirements — exercised end to end at a scale the unit tests don't
//! reach. Guards:
//!
//! * **Retirement**: every admitted job retires; per-job metrics respect
//!   their bounds (response ≥ isolated lower bound, slowdown ≥ 1).
//! * **Work conservation**: machine busy time equals the job set's total
//!   work for every policy and inter-job discipline.
//! * **Determinism**: a replay reproduces per-job finish times bit for
//!   bit.
//! * **Wall clock**: the whole grid (six policies × three inter-job
//!   disciplines) finishes within a generous budget a near-linear
//!   session loop clears easily but a per-epoch rescan regression
//!   cannot.
//!
//! Debug builds skip this (CI runs it in the `--release` step alongside
//! `huge_smoke` and the allocation regressions).

use std::time::{Duration, Instant};

use fhs_core::ALL_ALGORITHMS;
use fhs_experiments::stream::{run_stream, Arrivals, StreamCell, StreamConfig};
use fhs_sim::{Mode, ALL_INTER_JOB_POLICIES};
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "streaming smoke is exercised in --release (its own CI step)"
)]
fn streaming_grid_end_to_end() {
    let config = StreamConfig {
        spec: WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Small, 4),
        jobs: 96,
        arrivals: Arrivals::Poisson { mean_gap: 6.0 },
        seed: 0xF10,
    };
    let t0 = Instant::now();
    let mut total_work = None;
    for algo in ALL_ALGORITHMS {
        for inter in ALL_INTER_JOB_POLICIES {
            for (mode, quantum) in [(Mode::NonPreemptive, None), (Mode::Preemptive, Some(1))] {
                let cell = StreamCell {
                    algo,
                    mode,
                    quantum,
                    inter,
                };
                let out = run_stream(&config, &cell);
                assert_eq!(
                    out.jobs.len(),
                    config.jobs,
                    "{} {:?} {:?}: jobs lost",
                    algo.label(),
                    mode,
                    inter
                );
                for j in &out.jobs {
                    assert!(
                        j.response() >= j.lower_bound,
                        "{}: response beat the isolated lower bound",
                        algo.label()
                    );
                    assert!(j.slowdown() >= 1.0);
                }
                // Work conservation: every cell streams the same job set.
                let work = out.stream.work;
                match total_work {
                    None => total_work = Some(work),
                    Some(w) => assert_eq!(work, w, "{}: job set drifted", algo.label()),
                }
                let replay = run_stream(&config, &cell);
                let a: Vec<(u64, u64)> = out.jobs.iter().map(|j| (j.id, j.finish)).collect();
                let b: Vec<(u64, u64)> = replay.jobs.iter().map(|j| (j.id, j.finish)).collect();
                assert_eq!(
                    a,
                    b,
                    "{} {:?} {:?}: replay diverged",
                    algo.label(),
                    mode,
                    inter
                );
            }
        }
    }
    let elapsed = t0.elapsed();
    println!(
        "stream smoke: 36 cells × {} jobs (×2 for replays) in {elapsed:?}",
        config.jobs
    );
    assert!(
        elapsed < Duration::from_secs(120),
        "streaming grid took {elapsed:?} — scaling regression?"
    );
}
