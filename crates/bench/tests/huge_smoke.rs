//! Release-only smoke test for the `SystemSize::Huge` frontier: the full
//! analysis pipeline — generate → streaming transitive reduction →
//! [`Artifacts`] → ShiftBT init → KGreedy and MQB engine runs — on a
//! ~110k-task layered IR instance.
//!
//! Two regression guards ride along:
//!
//! * **Memory**: the streaming reduction must stay far below the dense
//!   n²-bit reachability matrix the pre-streaming implementation built
//!   (~1.5 GB at this n). A counting allocator bounds its total
//!   allocation traffic to a small multiple of the instance size.
//! * **Wall clock**: each stage gets a generous budget that a linear or
//!   near-linear implementation clears by an order of magnitude, but a
//!   quadratic regression (≈1000× at this scale) cannot.
//!
//! Debug builds skip this (a Huge instance in debug takes minutes); CI
//! runs it in the `--release` step alongside the allocation regressions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fhs_core::{make_policy, Algorithm};
use fhs_sim::{engine, Mode, Policy, RunOptions, Workspace};
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};
use kdag::precompute::Artifacts;
use kdag::reduction::transitive_reduction;

thread_local! {
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// [`System`] plus a per-thread count of bytes requested (growth
/// included, frees never subtracted) — same probe as `alloc_regression`.
struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the
// bookkeeping allocates nothing itself and `try_with` tolerates
// thread-teardown allocations.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = BYTES.try_with(|b| b.set(b.get() + layout.size() as u64));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = BYTES.try_with(|b| b.set(b.get() + layout.size() as u64));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let grown = new_size.saturating_sub(layout.size()) as u64;
        let _ = BYTES.try_with(|b| b.set(b.get() + grown));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn probe() -> u64 {
    BYTES.with(|b| b.get())
}

/// Runs `f`, returning its result plus elapsed time and bytes allocated.
fn staged<T>(f: impl FnOnce() -> T) -> (T, Duration, u64) {
    let b0 = probe();
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed(), probe() - b0)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "Huge instances are exercised in --release (its own CI step)"
)]
fn huge_pipeline_end_to_end() {
    // Same instance the scale bench's Huge rung records: layered IR,
    // K = 4, seed 2 → ~110k tasks.
    let spec = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Huge, 4);
    let ((job, cfg), gen_t, _) = staged(|| spec.sample(2));
    assert!(
        job.num_tasks() >= 100_000,
        "Huge rung must be a ≥100k-task instance, got {}",
        job.num_tasks()
    );

    let (reduced, reduce_t, reduce_bytes) = staged(|| transitive_reduction(&job));
    assert_eq!(reduced.num_tasks(), job.num_tasks());
    assert!(reduced.num_edges() <= job.num_edges());
    // The dense reachability matrix of the pre-streaming reduction is
    // n²/8 bytes ≈ 1.5 GB here. The streaming pass holds O(n + E·d̄)
    // state; 64 MB of total allocation traffic is already generous for
    // this instance and two orders of magnitude under the dense matrix.
    let dense_matrix = (job.num_tasks() as u64).pow(2) / 8;
    assert!(
        reduce_bytes < 64 << 20,
        "streaming reduction allocated {reduce_bytes} bytes (dense matrix \
         would be {dense_matrix}) — memory regression?"
    );

    let (artifacts, art_t, _) = staged(|| Arc::new(Artifacts::compute(&job)));

    let mut shiftbt = fhs_core::shiftbt::ShiftBT::default();
    let (_, shiftbt_t, _) = staged(|| {
        shiftbt.init_with_artifacts(&job, &cfg, 2, &artifacts);
    });
    assert_eq!(shiftbt.bottleneck_order.len(), 4);
    assert_eq!(shiftbt.rank_table().len(), job.num_tasks());

    let run = |algo: Algorithm| {
        let mut ws = Workspace::new();
        let mut policy = make_policy(algo);
        let (out, t, _) = staged(|| {
            engine::run_in(
                &mut ws,
                &job,
                &cfg,
                policy.as_mut(),
                Mode::NonPreemptive,
                &RunOptions::seeded(2),
            )
        });
        assert!(out.makespan > 0, "{}", algo.label());
        (out.makespan, t)
    };
    let (kg_mk, kg_t) = run(Algorithm::KGreedy);
    let (mqb_mk, mqb_t) = run(Algorithm::Mqb);
    // Both schedules must at least cover the critical path.
    let span_floor = artifacts
        .spans()
        .iter()
        .copied()
        .max()
        .expect("nonempty instance");
    assert!(kg_mk >= span_floor && mqb_mk >= span_floor);

    println!(
        "huge smoke: {} tasks, {} edges | gen {gen_t:?} reduce {reduce_t:?} \
         artifacts {art_t:?} shiftbt {shiftbt_t:?} kgreedy {kg_t:?} mqb {mqb_t:?}",
        job.num_tasks(),
        job.num_edges(),
    );

    // Wall-clock guards: analysis stages run in tens of milliseconds and
    // MQB in ~10 s on a single shared core; a quadratic (or worse)
    // regression at n ≈ 1.1 × 10⁵ blows through these by orders of
    // magnitude, while machine noise cannot.
    let analysis = gen_t + reduce_t + art_t + shiftbt_t;
    assert!(
        analysis < Duration::from_secs(30),
        "analysis pipeline took {analysis:?} on Huge — scaling regression?"
    );
    assert!(
        kg_t < Duration::from_secs(60),
        "KGreedy run took {kg_t:?} on Huge — scaling regression?"
    );
    // Post-PR-7 (incremental, index-pruned selection) an exact MQB run
    // sits at ~0.3 s here; 30 s is pure CI headroom and still two orders
    // of magnitude under the old quadratic scan's blowup trajectory.
    assert!(
        mqb_t < Duration::from_secs(30),
        "MQB run took {mqb_t:?} on Huge — scaling regression?"
    );
}
