//! Release-only smoke test for the PR-7 tentpole: **exact MQB on a
//! ~110k-task Huge instance in well under a second**, via the incremental
//! dominance-pruned selection index (DESIGN.md §14).
//!
//! Guards, in order of what they'd catch:
//!
//! * **Wall clock**: the cold run must clear 10 s — measured ~0.33 s on a
//!   shared CI core, while the pre-index quadratic scan took ~11 s; a
//!   selection-layer regression toward O(m²) trips this immediately.
//! * **Pruning effectiveness**: the selection counters must show the
//!   index discarding the overwhelming majority of candidate evaluations
//!   (pruned ≫ evaluated) and maintaining itself by journal diffs
//!   (exactly one cold snapshot, nonzero diff events). A bug that
//!   silently re-routed contested rounds to the flat scan would keep the
//!   schedule correct but fail here long before the wall-clock budget.
//! * **Allocation**: a warm rerun on the reused workspace allocates zero
//!   bytes — the index's slab, frontier, key map and journal cursors all
//!   run out of retained capacity (same contract as `alloc_regression`,
//!   asserted here at the scale where a per-pick or per-group allocation
//!   would actually hurt).
//!
//! Debug builds skip this; CI runs it as its own `--release` step.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::{Duration, Instant};

use fhs_core::{make_policy, Algorithm};
use fhs_sim::{engine, Mode, RunOptions, Workspace};
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};

thread_local! {
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// [`System`] plus a per-thread count of bytes requested (growth
/// included, frees never subtracted) — same probe as `alloc_regression`.
struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the
// bookkeeping allocates nothing itself and `try_with` tolerates
// thread-teardown allocations.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = BYTES.try_with(|b| b.set(b.get() + layout.size() as u64));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = BYTES.try_with(|b| b.set(b.get() + layout.size() as u64));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let grown = new_size.saturating_sub(layout.size()) as u64;
        let _ = BYTES.try_with(|b| b.set(b.get() + grown));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn probe() -> u64 {
    BYTES.with(|b| b.get())
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "Huge instances are exercised in --release (its own CI step)"
)]
fn huge_exact_mqb_is_subsecond_pruned_and_warm_allocation_free() {
    fhs_sim::instrument::register_alloc_probe(probe);
    // The scale bench's Huge rung: layered IR, K = 4, seed 2 → ~110k tasks.
    let spec = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Huge, 4);
    let (job, cfg) = spec.sample(2);
    assert!(
        job.num_tasks() >= 100_000,
        "Huge rung must be a ≥100k-task instance, got {}",
        job.num_tasks()
    );

    let mut ws = Workspace::new();
    let mut policy = make_policy(Algorithm::Mqb);
    let t0 = Instant::now();
    let cold = engine::run_in(
        &mut ws,
        &job,
        &cfg,
        policy.as_mut(),
        Mode::NonPreemptive,
        &RunOptions::seeded(2),
    );
    let cold_t = t0.elapsed();

    let sel = cold.stats.selection;
    println!(
        "huge mqb smoke: {} tasks | cold {cold_t:?} | evaluated {} pruned {} \
         ({}x) | diffs {} rebuilds {}",
        job.num_tasks(),
        sel.candidates_evaluated,
        sel.candidates_pruned,
        sel.candidates_pruned / sel.candidates_evaluated.max(1),
        sel.diff_events,
        sel.cold_snapshots,
    );

    // Wall clock: ~0.33 s measured; 10 s is CI headroom, the old
    // quadratic scan's ~11 s cannot clear it.
    assert!(
        cold_t < Duration::from_secs(10),
        "exact MQB took {cold_t:?} on Huge — selection scaling regression?"
    );
    // The index must carry the run: one cold snapshot at attach, journal
    // diffs from then on, and the dominance frontier discarding the
    // overwhelming majority of the quadratic scan's candidate visits.
    assert_eq!(sel.cold_snapshots, 1, "index was rebuilt mid-run");
    assert!(sel.diff_events > 0, "journal replay never ran");
    assert!(sel.candidates_evaluated > 0);
    assert!(
        sel.candidates_pruned > 50 * sel.candidates_evaluated,
        "index pruned only {}× the evaluated candidates on Huge — \
         dominance frontier degenerating?",
        sel.candidates_pruned / sel.candidates_evaluated.max(1)
    );

    // Warm rerun: identical schedule, zero bytes through the epoch loop.
    let warm = engine::run_in(
        &mut ws,
        &job,
        &cfg,
        policy.as_mut(),
        Mode::NonPreemptive,
        &RunOptions::seeded(2),
    );
    assert_eq!(warm.makespan, cold.makespan, "warm replay diverged");
    assert_eq!(warm.stats.workspace_reuses, 1);
    assert_eq!(
        warm.stats.epoch_bytes, 0,
        "warm Huge MQB epoch loop allocated on a reused workspace"
    );
}
