//! Allocation-regression proof for the steady-state execution layer: on a
//! reused [`Workspace`], the engine's epoch loop allocates **zero bytes**.
//!
//! A counting [`GlobalAlloc`] wrapper around [`System`] tracks per-thread
//! allocated bytes; the engine samples it around its epoch loop through
//! the probe registered with
//! [`fhs_sim::instrument::register_alloc_probe`] and reports the delta as
//! `RunStats::epoch_bytes`. The first run on a workspace is allowed (and
//! expected) to allocate — every buffer is sized then; re-running the same
//! instance on the warm workspace with a warm policy must stay at exactly
//! zero, for every scheduler and both modes.
//!
//! The byte accounting only counts *allocations* (growth included),
//! never frees, so the assertion cannot be masked by alloc/free pairs.
//! Asserted in `--release` only (its own CI step); the default debug
//! `cargo test` skips it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use fhs_core::{make_policy, ALL_ALGORITHMS};
use fhs_sim::{engine, Mode, RunOptions, Workspace};

thread_local! {
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// [`System`], plus a per-thread count of bytes requested. Thread-local
/// counters keep the probe exact under the test harness's and the
/// `fhs-par` pool's concurrency, with no atomic traffic on the hot path.
struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the only
// addition is bookkeeping, which allocates nothing itself (the
// thread-local is const-initialized) and uses `try_with` so late
// allocations during thread teardown never panic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = BYTES.try_with(|b| b.set(b.get() + layout.size() as u64));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = BYTES.try_with(|b| b.set(b.get() + layout.size() as u64));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let grown = new_size.saturating_sub(layout.size()) as u64;
        let _ = BYTES.try_with(|b| b.set(b.get() + grown));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn probe() -> u64 {
    BYTES.with(|b| b.get())
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation accounting is asserted in --release (its own CI step)"
)]
fn epoch_loop_allocates_zero_bytes_on_reused_workspaces() {
    fhs_sim::instrument::register_alloc_probe(probe);
    let (job, cfg) = fhs_bench::medium_ir();
    for algo in ALL_ALGORITHMS {
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let mut ws = Workspace::new();
            let mut policy = make_policy(algo);
            let cold = engine::run_in(
                &mut ws,
                &job,
                &cfg,
                policy.as_mut(),
                mode,
                &RunOptions::seeded(1),
            );
            assert_eq!(cold.stats.workspace_cold_inits, 1);
            assert!(
                cold.stats.epoch_bytes > 0,
                "{} {mode:?}: cold epoch loop reported zero bytes — probe dead?",
                algo.label()
            );
            for rerun in 0..3 {
                let warm = engine::run_in(
                    &mut ws,
                    &job,
                    &cfg,
                    policy.as_mut(),
                    mode,
                    &RunOptions::seeded(1),
                );
                assert_eq!(warm.stats.workspace_reuses, 1);
                assert_eq!(warm.makespan, cold.makespan, "{} {mode:?}", algo.label());
                assert_eq!(
                    warm.stats.epoch_bytes,
                    0,
                    "{} {mode:?} rerun {rerun}: epoch loop allocated on a warm workspace",
                    algo.label()
                );
            }
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation accounting is asserted in --release (its own CI step)"
)]
fn heterogeneous_grow_then_shrink_shapes_stay_allocation_free_when_warm() {
    // The session engine's steady-state promise: a workspace that has
    // seen a set of job/machine shapes once re-runs ANY of them without
    // allocating — including shrinking to a much smaller instance and
    // growing back (capacity is retained across `resize`-downs), and
    // hopping between differently-shaped machines (Small 1–5 procs/type
    // vs Medium 10–20). Every buffer is high-watermark sized; only a
    // never-seen dimension may allocate.
    fhs_sim::instrument::register_alloc_probe(probe);
    let shapes = [
        ("medium-ir", fhs_bench::medium_ir()),
        ("small-ep", fhs_bench::small_ep()),
        ("medium-tree", fhs_bench::medium_tree()),
    ];
    for algo in ALL_ALGORITHMS {
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let mut ws = Workspace::new();
            let mut policy = make_policy(algo);
            // Cold pass: first visit of each shape sizes the buffers
            // (allocations expected and allowed).
            let cold: Vec<u64> = shapes
                .iter()
                .map(|(_, (job, cfg))| {
                    engine::run_in(
                        &mut ws,
                        job,
                        cfg,
                        policy.as_mut(),
                        mode,
                        &RunOptions::seeded(1),
                    )
                    .makespan
                })
                .collect();
            // Warm passes: shrink (big → small), grow back, and cross
            // between machine shapes — zero bytes in the epoch loop,
            // same makespans as the cold pass.
            for (round, &i) in [1usize, 0, 2, 0, 1].iter().enumerate() {
                let (name, (job, cfg)) = &shapes[i];
                let warm = engine::run_in(
                    &mut ws,
                    job,
                    cfg,
                    policy.as_mut(),
                    mode,
                    &RunOptions::seeded(1),
                );
                assert_eq!(warm.stats.workspace_reuses, 1);
                assert_eq!(
                    warm.makespan,
                    cold[i],
                    "{} {mode:?} {name}: warm replay diverged",
                    algo.label()
                );
                assert_eq!(
                    warm.stats.epoch_bytes,
                    0,
                    "{} {mode:?} {name} round {round}: epoch loop allocated on a \
                     warm workspace after a shape change",
                    algo.label()
                );
            }
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation accounting is asserted in --release (its own CI step)"
)]
fn per_quantum_cadence_is_also_allocation_free_when_warm() {
    fhs_sim::instrument::register_alloc_probe(probe);
    let (job, cfg) = fhs_bench::small_ep();
    for algo in ALL_ALGORITHMS {
        let mut ws = Workspace::new();
        let mut policy = make_policy(algo);
        let mut opts = RunOptions::seeded(3);
        opts.quantum = Some(1);
        let cold = engine::run_in(
            &mut ws,
            &job,
            &cfg,
            policy.as_mut(),
            Mode::Preemptive,
            &opts,
        );
        let warm = engine::run_in(
            &mut ws,
            &job,
            &cfg,
            policy.as_mut(),
            Mode::Preemptive,
            &opts,
        );
        assert_eq!(warm.makespan, cold.makespan, "{}", algo.label());
        assert_eq!(
            warm.stats.epoch_bytes,
            0,
            "{} per-quantum: epoch loop allocated on a warm workspace",
            algo.label()
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation accounting is asserted in --release (its own CI step)"
)]
fn warm_shiftbt_init_stays_within_byte_budget() {
    use fhs_core::shiftbt::ShiftBT;
    use fhs_sim::Policy;
    use kdag::precompute::Artifacts;
    use std::sync::Arc;

    let (job, cfg) = fhs_bench::medium_ir();
    let artifacts = Arc::new(Artifacts::compute(&job));
    let mut policy = ShiftBT::default();
    // Cold init sizes every scratch buffer (relaxation calendars, ready
    // bitsets, EDD orders, cached sequences).
    policy.init_with_artifacts(&job, &cfg, 1, &artifacts);
    let cold_order = policy.bottleneck_order.clone();
    let cold_rank = policy.rank_table().to_vec();
    // Warm re-init on the same instance must run entirely out of the
    // retained scratch: zero heap traffic, same answer. The budget is a
    // hard zero — any regression that reintroduces a per-relaxation or
    // per-round allocation trips it immediately.
    for rerun in 0..3 {
        let before = probe();
        policy.init_with_artifacts(&job, &cfg, 1, &artifacts);
        let bytes = probe() - before;
        assert_eq!(
            bytes, 0,
            "warm ShiftBT init allocated {bytes} bytes on rerun {rerun}"
        );
        assert_eq!(policy.bottleneck_order, cold_order, "rerun {rerun}");
        assert_eq!(policy.rank_table(), &cold_rank[..], "rerun {rerun}");
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation accounting is asserted in --release (its own CI step)"
)]
fn observed_epoch_loop_is_also_allocation_free_when_warm() {
    use fhs_sim::ObsConfig;

    fhs_sim::instrument::register_alloc_probe(probe);
    let (job, cfg) = fhs_bench::medium_ir();
    // Every recording channel on: utilization timeline, latency + depth
    // histograms, and the bounded event trace. The recorder state lives in
    // the workspace, so the first observed run sizes its buffers (allowed
    // to allocate) and warm reruns must stay at exactly zero.
    let opts = RunOptions::seeded(1).with_observe(ObsConfig::all());
    for algo in ALL_ALGORITHMS {
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let mut ws = Workspace::new();
            let mut policy = make_policy(algo);
            let cold = engine::run_in(&mut ws, &job, &cfg, policy.as_mut(), mode, &opts);
            assert!(
                cold.obs.is_some(),
                "{} {mode:?}: observe requested but no payload",
                algo.label()
            );
            for rerun in 0..3 {
                let warm = engine::run_in(&mut ws, &job, &cfg, policy.as_mut(), mode, &opts);
                assert_eq!(warm.makespan, cold.makespan, "{} {mode:?}", algo.label());
                let obs = warm.obs.expect("observe requested");
                assert!(obs.util.is_some(), "utilization recorded");
                assert!(obs.assign_ns.count > 0, "latency recorded");
                assert_eq!(
                    warm.stats.epoch_bytes,
                    0,
                    "{} {mode:?} rerun {rerun}: observed epoch loop allocated on a warm workspace",
                    algo.label()
                );
            }
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation accounting is asserted in --release (its own CI step)"
)]
fn warm_indexed_mqb_epoch_loop_allocates_zero_bytes() {
    use fhs_core::mqb::{InfoModel, Mqb, MqbTuning};
    use fhs_core::registry::DEFAULT_APPROX_CAP;
    use fhs_sim::MachineConfig;
    use kdag::KDagBuilder;

    // A two-type instance whose type-0 ready queue starts ~3× above the
    // flat/indexed crossover (64), so the incremental dominance index —
    // group slab, frontier, key map, journal cursors — is genuinely
    // exercised, not just the flat scan. The second wave of type-1
    // children keeps the journal replaying inserts mid-run.
    let mut b = KDagBuilder::new(2);
    let mut roots = Vec::new();
    for i in 0..200u64 {
        roots.push(b.add_task(0, 1 + (i * 7 + 3) % 5));
    }
    for i in 0..90u64 {
        let t = b.add_task(1, 1 + (i * 5 + 1) % 4);
        let p1 = (i % 200) as usize;
        let p2 = ((i * 3 + 1) % 200) as usize;
        b.add_edge(roots[p1], t).unwrap();
        if p2 != p1 {
            b.add_edge(roots[p2], t).unwrap();
        }
    }
    let job = b.build().unwrap();
    let cfg = MachineConfig::new(vec![2, 2]);

    fhs_sim::instrument::register_alloc_probe(probe);
    let variants: [(&str, MqbTuning); 2] = [
        ("MQB-indexed", MqbTuning::default()),
        (
            "MQB-Approx",
            MqbTuning {
                max_candidates: Some(DEFAULT_APPROX_CAP),
                ..MqbTuning::default()
            },
        ),
    ];
    for (name, tuning) in variants {
        for (mode, quantum) in [
            (Mode::NonPreemptive, None),
            (Mode::Preemptive, None),
            (Mode::Preemptive, Some(1)),
        ] {
            let mut ws = Workspace::new();
            let mut policy = Mqb::with_tuning(InfoModel::default(), tuning);
            let mut opts = RunOptions::seeded(2);
            opts.quantum = quantum;
            let cold = engine::run_in(&mut ws, &job, &cfg, &mut policy, mode, &opts);
            let sel = cold.stats.selection;
            if tuning.max_candidates.is_none() {
                assert!(
                    sel.candidates_pruned > 0 && sel.cold_snapshots == 1,
                    "{name} {mode:?} q={quantum:?}: indexed path never engaged \
                     (pruned {}, rebuilds {})",
                    sel.candidates_pruned,
                    sel.cold_snapshots
                );
            } else {
                assert!(
                    sel.candidates_pruned > 0,
                    "{name} {mode:?} q={quantum:?}: cap never bit on a 200-wide queue"
                );
            }
            for rerun in 0..3 {
                let warm = engine::run_in(&mut ws, &job, &cfg, &mut policy, mode, &opts);
                assert_eq!(
                    warm.makespan, cold.makespan,
                    "{name} {mode:?} q={quantum:?}"
                );
                assert_eq!(
                    warm.stats.epoch_bytes, 0,
                    "{name} {mode:?} q={quantum:?} rerun {rerun}: incremental-state \
                     epoch loop allocated on a warm workspace",
                );
            }
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation accounting is asserted in --release (its own CI step)"
)]
fn session_epoch_loop_with_armed_telemetry_stays_allocation_free_when_warm() {
    use fhs_sim::{Session, SessionOptions, TelemetrySink, TelemetryTick};
    use kdag::precompute::Artifacts;
    use std::sync::Arc;

    // The telemetry acceptance criterion: arming the periodic-snapshot
    // cadence hook keeps the warm session epoch loop at exactly zero
    // bytes outside snapshot ticks.
    //
    // A session's in-loop bytes are not literally zero end to end: each
    // *fresh* policy (one per admission until retirements stock the spare
    // pool) sizes its scratch lazily inside its first epochs. What is
    // zero — and what this test pins, bytes-exact — is the steady state
    // the session engine exists for: with recycled policies on a warm
    // workspace, an entire extra wave of jobs adds 0 bytes, and the
    // telemetry cadence adds 0 bytes on top whether it is armed-but-idle
    // or firing into a non-allocating sink. Tick-time *rendering* is the
    // sink's business (snapshot sinks format and write on their own
    // budget); the engine-side dispatch must be free.
    struct CountTicks(std::rc::Rc<Cell<u64>>);
    impl TelemetrySink for CountTicks {
        fn tick(&mut self, _t: &TelemetryTick<'_>) {
            self.0.set(self.0.get() + 1);
        }
    }

    fhs_sim::instrument::register_alloc_probe(probe);
    let (job, cfg) = fhs_bench::small_ep();
    let job = Arc::new(job);
    let artifacts = Arc::new(Artifacts::compute(&job));

    for algo in ALL_ALGORITHMS {
        for (mode, quantum) in [(Mode::NonPreemptive, None), (Mode::Preemptive, Some(1))] {
            // Each wave admits four jobs; waves are spaced far enough
            // apart that a wave fully retires (restocking the spare
            // policy/runtime pools) before the next one arrives.
            let run = |ws: Workspace, waves: u64, every: Option<u64>| {
                let mut opts = SessionOptions::new(mode);
                opts.quantum = quantum;
                let mut s = Session::with_workspace(cfg.clone(), opts, ws);
                let ticks = std::rc::Rc::new(Cell::new(0u64));
                if let Some(every) = every {
                    s.set_telemetry(every, Box::new(CountTicks(std::rc::Rc::clone(&ticks))));
                }
                for wave in 0..waves {
                    for (i, t) in [0u64, 3, 9, 14].into_iter().enumerate() {
                        s.run_until(wave * 100_000 + t);
                        let policy = s.recycled_policy().unwrap_or_else(|| make_policy(algo));
                        let seed = i as u64 + 1;
                        if algo.is_offline() {
                            s.admit_with_artifacts(Arc::clone(&job), policy, seed, &artifacts);
                        } else {
                            s.admit(Arc::clone(&job), policy, seed);
                        }
                    }
                }
                s.drain();
                let sink = s.take_telemetry();
                let ticks = every.map(|_| {
                    assert!(sink.is_some(), "armed sink must survive the session");
                    ticks.get()
                });
                let (out, ws) = s.finish();
                assert_eq!(out.jobs.len() as u64, 4 * waves, "jobs lost");
                (out.makespan, out.stats.epoch_bytes, ticks, ws)
            };

            // Cold sizing pass, then the one-wave reference on the warm
            // workspace: its bytes are exactly the fresh-policy scratch.
            let (_, _, _, ws) = run(Workspace::new(), 1, None);
            let (makespan_1, bytes_1, _, ws) = run(ws, 1, None);
            // Arming the cadence (first tick far beyond the session)
            // must not add a byte or change the schedule.
            let (makespan, bytes, ticks, ws) = run(ws, 1, Some(u64::MAX / 2));
            assert_eq!(makespan, makespan_1, "{} {mode:?}", algo.label());
            assert_eq!(
                ticks,
                Some(0),
                "{} {mode:?}: cadence fired early",
                algo.label()
            );
            assert_eq!(
                bytes,
                bytes_1,
                "{} {mode:?}: arming the telemetry cadence allocated in the epoch loop",
                algo.label()
            );
            // Steady state: the second wave pays a one-time sizing bump
            // (first retirement-recycle round of the session), and from
            // then on every additional wave runs entirely on recycled
            // policies and the warm workspace — 0 extra bytes, with the
            // cadence still armed.
            let (_, bytes_2, ticks, ws) = run(ws, 2, Some(u64::MAX / 2));
            assert_eq!(ticks, Some(0), "{} {mode:?}", algo.label());
            let (_, bytes_3, ticks, ws) = run(ws, 3, Some(u64::MAX / 2));
            assert_eq!(ticks, Some(0), "{} {mode:?}", algo.label());
            assert_eq!(
                bytes_3,
                bytes_2,
                "{} {mode:?}: steady-state wave allocated on recycled \
                 policies ({} bytes over the two-wave reference)",
                algo.label(),
                bytes_3.saturating_sub(bytes_2)
            );
            // Cadence actually firing into a non-allocating sink: ticks
            // are dispatched, the schedule is untouched, and the epoch
            // loop still adds nothing over the reference.
            let (makespan, bytes, ticks, _) = run(ws, 1, Some(8));
            assert_eq!(
                makespan,
                makespan_1,
                "{} {mode:?}: telemetry ticks perturbed the schedule",
                algo.label()
            );
            assert!(
                ticks.unwrap() > 0,
                "{} {mode:?}: cadence of 8 never fired",
                algo.label()
            );
            assert_eq!(
                bytes,
                bytes_1,
                "{} {mode:?}: tick dispatch allocated in the epoch loop",
                algo.label()
            );
        }
    }
}

#[test]
fn probe_counts_this_threads_allocations() {
    // Sanity for the harness itself (runs in every profile): allocating
    // must advance the thread's byte count by at least the requested size.
    let before = probe();
    let v: Vec<u8> = Vec::with_capacity(4096);
    let after = probe();
    drop(v);
    assert!(
        after >= before + 4096,
        "probe advanced by {} for a 4096-byte allocation",
        after - before
    );
}
