//! One bench group per paper figure: each iteration regenerates the
//! figure's data at a reduced instance count through the same pipeline
//! the `fhs-experiments` binaries use (workload sampling → scheduling →
//! summary statistics). Single-threaded (`workers = 1`) so the numbers
//! measure the pipeline, not the machine's core count.

use criterion::{criterion_group, criterion_main, Criterion};
use fhs_experiments::args::CommonArgs;
use fhs_experiments::figures::{fig4, fig5, fig6, fig7, fig8, lower_bound};

fn args(instances: usize) -> CommonArgs {
    CommonArgs {
        instances,
        seed: 7,
        csv_dir: None,
        workers: Some(1),
        ..CommonArgs::default()
    }
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig4_algorithms_6x6", |b| {
        b.iter(|| fig4::compute(&args(10)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig5_changing_k", |b| b.iter(|| fig5::compute(&args(5))));
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig6_skewed_load", |b| b.iter(|| fig6::compute(&args(10))));
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig7_preemption", |b| b.iter(|| fig7::compute(&args(10))));
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig8_approx_info", |b| b.iter(|| fig8::compute(&args(10))));
    g.finish();
}

fn bench_lower_bound(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("thm2_lower_bound", |b| {
        b.iter(|| lower_bound::compute(&args(4)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_lower_bound
);
criterion_main!(benches);
