//! Engine micro-benchmark: the indexed epoch engine (`fhs_sim::engine`)
//! against the pre-refactor linear-scan engines preserved in
//! `fhs_sim::reference`, on workloads wide enough that per-transition queue
//! scans dominate (thousands of ready candidates per type).
//!
//! The policy deliberately picks the candidates at the *back* of each
//! queue: the scan-based reference state then walks essentially the whole
//! queue on every `remaining`/`progress`/`complete`, which is the
//! O(queue²) regime motivating the indexed ready-set. FIFO is the
//! best case for the old engine (its scans stop at position 0) and is
//! benched alongside as the honest lower bound of the win.
//!
//! Besides the usual criterion run, `--json <path>` measures the headline
//! comparison (5000+ task flat job, preemptive) and writes a small JSON
//! baseline — `BENCH_engine.json` at the repo root is generated this way:
//!
//! ```console
//! # paths are relative to crates/bench (the bench binary's CWD)
//! cargo bench -p fhs-bench --bench engine -- --json ../../BENCH_engine.json
//! ```

use criterion::{black_box, criterion_group, Criterion};
use fhs_core::{make_policy, Algorithm};
use fhs_sim::policy::FifoPolicy;
use fhs_sim::{
    engine, reference, Assignments, EpochView, MachineConfig, Mode, Policy, RunOptions, Workspace,
};
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};
use kdag::{KDag, KDagBuilder};
use std::time::Instant;

/// Tasks in the headline workload (issue floor: ≥ 5000).
const N_TASKS: usize = 6000;
const K: usize = 2;
const PROCS_PER_TYPE: usize = 8;

/// Takes the last `slots[α]` candidates of every queue — adversarial for
/// linear-scan state (every transition scans past the whole queue).
#[derive(Default)]
struct BackOfQueue;

impl Policy for BackOfQueue {
    fn name(&self) -> &str {
        "BackOfQueue"
    }

    fn init(&mut self, _job: &KDag, _config: &MachineConfig, _seed: u64) {}

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        for alpha in 0..view.config.num_types() {
            let slots = view.slots[alpha];
            if slots == 0 {
                continue;
            }
            let queue = &view.queues[alpha];
            let skip = queue.len().saturating_sub(slots);
            for rt in queue.iter().skip(skip) {
                out.push(alpha, rt.id);
            }
        }
    }
}

/// A flat (dependency-free) job: every task is ready at t=0, so the queues
/// start at their widest — the regime the indexed ready-set targets.
fn flat_job(n: usize, k: usize) -> KDag {
    let mut b = KDagBuilder::new(k);
    for i in 0..n {
        // Deterministic small works; a mix of 1..=3 keeps some tasks
        // receiving non-completing progress updates under preemption.
        b.add_task(i % k, 1 + (i as u64 * 7919) % 3);
    }
    b.build().expect("flat jobs are trivially acyclic")
}

fn bench_engines(c: &mut Criterion) {
    let job = flat_job(N_TASKS, K);
    let cfg = MachineConfig::uniform(K, PROCS_PER_TYPE);
    let opts = RunOptions::default();

    let mut g = c.benchmark_group("engine/flat6000");
    g.sample_size(10);
    for mode in [Mode::NonPreemptive, Mode::Preemptive] {
        let tag = match mode {
            Mode::NonPreemptive => "np",
            Mode::Preemptive => "p",
        };
        g.bench_function(format!("indexed/back/{tag}"), |b| {
            b.iter(|| engine::run(&job, &cfg, &mut BackOfQueue, mode, &opts).makespan)
        });
        g.bench_function(format!("reference/back/{tag}"), |b| {
            b.iter(|| reference::run(&job, &cfg, &mut BackOfQueue, mode, &opts).makespan)
        });
        g.bench_function(format!("indexed/fifo/{tag}"), |b| {
            b.iter(|| engine::run(&job, &cfg, &mut FifoPolicy, mode, &opts).makespan)
        });
        g.bench_function(format!("reference/fifo/{tag}"), |b| {
            b.iter(|| reference::run(&job, &cfg, &mut FifoPolicy, mode, &opts).makespan)
        });
    }
    g.finish();

    // Huge rung: the epoch loop at the scale the fast-forward / dirty-set
    // / hot-state work targets (DESIGN.md §15) — the same ~110k-task
    // layered IR instance the scale bench's Huge rung records, driven by
    // KGreedy so the measurement is the engine, not selection. The
    // reference engines are skipped here: their per-transition queue
    // scans are quadratic at this width and would take minutes.
    let (hjob, hcfg) = huge_instance();
    let mut g = c.benchmark_group("engine/huge");
    g.sample_size(10);
    g.bench_function("indexed/kgreedy/np", |b| {
        let mut ws = Workspace::new();
        let mut policy = make_policy(Algorithm::KGreedy);
        b.iter(|| {
            engine::run_in(
                &mut ws,
                &hjob,
                &hcfg,
                policy.as_mut(),
                Mode::NonPreemptive,
                &RunOptions::seeded(2),
            )
            .makespan
        })
    });
    g.finish();
}

/// The scale bench's Huge instance: layered IR, K = 4, seed 2, ~110k tasks.
fn huge_instance() -> (KDag, MachineConfig) {
    WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Huge, 4).sample(2)
}

criterion_group!(benches, bench_engines);

/// Median wall time of `samples` runs of `f`, in nanoseconds.
fn median_nanos(samples: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Measures the headline comparison and writes the JSON baseline.
fn write_baseline(path: &str) {
    let job = flat_job(N_TASKS, K);
    let cfg = MachineConfig::uniform(K, PROCS_PER_TYPE);
    let opts = RunOptions::default();
    let samples = 7;

    // Equal work first: the two engines must agree before timing them.
    let a = engine::run(&job, &cfg, &mut BackOfQueue, Mode::Preemptive, &opts);
    let b = reference::run(&job, &cfg, &mut BackOfQueue, Mode::Preemptive, &opts);
    assert_eq!(a.makespan, b.makespan, "engines diverged; baseline void");

    let indexed = median_nanos(samples, || {
        black_box(engine::run(&job, &cfg, &mut BackOfQueue, Mode::Preemptive, &opts).makespan);
    });
    let refr = median_nanos(samples, || {
        black_box(reference::run(&job, &cfg, &mut BackOfQueue, Mode::Preemptive, &opts).makespan);
    });
    let speedup = refr as f64 / indexed as f64;

    // Huge rung (reference engines excluded — quadratic at this width):
    // the post-§15 epoch loop on the ~110k-task instance, warm workspace.
    let (hjob, hcfg) = huge_instance();
    let huge_tasks = hjob.num_tasks();
    let mut ws = Workspace::new();
    let mut policy = make_policy(Algorithm::KGreedy);
    let huge_kgreedy = median_nanos(samples, || {
        black_box(
            engine::run_in(
                &mut ws,
                &hjob,
                &hcfg,
                policy.as_mut(),
                Mode::NonPreemptive,
                &RunOptions::seeded(2),
            )
            .makespan,
        );
    });

    let json = format!(
        "{{\n  \"bench\": \"engine/flat{N_TASKS}\",\n  \"workload\": {{\n    \
         \"tasks\": {N_TASKS},\n    \"k\": {K},\n    \"procs_per_type\": {PROCS_PER_TYPE},\n    \
         \"mode\": \"preemptive\",\n    \"policy\": \"BackOfQueue\"\n  }},\n  \
         \"samples\": {samples},\n  \"indexed_median_ns\": {indexed},\n  \
         \"reference_median_ns\": {refr},\n  \"speedup\": {speedup:.2},\n  \
         \"huge\": {{\n    \"tasks\": {huge_tasks},\n    \"k\": 4,\n    \
         \"mode\": \"non_preemptive\",\n    \"policy\": \"KGreedy\",\n    \
         \"kgreedy_median_ns\": {huge_kgreedy}\n  }}\n}}\n"
    );
    std::fs::write(path, &json).expect("write baseline");
    println!(
        "wrote {path}: indexed {indexed} ns, reference {refr} ns, speedup {speedup:.2}x, \
         huge kgreedy {huge_kgreedy} ns"
    );
    assert!(
        speedup >= 2.0,
        "acceptance criterion: indexed engine must be ≥2× faster (got {speedup:.2}×)"
    );
    // §15 budget, same bar the scale-bench recording enforces.
    assert!(
        huge_kgreedy < 27_000_000,
        "acceptance criterion: Huge KGreedy epoch loop must stay under \
         27 ms (got {huge_kgreedy} ns)"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--json") {
        write_baseline(&w[1]);
        return;
    }
    let mut c = Criterion::from_args();
    benches(&mut c);
}
