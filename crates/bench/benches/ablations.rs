//! Ablation benches for the design choices called out in DESIGN.md §5.
//!
//! Besides timing, each MQB ablation prints the average completion-time
//! ratio it achieves over a fixed instance set once at startup, so the
//! *quality* impact of each choice is visible next to its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use fhs_core::mqb::{BalanceMetric, InfoModel, Mqb, MqbTuning};
use fhs_sim::{engine, metrics, Mode, Policy, RunOptions};
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};
use kdag::descendants::DescendantValues;

fn mqb_variants() -> Vec<(&'static str, MqbTuning)> {
    vec![
        ("paper_default", MqbTuning::default()),
        (
            "min_only_balance",
            MqbTuning {
                balance: BalanceMetric::MinOnly,
                ..MqbTuning::default()
            },
        ),
        (
            "no_own_work_subtraction",
            MqbTuning {
                subtract_own_work: false,
                ..MqbTuning::default()
            },
        ),
        (
            "approx_cap_64",
            MqbTuning {
                max_candidates: Some(fhs_core::registry::DEFAULT_APPROX_CAP),
                ..MqbTuning::default()
            },
        ),
    ]
}

/// Quality check printed once: mean ratio of each MQB variant over 60
/// layered-IR instances.
fn print_quality_comparison() {
    let spec = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Medium, 4);
    println!("MQB ablation quality (mean ratio, 60 medium layered IR instances):");
    for (name, tuning) in mqb_variants() {
        let mut sum = 0.0;
        for seed in 0..60u64 {
            let (job, cfg) = spec.sample(seed);
            let mut p = Mqb::with_tuning(InfoModel::default(), tuning);
            sum += metrics::evaluate(&job, &cfg, &mut p, Mode::NonPreemptive, seed).ratio;
        }
        println!("  {name:<24} {:.4}", sum / 60.0);
    }
}

fn bench_mqb_ablations(c: &mut Criterion) {
    print_quality_comparison();
    let (job, cfg) = fhs_bench::medium_ir();
    let mut g = c.benchmark_group("ablation/mqb");
    g.sample_size(30);
    for (name, tuning) in mqb_variants() {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut p = Mqb::with_tuning(InfoModel::default(), tuning);
                engine::run(
                    &job,
                    &cfg,
                    &mut p,
                    Mode::NonPreemptive,
                    &RunOptions::default(),
                )
                .makespan
            })
        });
    }
    g.finish();
}

/// Epoch-skipping preemptive engine vs the literal per-quantum engine —
/// identical schedules (property-tested), very different cost.
fn bench_engines(c: &mut Criterion) {
    let (job, cfg) = fhs_bench::small_ep();
    let mut g = c.benchmark_group("ablation/preemptive_engine");
    g.sample_size(20);
    g.bench_function("epoch_skipping", |b| {
        b.iter(|| {
            let mut p = fhs_sim::policy::FifoPolicy;
            engine::run(&job, &cfg, &mut p, Mode::Preemptive, &RunOptions::default()).makespan
        })
    });
    g.bench_function("per_quantum", |b| {
        b.iter(|| {
            let mut p = fhs_sim::policy::FifoPolicy;
            engine::run_per_step(&job, &cfg, &mut p, &RunOptions::default()).makespan
        })
    });
    g.finish();
}

/// Cost of the offline precomputations each policy pays in `init`.
fn bench_precomputation(c: &mut Criterion) {
    let (job, cfg) = fhs_bench::medium_ir();
    let mut g = c.benchmark_group("ablation/precompute");
    g.bench_function("descendant_values", |b| {
        b.iter(|| DescendantValues::compute(&job))
    });
    g.bench_function("remaining_spans", |b| {
        b.iter(|| kdag::metrics::remaining_spans(&job))
    });
    g.bench_function("different_child_distances", |b| {
        b.iter(|| kdag::distance::different_child_distances(&job))
    });
    g.bench_function("shiftbt_full_init", |b| {
        b.iter(|| {
            let mut p = fhs_core::ShiftBT::default();
            p.init(&job, &cfg, 0);
            p.bottleneck_order.len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_mqb_ablations,
    bench_engines,
    bench_precomputation
);
criterion_main!(benches);
