//! Observability overhead bench: the engine with every steady-state
//! recording channel on (utilization timeline + latency/depth histograms,
//! the channels `sweep --utilization --instrument` / `--metrics-out` use)
//! against the unobserved engine, on warm workspaces.
//!
//! Besides the usual criterion run, `--json <path>` measures the headline
//! configuration (one Large layered IR instance, ≥1000 tasks, warm MQB and
//! KGreedy runs) and writes `BENCH_obs.json`, asserting the acceptance
//! criterion: ≤5% overhead with the steady-state channels on. The
//! bounded event trace (a per-transition ring push, paid only by the one
//! instance a sweep traces) is measured and reported for context.
//!
//! ```console
//! cargo bench -p fhs-bench --bench obs -- --json ../../BENCH_obs.json
//! ```

use criterion::{black_box, criterion_group, Criterion};
use fhs_core::{make_policy, Algorithm};
use fhs_experiments::runner::instance_seed;
use fhs_sim::{engine, MachineConfig, Mode, ObsConfig, RunOptions, Workspace};
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};
use kdag::KDag;
use std::time::Instant;

const BASE_SEED: u64 = 0xBE7C;

/// The sweep pipeline's steady-state recording channels.
fn steady_channels() -> ObsConfig {
    ObsConfig {
        utilization: true,
        latency: true,
        events: false,
        event_cap: 0,
    }
}

/// One warm observed/unobserved run pair on a reused workspace.
fn run_warm(
    ws: &mut Workspace,
    job: &KDag,
    cfg: &MachineConfig,
    algo: Algorithm,
    opts: &RunOptions,
) -> u64 {
    let mut policy = make_policy(algo);
    engine::run_in(ws, job, cfg, policy.as_mut(), Mode::NonPreemptive, opts).makespan
}

fn bench_obs(c: &mut Criterion) {
    let (job, cfg) = fhs_bench::medium_ir();
    let plain = RunOptions::seeded(1);
    let seen = RunOptions::seeded(1).with_observe(steady_channels());
    let traced = RunOptions::seeded(1).with_observe(ObsConfig::all());

    for algo in [Algorithm::KGreedy, Algorithm::Mqb] {
        let mut g = c.benchmark_group(format!("obs/medium-ir/{}", algo.label()));
        g.sample_size(20);
        let mut ws = Workspace::new();
        run_warm(&mut ws, &job, &cfg, algo, &plain); // size all buffers
        g.bench_function("unobserved", |b| {
            b.iter(|| black_box(run_warm(&mut ws, &job, &cfg, algo, &plain)))
        });
        g.bench_function("util+latency", |b| {
            b.iter(|| black_box(run_warm(&mut ws, &job, &cfg, algo, &seen)))
        });
        g.bench_function("all-channels", |b| {
            b.iter(|| black_box(run_warm(&mut ws, &job, &cfg, algo, &traced)))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_obs);

/// Minimum wall time of `samples` runs of `f`, in nanoseconds — the
/// noise-robust statistic for a ratio assertion on a shared machine.
fn min_nanos(samples: usize, mut f: impl FnMut()) -> u128 {
    (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .min()
        .expect("at least one sample")
}

/// Measures the headline overhead and writes the JSON baseline.
fn write_baseline(path: &str) {
    let spec = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Large, 4);
    let (job, cfg) = spec.sample(instance_seed(BASE_SEED, 0));
    assert!(
        job.num_tasks() >= 1000,
        "headline instance too small: {} tasks",
        job.num_tasks()
    );
    let samples = 7;
    let plain = RunOptions::seeded(1);
    let seen = RunOptions::seeded(1).with_observe(steady_channels());
    let traced = RunOptions::seeded(1).with_observe(ObsConfig::all());

    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    for algo in [Algorithm::KGreedy, Algorithm::Mqb] {
        let mut ws = Workspace::new();
        // Observe-only first: the observed warm run must replay the
        // unobserved one exactly before timing either.
        let m_plain = run_warm(&mut ws, &job, &cfg, algo, &plain);
        let m_seen = run_warm(&mut ws, &job, &cfg, algo, &seen);
        assert_eq!(
            m_plain,
            m_seen,
            "{}: recording changed the run",
            algo.label()
        );

        let base = min_nanos(samples, || {
            black_box(run_warm(&mut ws, &job, &cfg, algo, &plain));
        });
        let steady = min_nanos(samples, || {
            black_box(run_warm(&mut ws, &job, &cfg, algo, &seen));
        });
        let all = min_nanos(samples, || {
            black_box(run_warm(&mut ws, &job, &cfg, algo, &traced));
        });
        let overhead = steady as f64 / base as f64 - 1.0;
        let overhead_all = all as f64 / base as f64 - 1.0;
        worst = worst.max(overhead);
        rows.push(format!(
            "    {{\n      \"algo\": \"{}\",\n      \"unobserved_min_ns\": {base},\n      \
             \"observed_min_ns\": {steady},\n      \"all_channels_min_ns\": {all},\n      \
             \"overhead\": {overhead:.4},\n      \"overhead_all_channels\": {overhead_all:.4}\n    }}",
            algo.label()
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"obs/large-ir-warm-engine\",\n  \"workload\": {{\n    \
         \"spec\": \"{}\",\n    \"k\": 4,\n    \"tasks\": {}\n  }},\n  \
         \"samples\": {samples},\n  \"channels\": \"utilization+latency\",\n  \
         \"cells\": [\n{}\n  ],\n  \"worst_overhead\": {worst:.4}\n}}\n",
        spec.label(),
        job.num_tasks(),
        rows.join(",\n"),
    );
    std::fs::write(path, &json).expect("write baseline");
    println!(
        "wrote {path}: worst steady-channel overhead {:.2}%",
        worst * 100.0
    );
    assert!(
        worst <= 0.05,
        "acceptance criterion: observability overhead must be ≤5% on a Large \
         instance (got {:.2}%)",
        worst * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--json") {
        write_baseline(&w[1]);
        return;
    }
    let mut c = Criterion::from_args();
    benches(&mut c);
}
