//! Observability overhead bench: the engine with every steady-state
//! recording channel on (utilization timeline + latency/depth histograms,
//! the channels `sweep --utilization --instrument` / `--metrics-out` use)
//! against the unobserved engine, on warm workspaces.
//!
//! Besides the usual criterion run, `--json <path>` measures the headline
//! configuration (one Large layered IR instance, ≥1000 tasks, warm MQB and
//! KGreedy runs) and writes `BENCH_obs.json`, asserting the acceptance
//! criterion: ≤5% overhead with the steady-state channels on. The
//! bounded event trace (a per-transition ring push, paid only by the one
//! instance a sweep traces) is measured and reported for context.
//!
//! ```console
//! cargo bench -p fhs-bench --bench obs -- --json ../../BENCH_obs.json
//! ```

use criterion::{black_box, criterion_group, Criterion};
use fhs_core::{make_policy, Algorithm};
use fhs_experiments::runner::instance_seed;
use fhs_experiments::stream::{
    run_stream, run_stream_with_telemetry, Arrivals, StreamCell, StreamConfig,
};
use fhs_experiments::telemetry::StreamSnapshotSink;
use fhs_sim::{engine, InterJobPolicy, MachineConfig, Mode, ObsConfig, RunOptions, Workspace};
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};
use kdag::KDag;
use std::time::Instant;

const BASE_SEED: u64 = 0xBE7C;

/// The sweep pipeline's steady-state recording channels.
fn steady_channels() -> ObsConfig {
    ObsConfig {
        utilization: true,
        latency: true,
        events: false,
        event_cap: 0,
    }
}

/// One warm observed/unobserved run pair on a reused workspace.
fn run_warm(
    ws: &mut Workspace,
    job: &KDag,
    cfg: &MachineConfig,
    algo: Algorithm,
    opts: &RunOptions,
) -> u64 {
    let mut policy = make_policy(algo);
    engine::run_in(ws, job, cfg, policy.as_mut(), Mode::NonPreemptive, opts).makespan
}

fn bench_obs(c: &mut Criterion) {
    let (job, cfg) = fhs_bench::medium_ir();
    let plain = RunOptions::seeded(1);
    let seen = RunOptions::seeded(1).with_observe(steady_channels());
    let traced = RunOptions::seeded(1).with_observe(ObsConfig::all());

    for algo in [Algorithm::KGreedy, Algorithm::Mqb] {
        let mut g = c.benchmark_group(format!("obs/medium-ir/{}", algo.label()));
        g.sample_size(20);
        let mut ws = Workspace::new();
        run_warm(&mut ws, &job, &cfg, algo, &plain); // size all buffers
        g.bench_function("unobserved", |b| {
            b.iter(|| black_box(run_warm(&mut ws, &job, &cfg, algo, &plain)))
        });
        g.bench_function("util+latency", |b| {
            b.iter(|| black_box(run_warm(&mut ws, &job, &cfg, algo, &seen)))
        });
        g.bench_function("all-channels", |b| {
            b.iter(|| black_box(run_warm(&mut ws, &job, &cfg, algo, &traced)))
        });
        g.finish();
    }

    // The session engine's snapshot cadence: one Poisson stream per
    // iteration, unarmed vs rendering a full exposition page every 256
    // executed epochs.
    let scfg = StreamConfig {
        spec: WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Small, 4),
        jobs: 24,
        arrivals: Arrivals::Poisson { mean_gap: 4.0 },
        seed: 0x5EED,
    };
    let scell = StreamCell::new(Algorithm::Mqb, InterJobPolicy::Fifo);
    let mut g = c.benchmark_group("obs/stream/MQB-fifo");
    g.sample_size(10);
    g.bench_function("unarmed", |b| {
        b.iter(|| black_box(run_stream(&scfg, &scell)))
    });
    g.bench_function("cadence-256", |b| {
        b.iter(|| {
            let sink = Box::new(StreamSnapshotSink::new(
                "MQB",
                "fifo",
                &scfg.spec.label(),
                "np",
                scfg.seed,
            ));
            black_box(run_stream_with_telemetry(&scfg, &scell, 256, sink))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_obs);

/// Per-variant timings over `samples` interleaved rounds, in nanoseconds.
/// Each round times every variant once, back to back, so machine-load
/// drift during the measurement hits all variants comparably — the
/// noise-robust shape for a *ratio* assertion on a shared machine
/// (sequential per-variant phases let a slow stretch land entirely on
/// one side of the ratio). Returns `timings[variant][round]`.
fn interleaved_nanos(samples: usize, variants: &mut [&mut dyn FnMut()]) -> Vec<Vec<u128>> {
    let mut out = vec![Vec::with_capacity(samples); variants.len()];
    for _ in 0..samples {
        for (ts, f) in out.iter_mut().zip(variants.iter_mut()) {
            let t0 = Instant::now();
            f();
            ts.push(t0.elapsed().as_nanos());
        }
    }
    out
}

/// Minimum of one variant's timings.
fn min_ns(ts: &[u128]) -> u128 {
    *ts.iter().min().expect("at least one sample")
}

/// Median of the per-round `variant/base` ratios — each round's ratio
/// compares two adjacent runs, cancelling slow drift, and the median
/// discards interrupt spikes on either side. The headline overhead
/// statistic for the gate.
fn median_ratio(variant: &[u128], base: &[u128]) -> f64 {
    let mut rs: Vec<f64> = variant
        .iter()
        .zip(base)
        .map(|(&v, &b)| v as f64 / b.max(1) as f64)
        .collect();
    rs.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    rs[rs.len() / 2]
}

/// Measures the headline overhead and writes the JSON baseline.
fn write_baseline(path: &str) {
    let spec = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Large, 4);
    let (job, cfg) = spec.sample(instance_seed(BASE_SEED, 0));
    assert!(
        job.num_tasks() >= 1000,
        "headline instance too small: {} tasks",
        job.num_tasks()
    );
    let samples = 21;
    let plain = RunOptions::seeded(1);
    let seen = RunOptions::seeded(1).with_observe(steady_channels());
    let traced = RunOptions::seeded(1).with_observe(ObsConfig::all());

    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    for algo in [Algorithm::KGreedy, Algorithm::Mqb] {
        let mut ws = Workspace::new();
        // Observe-only first: the observed warm run must replay the
        // unobserved one exactly before timing either.
        let m_plain = run_warm(&mut ws, &job, &cfg, algo, &plain);
        let m_seen = run_warm(&mut ws, &job, &cfg, algo, &seen);
        assert_eq!(
            m_plain,
            m_seen,
            "{}: recording changed the run",
            algo.label()
        );

        let ws = std::cell::RefCell::new(ws);
        let ts = interleaved_nanos(
            samples,
            &mut [
                &mut || {
                    black_box(run_warm(&mut ws.borrow_mut(), &job, &cfg, algo, &plain));
                },
                &mut || {
                    black_box(run_warm(&mut ws.borrow_mut(), &job, &cfg, algo, &seen));
                },
                &mut || {
                    black_box(run_warm(&mut ws.borrow_mut(), &job, &cfg, algo, &traced));
                },
            ],
        );
        let (base, steady, all) = (min_ns(&ts[0]), min_ns(&ts[1]), min_ns(&ts[2]));
        let overhead = median_ratio(&ts[1], &ts[0]) - 1.0;
        let overhead_all = median_ratio(&ts[2], &ts[0]) - 1.0;
        worst = worst.max(overhead);
        rows.push(format!(
            "    {{\n      \"algo\": \"{}\",\n      \"unobserved_min_ns\": {base},\n      \
             \"observed_min_ns\": {steady},\n      \"all_channels_min_ns\": {all},\n      \
             \"overhead\": {overhead:.4},\n      \"overhead_all_channels\": {overhead_all:.4}\n    }}",
            algo.label()
        ));
    }

    // Session snapshot cadence: a Poisson job stream through one session
    // with the telemetry hook armed at a production cadence, rendering a
    // full exposition page per tick (discarded — render cost, not disk,
    // is the engine-side overhead the gate owns; `sweep --snapshot-*`
    // adds an atomic file replace on its own budget).
    let scfg = StreamConfig {
        spec: WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Medium, 4),
        jobs: 48,
        arrivals: Arrivals::Poisson { mean_gap: 4.0 },
        seed: 0x5EED,
    };
    let scell = StreamCell::new(Algorithm::Mqb, InterJobPolicy::Fifo);
    let cadence = 64u64;

    /// [`StreamSnapshotSink`] plus a tick count readable after the sink
    /// disappears behind `Box<dyn TelemetrySink>`.
    struct CountingSnapshot(StreamSnapshotSink, std::rc::Rc<std::cell::Cell<u64>>);
    impl fhs_sim::TelemetrySink for CountingSnapshot {
        fn tick(&mut self, tick: &fhs_sim::TelemetryTick<'_>) {
            self.1.set(self.1.get() + 1);
            fhs_sim::TelemetrySink::tick(&mut self.0, tick);
        }
    }
    let tick_count = std::rc::Rc::new(std::cell::Cell::new(0u64));
    let make_sink = || -> Box<dyn fhs_sim::TelemetrySink> {
        Box::new(CountingSnapshot(
            StreamSnapshotSink::new("MQB", "fifo", &scfg.spec.label(), "np", scfg.seed),
            std::rc::Rc::clone(&tick_count),
        ))
    };
    // Warm the pools, verify observe-only, and count the ticks once.
    let plain_run = run_stream(&scfg, &scell);
    let (armed_run, _) = run_stream_with_telemetry(&scfg, &scell, cadence, make_sink());
    assert_eq!(
        plain_run.makespan, armed_run.makespan,
        "snapshot cadence changed the schedule"
    );
    let ticks = tick_count.get();
    assert!(ticks > 0, "cadence of {cadence} epochs never fired");
    tick_count.set(0);
    let ts = interleaved_nanos(
        samples,
        &mut [
            &mut || {
                black_box(run_stream(&scfg, &scell));
            },
            &mut || {
                black_box(run_stream_with_telemetry(
                    &scfg,
                    &scell,
                    cadence,
                    make_sink(),
                ));
            },
        ],
    );
    let (s_base, s_armed) = (min_ns(&ts[0]), min_ns(&ts[1]));
    let s_overhead = median_ratio(&ts[1], &ts[0]) - 1.0;
    worst = worst.max(s_overhead);

    let json = format!(
        "{{\n  \"bench\": \"obs/large-ir-warm-engine\",\n  \"workload\": {{\n    \
         \"spec\": \"{}\",\n    \"k\": 4,\n    \"tasks\": {}\n  }},\n  \
         \"samples\": {samples},\n  \"channels\": \"utilization+latency\",\n  \
         \"cells\": [\n{}\n  ],\n  \"session\": {{\n    \"spec\": \"{}\",\n    \
         \"jobs\": {},\n    \"cadence_epochs\": {cadence},\n    \"ticks\": {ticks},\n    \
         \"unarmed_min_ns\": {s_base},\n    \"armed_min_ns\": {s_armed},\n    \
         \"overhead\": {s_overhead:.4}\n  }},\n  \"worst_overhead\": {worst:.4}\n}}\n",
        spec.label(),
        job.num_tasks(),
        rows.join(",\n"),
        scfg.spec.label(),
        scfg.jobs,
    );
    std::fs::write(path, &json).expect("write baseline");
    println!(
        "wrote {path}: worst steady-channel overhead {:.2}%",
        worst * 100.0
    );
    assert!(
        worst <= 0.05,
        "acceptance criterion: observability overhead must be ≤5% on a Large \
         instance (got {:.2}%)",
        worst * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--json") {
        write_baseline(&w[1]);
        return;
    }
    let mut c = Criterion::from_args();
    benches(&mut c);
}
