//! Substrate micro-benches: generation, graph analyses, serialization.

use criterion::{criterion_group, criterion_main, Criterion};
use fhs_bench::medium_ir;
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};
use kdag::descendants::DescendantValues;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/generate");
    for (name, family) in [
        ("ep", Family::Ep),
        ("tree", Family::Tree),
        ("ir", Family::Ir),
    ] {
        let spec = WorkloadSpec::new(family, Typing::Layered, SystemSize::Medium, 4);
        let mut seed = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                seed = seed.wrapping_add(1);
                spec.sample(seed).0.num_tasks()
            })
        });
    }
    g.finish();
}

fn bench_graph_analyses(c: &mut Criterion) {
    let (job, _) = medium_ir();
    let mut g = c.benchmark_group("substrate/analyses");
    g.bench_function("topological_order", |b| {
        b.iter(|| kdag::topo::topological_order(&job))
    });
    g.bench_function("descendant_values", |b| {
        b.iter(|| DescendantValues::compute(&job))
    });
    g.bench_function("transitive_reduction", |b| {
        b.iter(|| kdag::reduction::transitive_reduction(&job).num_edges())
    });
    g.bench_function("job_profile", |b| {
        b.iter(|| kdag::profile::JobProfile::of(&job).max_width())
    });
    g.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let (job, _) = medium_ir();
    let text = kdag::text::to_text(&job);
    let mut g = c.benchmark_group("substrate/text");
    g.bench_function("serialize", |b| b.iter(|| kdag::text::to_text(&job).len()));
    g.bench_function("parse", |b| {
        b.iter(|| {
            kdag::text::from_text(&text)
                .expect("round trip")
                .num_tasks()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_graph_analyses,
    bench_serialization
);
criterion_main!(benches);
