//! Throughput macro-benchmark: sustained jobs/sec of the session engine
//! under a continuous seeded Poisson job stream, per scheduling policy.
//!
//! Each measured unit is one whole streamed session — machine sampled
//! from the spec, jobs admitted at the arrival plan's times, policy
//! values and job runtimes recycled through the session's spare pools,
//! offline policies paying their per-job `Artifacts` precompute at
//! admission (as an online-arrival system would). Wall time over the
//! stream divided by the job count is the steady-state cost per job; its
//! reciprocal is the sustained throughput this bench pins.
//!
//! Besides the usual criterion run, `--json <path>` measures all six
//! policies on a longer stream and writes a small JSON baseline —
//! `BENCH_throughput.json` at the repo root is generated this way:
//!
//! ```console
//! # paths are relative to crates/bench (the bench binary's CWD)
//! cargo bench -p fhs-bench --bench throughput -- --json ../../BENCH_throughput.json
//! ```

use criterion::{black_box, criterion_group, Criterion};
use fhs_core::{Algorithm, ALL_ALGORITHMS};
use fhs_experiments::stream::{run_stream, Arrivals, StreamCell, StreamConfig};
use fhs_sim::InterJobPolicy;
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};
use std::time::Instant;

const SEED: u64 = 0x57AE;
const MEAN_GAP: f64 = 8.0;

fn config(jobs: usize) -> StreamConfig {
    StreamConfig {
        spec: WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Small, 4),
        jobs,
        arrivals: Arrivals::Poisson { mean_gap: MEAN_GAP },
        seed: SEED,
    }
}

fn bench_throughput(c: &mut Criterion) {
    let cfg = config(32);
    let mut g = c.benchmark_group("throughput/small-ir-poisson");
    g.sample_size(10);
    for algo in [Algorithm::KGreedy, Algorithm::Mqb] {
        g.bench_function(algo.label(), |b| {
            let cell = StreamCell::new(algo, InterJobPolicy::Fifo);
            b.iter(|| black_box(run_stream(&cfg, &cell)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_throughput);

/// Median wall time of `samples` runs of `f`, in nanoseconds.
fn median_nanos(samples: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Measures sustained jobs/sec for all six policies and writes the JSON
/// baseline.
fn write_baseline(path: &str) {
    let jobs = 256;
    let samples = 3;
    let cfg = config(jobs);

    let mut rows = Vec::new();
    for algo in ALL_ALGORITHMS {
        let cell = StreamCell::new(algo, InterJobPolicy::Fifo);
        // Correctness first: the stream must fully retire and replay
        // deterministically before its timing means anything.
        let out = run_stream(&cfg, &cell);
        assert_eq!(out.jobs.len(), jobs, "{}: jobs lost", algo.label());
        assert_eq!(out.stream.completed, jobs as u64);
        let ns = median_nanos(samples, || {
            black_box(run_stream(&cfg, &cell));
        });
        let jobs_per_sec = jobs as f64 * 1e9 / ns as f64;
        println!(
            "{:<10} stream {} jobs: median {:.1} ms, {:.0} jobs/sec (sim {:.2} jobs/ktime)",
            algo.label(),
            jobs,
            ns as f64 / 1e6,
            jobs_per_sec,
            out.throughput(),
        );
        rows.push(format!(
            "    {{\"algo\": \"{}\", \"median_ns\": {ns}, \"jobs_per_sec\": {jobs_per_sec:.1}, \
             \"sim_jobs_per_kilotime\": {:.3}, \"mean_response\": {:.2}, \
             \"mean_slowdown\": {:.3}}}",
            algo.label(),
            out.throughput(),
            out.response_summary().mean,
            out.slowdown_summary().mean,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"throughput/small-ir-poisson\",\n  \"workload\": {{\n    \
         \"spec\": \"{}\",\n    \"k\": 4,\n    \"jobs\": {jobs},\n    \
         \"mean_gap\": {MEAN_GAP},\n    \"inter\": \"fifo\",\n    \"mode\": \"np\",\n    \
         \"seed\": {SEED}\n  }},\n  \"samples\": {samples},\n  \"policies\": [\n{}\n  ]\n}}\n",
        cfg.spec.label(),
        rows.join(",\n"),
    );
    std::fs::write(path, &json).expect("write baseline");
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--json") {
        write_baseline(&w[1]);
        return;
    }
    let mut c = Criterion::from_args();
    benches(&mut c);
}
