//! Sweep macro-benchmark: the instance-major artifact-cached sweep
//! (`run_sweep`) against the legacy cell-major baseline (`run_cell_ratios`
//! once per `(algorithm, mode)` cell), on the full six-algorithm ×
//! two-mode grid.
//!
//! Cell-major evaluation re-samples and re-analyzes every instance for
//! every cell, so its generation + precompute cost is
//! `O(cells × instances)`; the sweep samples each seeded instance once,
//! computes its `kdag::precompute::Artifacts` once, and shares both across
//! all cells — `O(instances)`. On ≥1000-task IR jobs (hundreds of
//! thousands of edges), sampling and analysis dominate, which is the win
//! this bench pins.
//!
//! Besides the usual criterion run, `--json <path>` measures the headline
//! comparison (Large layered IR, ≥1000 tasks per instance, all 12 cells)
//! and writes a small JSON baseline — `BENCH_sweep.json` at the repo root
//! is generated this way:
//!
//! ```console
//! # paths are relative to crates/bench (the bench binary's CWD)
//! cargo bench -p fhs-bench --bench sweep -- --json ../../BENCH_sweep.json
//! ```

use criterion::{black_box, criterion_group, Criterion};
use fhs_core::ALL_ALGORITHMS;
use fhs_experiments::runner::{instance_seed, run_cell_ratios, run_sweep, Cell, SweepCell};
use fhs_sim::Mode;
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};
use std::time::Instant;

const K: usize = 4;
const BASE_SEED: u64 = 0xBE7C;

/// The full figure-4-style grid: six algorithms × both modes.
fn grid() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for mode in [Mode::NonPreemptive, Mode::Preemptive] {
        for algo in ALL_ALGORITHMS {
            cells.push(SweepCell::new(algo, mode));
        }
    }
    cells
}

/// Cell-major baseline: one independent `run_cell_ratios` pass per cell,
/// exactly what a per-figure loop over algorithms does.
fn run_cell_major(spec: &WorkloadSpec, cells: &[SweepCell], instances: usize) -> Vec<Vec<f64>> {
    cells
        .iter()
        .map(|sc| {
            let mut cell = Cell::new(*spec, sc.algo, sc.mode);
            cell.quantum = sc.quantum;
            run_cell_ratios(&cell, instances, BASE_SEED, None)
        })
        .collect()
}

fn run_instance_major(spec: &WorkloadSpec, cells: &[SweepCell], instances: usize) -> Vec<Vec<f64>> {
    run_sweep(spec, cells, instances, BASE_SEED, None)
        .into_iter()
        .map(|col| col.ratios)
        .collect()
}

fn bench_sweep(c: &mut Criterion) {
    // Medium keeps the default criterion run affordable; the --json
    // baseline uses Large (≥1000-task) instances.
    let spec = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Medium, K);
    let cells = grid();
    let instances = 8;

    let mut g = c.benchmark_group("sweep/medium-ir-12cells");
    g.sample_size(10);
    g.bench_function("cell-major", |b| {
        b.iter(|| black_box(run_cell_major(&spec, &cells, instances)))
    });
    g.bench_function("instance-major", |b| {
        b.iter(|| black_box(run_instance_major(&spec, &cells, instances)))
    });
    g.finish();
}

criterion_group!(benches, bench_sweep);

/// Median wall time of `samples` runs of `f`, in nanoseconds.
fn median_nanos(samples: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Measures the headline comparison and writes the JSON baseline.
fn write_baseline(path: &str) {
    let spec = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Large, K);
    let cells = grid();
    let instances = 4;
    let samples = 3;

    // The workload must actually be in the ≥1000-task regime the
    // acceptance criterion names.
    let mut min_tasks = usize::MAX;
    for i in 0..instances as u64 {
        let (job, _) = spec.sample(instance_seed(BASE_SEED, i));
        min_tasks = min_tasks.min(job.num_tasks());
    }
    assert!(
        min_tasks >= 1000,
        "headline instances too small: {min_tasks} tasks"
    );

    // Equal work first: the two paths must agree bit-for-bit before
    // timing them.
    let warm = run_instance_major(&spec, &cells, instances);
    let cold = run_cell_major(&spec, &cells, instances);
    assert_eq!(warm, cold, "sweep paths diverged; baseline void");

    let cached = median_nanos(samples, || {
        black_box(run_instance_major(&spec, &cells, instances));
    });
    let uncached = median_nanos(samples, || {
        black_box(run_cell_major(&spec, &cells, instances));
    });
    let speedup = uncached as f64 / cached as f64;

    let json = format!(
        "{{\n  \"bench\": \"sweep/large-ir-12cells\",\n  \"workload\": {{\n    \
         \"spec\": \"{}\",\n    \"k\": {K},\n    \"cells\": {},\n    \
         \"instances\": {instances},\n    \"min_tasks\": {min_tasks}\n  }},\n  \
         \"samples\": {samples},\n  \"instance_major_median_ns\": {cached},\n  \
         \"cell_major_median_ns\": {uncached},\n  \"speedup\": {speedup:.2}\n}}\n",
        spec.label(),
        cells.len(),
    );
    std::fs::write(path, &json).expect("write baseline");
    println!(
        "wrote {path}: instance-major {cached} ns, cell-major {uncached} ns, speedup {speedup:.2}x"
    );
    assert!(
        speedup >= 2.0,
        "acceptance criterion: artifact-cached sweep must be ≥2× faster (got {speedup:.2}×)"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--json") {
        write_baseline(&w[1]);
        return;
    }
    let mut c = Criterion::from_args();
    benches(&mut c);
}
