//! Per-algorithm scheduling cost: one full job execution per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fhs_bench::{medium_ir, medium_tree, small_ep};
use fhs_core::{make_policy, ALL_ALGORITHMS};
use fhs_sim::{engine, Mode, RunOptions};

fn bench_algorithms(c: &mut Criterion) {
    for (name, (job, cfg)) in [
        ("small_ep", small_ep()),
        ("medium_tree", medium_tree()),
        ("medium_ir", medium_ir()),
    ] {
        let mut group = c.benchmark_group(format!("schedule/{name}"));
        group.sample_size(30);
        for algo in ALL_ALGORITHMS {
            group.bench_function(BenchmarkId::from_parameter(algo.label()), |b| {
                b.iter(|| {
                    let mut policy = make_policy(algo);
                    engine::run(
                        &job,
                        &cfg,
                        policy.as_mut(),
                        Mode::NonPreemptive,
                        &RunOptions::default(),
                    )
                    .makespan
                })
            });
        }
        group.finish();
    }
}

fn bench_modes(c: &mut Criterion) {
    let (job, cfg) = medium_ir();
    let mut group = c.benchmark_group("mode/medium_ir_mqb");
    group.sample_size(30);
    for (label, mode) in [
        ("nonpreemptive", Mode::NonPreemptive),
        ("preemptive", Mode::Preemptive),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut policy = make_policy(fhs_core::Algorithm::Mqb);
                engine::run(&job, &cfg, policy.as_mut(), mode, &RunOptions::default()).makespan
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_modes);
criterion_main!(benches);
