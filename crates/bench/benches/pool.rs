//! Steady-state execution layer macro-benchmark: the pooled sweep
//! ([`run_sweep`] — persistent worker pool, per-worker reused
//! [`fhs_sim::Workspace`]s and warm policy values) against
//! [`run_sweep_unpooled`] (scoped threads spawned per call, cold engine
//! state and a fresh policy for every evaluation), on the full
//! six-algorithm × two-mode grid.
//!
//! Both paths share the per-instance artifact cache (PR 2), so what this
//! bench isolates is the steady-state layer itself: thread reuse, zero
//! per-run engine allocations, and warm policy scratch.
//!
//! Besides the usual criterion run, `--json <path>` measures the headline
//! configuration (Large layered IR, ≥1000 tasks per instance, all 12
//! cells) and writes `BENCH_pool.json`. The asserted floor compares the
//! pooled path against the **recorded** pre-steady-state sweep baseline in
//! `BENCH_sweep.json` (the PR-2 instance-major median, measured before
//! this layer existed), so the bench must run from `crates/bench` with the
//! repo-root baseline in place:
//!
//! ```console
//! # paths are relative to crates/bench (the bench binary's CWD)
//! cargo bench -p fhs-bench --bench pool -- --json ../../BENCH_pool.json
//! ```

use criterion::{black_box, criterion_group, Criterion};
use fhs_core::ALL_ALGORITHMS;
use fhs_experiments::runner::{instance_seed, run_sweep, run_sweep_unpooled, SweepCell};
use fhs_sim::Mode;
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};
use std::time::Instant;

const K: usize = 4;
/// Same seed as the `sweep` bench: the headline instances are identical to
/// the ones behind the recorded `BENCH_sweep.json` baseline.
const BASE_SEED: u64 = 0xBE7C;

/// The full figure-4-style grid: six algorithms × both modes.
fn grid() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for mode in [Mode::NonPreemptive, Mode::Preemptive] {
        for algo in ALL_ALGORITHMS {
            cells.push(SweepCell::new(algo, mode));
        }
    }
    cells
}

fn ratios_pooled(spec: &WorkloadSpec, cells: &[SweepCell], instances: usize) -> Vec<Vec<f64>> {
    run_sweep(spec, cells, instances, BASE_SEED, None)
        .into_iter()
        .map(|col| col.ratios)
        .collect()
}

fn ratios_unpooled(spec: &WorkloadSpec, cells: &[SweepCell], instances: usize) -> Vec<Vec<f64>> {
    run_sweep_unpooled(spec, cells, instances, BASE_SEED, None)
        .into_iter()
        .map(|col| col.ratios)
        .collect()
}

fn bench_pool(c: &mut Criterion) {
    // Medium keeps the default criterion run affordable; the --json
    // baseline uses Large (≥1000-task) instances.
    let spec = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Medium, K);
    let cells = grid();
    let instances = 8;

    let mut g = c.benchmark_group("pool/medium-ir-12cells");
    g.sample_size(10);
    g.bench_function("unpooled-cold", |b| {
        b.iter(|| black_box(ratios_unpooled(&spec, &cells, instances)))
    });
    g.bench_function("pooled-steady-state", |b| {
        b.iter(|| black_box(ratios_pooled(&spec, &cells, instances)))
    });
    g.finish();
}

criterion_group!(benches, bench_pool);

/// Minimum wall time of `samples` runs of `f`, in nanoseconds. The floor
/// assertion compares against a recorded baseline from another process
/// run, so the noise-robust best case is the honest statistic (any single
/// slow sample is scheduler interference, not the code under test).
fn min_nanos(samples: usize, mut f: impl FnMut()) -> u128 {
    (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .min()
        .expect("at least one sample")
}

/// Pulls the recorded PR-2 instance-major median out of
/// `BENCH_sweep.json` (flat integer field; no JSON dependency needed).
fn recorded_sweep_baseline_ns(path: &str) -> u128 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read recorded baseline {path}: {e}"));
    let key = "\"instance_major_median_ns\":";
    let at = text
        .find(key)
        .unwrap_or_else(|| panic!("{path} has no {key} field"));
    text[at + key.len()..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer nanoseconds")
}

/// Measures the headline comparison and writes the JSON baseline.
fn write_baseline(path: &str) {
    let spec = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Large, K);
    let cells = grid();
    let instances = 4;
    let samples = 5;

    // The workload must actually be in the ≥1000-task regime the
    // acceptance criterion names.
    let mut min_tasks = usize::MAX;
    for i in 0..instances as u64 {
        let (job, _) = spec.sample(instance_seed(BASE_SEED, i));
        min_tasks = min_tasks.min(job.num_tasks());
    }
    assert!(
        min_tasks >= 1000,
        "headline instances too small: {min_tasks} tasks"
    );

    // Equal work first: the steady-state path must agree bit-for-bit with
    // the cold path before timing either.
    let warm = ratios_pooled(&spec, &cells, instances);
    let cold = ratios_unpooled(&spec, &cells, instances);
    assert_eq!(warm, cold, "pooled sweep diverged from cold; baseline void");

    let pooled = min_nanos(samples, || {
        black_box(ratios_pooled(&spec, &cells, instances));
    });
    let unpooled = min_nanos(samples, || {
        black_box(ratios_unpooled(&spec, &cells, instances));
    });
    let same_binary = unpooled as f64 / pooled as f64;

    // The asserted floor is against the *recorded* PR-2 sweep baseline:
    // the same workload, grid, seed, and instance count, measured before
    // the steady-state layer (and the selection-loop work that rode in
    // with it) existed. The same-binary unpooled number is reported for
    // context but carries those shared wins too, so it understates the PR.
    let recorded = recorded_sweep_baseline_ns("../../BENCH_sweep.json");
    let speedup = recorded as f64 / pooled as f64;

    let json = format!(
        "{{\n  \"bench\": \"pool/large-ir-12cells\",\n  \"workload\": {{\n    \
         \"spec\": \"{}\",\n    \"k\": {K},\n    \"cells\": {},\n    \
         \"instances\": {instances},\n    \"min_tasks\": {min_tasks}\n  }},\n  \
         \"samples\": {samples},\n  \"pooled_min_ns\": {pooled},\n  \
         \"unpooled_min_ns\": {unpooled},\n  \
         \"same_binary_speedup\": {same_binary:.2},\n  \
         \"recorded_pr2_instance_major_ns\": {recorded},\n  \
         \"speedup_vs_recorded\": {speedup:.2}\n}}\n",
        spec.label(),
        cells.len(),
    );
    std::fs::write(path, &json).expect("write baseline");
    println!(
        "wrote {path}: pooled {pooled} ns, unpooled {unpooled} ns \
         ({same_binary:.2}x same-binary), recorded PR-2 baseline {recorded} ns \
         ({speedup:.2}x vs recorded)"
    );
    assert!(
        speedup >= 1.3,
        "acceptance criterion: steady-state sweep must be ≥1.3× faster than \
         the recorded PR-2 instance-major baseline (got {speedup:.2}×)"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--json") {
        write_baseline(&w[1]);
        return;
    }
    let mut c = Criterion::from_args();
    benches(&mut c);
}
