//! Scaling benchmark for the analysis pipeline: per-stage wall times of
//! generate → transitive reduction → `Artifacts` → ShiftBT init →
//! KGreedy/MQB engine runs, swept Small → Huge on layered IR.
//!
//! The default criterion run keeps to Small/Medium (cheap enough for the
//! CI `--quick` smoke pass). `--json <path>` measures the full
//! Small→Huge ladder — the Huge rung is a ~10⁵-task instance — writes
//! `BENCH_scale.json`, and asserts the PR's scaling contract:
//!
//! * the reduction and ShiftBT-init stages grow **sub-quadratically**
//!   from Large to Huge (fitted exponent < 1.9 against task count), and
//! * incremental ShiftBT init beats the retained from-scratch oracle
//!   (`fhs_core::shiftbt::reference`) by ≥ 3× on Large.
//!
//! ```console
//! # paths are relative to crates/bench (the bench binary's CWD)
//! cargo bench -p fhs-bench --bench scale -- --json ../../BENCH_scale.json
//! ```

use std::sync::Arc;

use criterion::{black_box, criterion_group, Criterion};
use fhs_core::shiftbt::{reference, ShiftBT};
use fhs_core::{make_policy, Algorithm};
use fhs_sim::{engine, Mode, Policy, RunOptions, Workspace};
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};
use kdag::precompute::Artifacts;
use kdag::reduction::transitive_reduction;
use std::time::Instant;

const K: usize = 4;
/// One fixed instance per size class; seed 2 lands the Huge layered IR
/// instance at ~110k tasks (the ≥100k acceptance regime).
const SEED: u64 = 2;

fn spec(size: SystemSize) -> WorkloadSpec {
    WorkloadSpec::new(Family::Ir, Typing::Layered, size, K)
}

/// Minimum wall time of `samples` runs of `f`, in nanoseconds (the
/// noise-robust statistic, as in the pool bench).
fn min_nanos(samples: usize, mut f: impl FnMut()) -> u128 {
    (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .min()
        .expect("at least one sample")
}

struct StageTimes {
    label: &'static str,
    tasks: usize,
    edges: usize,
    generate_ns: u128,
    reduce_ns: u128,
    artifacts_ns: u128,
    shiftbt_init_ns: u128,
    kgreedy_ns: u128,
    mqb_ns: u128,
    mqb_approx_ns: u128,
}

/// Measures every pipeline stage on the fixed instance of `size`.
fn measure(size: SystemSize, samples: usize) -> StageTimes {
    let s = spec(size);
    let (job, cfg) = s.sample(SEED);
    let generate_ns = min_nanos(samples, || {
        black_box(s.sample(SEED));
    });
    let reduce_ns = min_nanos(samples, || {
        black_box(transitive_reduction(&job));
    });
    let artifacts_ns = min_nanos(samples, || {
        black_box(Artifacts::compute(&job));
    });
    let artifacts = Arc::new(Artifacts::compute(&job));
    // Warm policy: the steady-state shape the sweep runner uses.
    let mut policy = ShiftBT::default();
    let shiftbt_init_ns = min_nanos(samples, || {
        policy.init_with_artifacts(&job, &cfg, SEED, &artifacts);
        black_box(policy.bottleneck_order.len());
    });
    let run_stage = |algo: Algorithm| {
        let mut ws = Workspace::new();
        let mut p = make_policy(algo);
        min_nanos(samples, || {
            let out = engine::run_in(
                &mut ws,
                &job,
                &cfg,
                p.as_mut(),
                Mode::NonPreemptive,
                &RunOptions::seeded(SEED),
            );
            black_box(out.makespan);
        })
    };
    let kgreedy_ns = run_stage(Algorithm::KGreedy);
    let mqb_ns = run_stage(Algorithm::Mqb);
    let mqb_approx_ns = run_stage(Algorithm::MqbApprox);
    StageTimes {
        label: size.label(),
        tasks: job.num_tasks(),
        edges: job.num_edges(),
        generate_ns,
        reduce_ns,
        artifacts_ns,
        shiftbt_init_ns,
        kgreedy_ns,
        mqb_ns,
        mqb_approx_ns,
    }
}

/// Fitted growth exponent of `t` against `n` between two rungs:
/// `ln(t2/t1) / ln(n2/n1)`. Linear ⇒ ~1, quadratic ⇒ ~2.
fn exponent(n1: usize, t1: u128, n2: usize, t2: u128) -> f64 {
    let t1 = (t1.max(1)) as f64;
    let t2 = (t2.max(1)) as f64;
    (t2 / t1).ln() / ((n2 as f64) / (n1 as f64)).ln()
}

fn write_baseline(path: &str) {
    let ladder = [
        (SystemSize::Small, 9),
        (SystemSize::Medium, 7),
        (SystemSize::Large, 5),
        (SystemSize::Huge, 2),
    ];
    let rows: Vec<StageTimes> = ladder
        .iter()
        .map(|&(size, samples)| {
            let row = measure(size, samples);
            println!(
                "{:<7} {:>7} tasks {:>8} edges | gen {:>12} reduce {:>12} \
                 artifacts {:>12} shiftbt {:>12} kgreedy {:>12} mqb {:>12} \
                 mqb-approx {:>12} ns",
                row.label,
                row.tasks,
                row.edges,
                row.generate_ns,
                row.reduce_ns,
                row.artifacts_ns,
                row.shiftbt_init_ns,
                row.kgreedy_ns,
                row.mqb_ns,
                row.mqb_approx_ns
            );
            row
        })
        .collect();
    let huge = &rows[3];
    let large = &rows[2];
    assert!(
        huge.tasks >= 100_000,
        "Huge rung must be a ≥100k-task instance, got {}",
        huge.tasks
    );

    // ShiftBT-init speedup floor on Large: incremental vs the retained
    // from-scratch oracle, after checking they agree. Both sides take the
    // min over generous sample counts — the ratio of two noisy mins on a
    // shared-machine runner is only as stable as its weaker side.
    let s = spec(SystemSize::Large);
    let (job, cfg) = s.sample(SEED);
    let artifacts = Arc::new(Artifacts::compute(&job));
    let due = artifacts.due_dates().to_vec();
    let (oracle_order, oracle_rank) = reference::bottleneck_sequencing(&job, &cfg, &due);
    let mut p = ShiftBT::default();
    p.init_with_artifacts(&job, &cfg, SEED, &artifacts);
    assert_eq!(p.bottleneck_order, oracle_order, "oracle disagreement");
    assert_eq!(p.rank_table(), &oracle_rank[..], "oracle disagreement");
    let warm_init_ns = min_nanos(15, || {
        p.init_with_artifacts(&job, &cfg, SEED, &artifacts);
        black_box(p.bottleneck_order.len());
    });
    let oracle_ns = min_nanos(9, || {
        black_box(reference::bottleneck_sequencing(&job, &cfg, &due));
    });
    let shiftbt_speedup = oracle_ns as f64 / warm_init_ns as f64;

    let reduce_exp = exponent(large.tasks, large.reduce_ns, huge.tasks, huge.reduce_ns);
    let shiftbt_exp = exponent(
        large.tasks,
        large.shiftbt_init_ns,
        huge.tasks,
        huge.shiftbt_init_ns,
    );

    let mut sizes_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            sizes_json.push_str(",\n");
        }
        sizes_json.push_str(&format!(
            "    {{\n      \"size\": \"{}\",\n      \"tasks\": {},\n      \
             \"edges\": {},\n      \"generate_ns\": {},\n      \
             \"reduce_ns\": {},\n      \"artifacts_ns\": {},\n      \
             \"shiftbt_init_ns\": {},\n      \"kgreedy_run_ns\": {},\n      \
             \"mqb_run_ns\": {},\n      \"mqb_approx_run_ns\": {}\n    }}",
            r.label,
            r.tasks,
            r.edges,
            r.generate_ns,
            r.reduce_ns,
            r.artifacts_ns,
            r.shiftbt_init_ns,
            r.kgreedy_ns,
            r.mqb_ns,
            r.mqb_approx_ns
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"scale/layered-ir\",\n  \"k\": {K},\n  \
         \"seed\": {SEED},\n  \"sizes\": [\n{sizes_json}\n  ],\n  \
         \"reduce_growth_exponent_large_to_huge\": {reduce_exp:.3},\n  \
         \"shiftbt_growth_exponent_large_to_huge\": {shiftbt_exp:.3},\n  \
         \"shiftbt_oracle_ns_large\": {oracle_ns},\n  \
         \"shiftbt_init_speedup_large\": {shiftbt_speedup:.2}\n}}\n"
    );
    std::fs::write(path, &json).expect("write baseline");
    println!(
        "wrote {path}: reduce exponent {reduce_exp:.3}, shiftbt exponent \
         {shiftbt_exp:.3}, shiftbt init speedup {shiftbt_speedup:.2}x on Large"
    );
    assert!(
        reduce_exp < 1.9,
        "acceptance criterion: transitive reduction must scale \
         sub-quadratically Large→Huge (exponent {reduce_exp:.3})"
    );
    assert!(
        shiftbt_exp < 1.9,
        "acceptance criterion: ShiftBT init must scale sub-quadratically \
         Large→Huge (exponent {shiftbt_exp:.3})"
    );
    assert!(
        shiftbt_speedup >= 3.0,
        "acceptance criterion: incremental ShiftBT init must be ≥3× the \
         from-scratch oracle on Large (got {shiftbt_speedup:.2}×)"
    );
    // PR-7 acceptance: the incremental, index-pruned selection keeps an
    // *exact* MQB run on the ≥100k-task rung under one second — the
    // pre-index quadratic scan sat at ~11 s on the same instance.
    assert!(
        huge.mqb_ns < 1_000_000_000,
        "acceptance criterion: exact MQB on the Huge rung must finish \
         under 1 s (got {:.2} s)",
        huge.mqb_ns as f64 / 1e9
    );
    // PR-8 acceptance: the bounded-candidate approximation must actually
    // be cheaper than the exact selection it approximates, at every rung.
    // (It once inverted at scale: its per-round full sort + row mirror of
    // the whole queue cost more than the exact path's incremental index.)
    for r in &rows {
        assert!(
            r.mqb_approx_ns <= r.mqb_ns,
            "acceptance criterion: MQB-Approx must not cost more than \
             exact MQB ({}: approx {} ns > exact {} ns)",
            r.label,
            r.mqb_approx_ns,
            r.mqb_ns
        );
    }
    // PR-8 acceptance: epoch fast-forward + cache-conscious hot state keep
    // a Huge KGreedy run under 27 ms (the seed sat at ~48 ms).
    assert!(
        huge.kgreedy_ns < 27_000_000,
        "acceptance criterion: KGreedy on the Huge rung must finish under \
         27 ms (got {:.1} ms)",
        huge.kgreedy_ns as f64 / 1e6
    );
}

fn bench_scale(c: &mut Criterion) {
    // Default criterion path: Small/Medium only, cheap enough for the CI
    // `--quick` smoke run; the full ladder lives behind --json.
    for size in [SystemSize::Small, SystemSize::Medium] {
        let s = spec(size);
        let (job, cfg) = s.sample(SEED);
        let artifacts = Arc::new(Artifacts::compute(&job));
        let mut g = c.benchmark_group(format!("scale/{}", size.label().to_lowercase()));
        g.sample_size(10);
        g.bench_function("reduce", |b| {
            b.iter(|| black_box(transitive_reduction(&job)))
        });
        g.bench_function("shiftbt-init", |b| {
            let mut p = ShiftBT::default();
            b.iter(|| {
                p.init_with_artifacts(&job, &cfg, SEED, &artifacts);
                black_box(p.bottleneck_order.len())
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_scale);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--json") {
        write_baseline(&w[1]);
        return;
    }
    let mut c = Criterion::from_args();
    benches(&mut c);
}
