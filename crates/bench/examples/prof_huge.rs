//! Ad-hoc profiling harness for the Large/Huge-rung engine runs (not
//! shipped in benches; run with
//! `cargo run --release -p fhs-bench --example prof_huge`).

use std::time::Instant;

use fhs_core::{make_policy, Algorithm};
use fhs_sim::{engine, Mode, RunOptions, Workspace};
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};

fn main() {
    for size in [SystemSize::Large, SystemSize::Huge] {
        let s = WorkloadSpec::new(Family::Ir, Typing::Layered, size, 4);
        let (job, cfg) = s.sample(2);
        println!(
            "{}: tasks {} edges {} procs {:?}",
            size.label(),
            job.num_tasks(),
            job.num_edges(),
            cfg.procs_per_type()
        );
        for algo in [Algorithm::KGreedy, Algorithm::Mqb, Algorithm::MqbApprox] {
            let mut ws = Workspace::new();
            let mut p = make_policy(algo);
            let mut best = u128::MAX;
            let mut stats = None;
            for _ in 0..5 {
                let t0 = Instant::now();
                let out = engine::run_in(
                    &mut ws,
                    &job,
                    &cfg,
                    p.as_mut(),
                    Mode::NonPreemptive,
                    &RunOptions::seeded(2),
                );
                best = best.min(t0.elapsed().as_nanos());
                stats = Some(out);
            }
            let out = stats.unwrap();
            println!(
                "{:<12} {:>10.3} ms | makespan {} | {}",
                algo.label(),
                best as f64 / 1e6,
                out.makespan,
                out.stats
            );
        }
    }
}
