//! # fhs-bench — Criterion benchmarks for the reproduction
//!
//! Three bench binaries:
//!
//! * `schedulers` — single-job scheduling cost of each algorithm on fixed
//!   small/medium instances, in both execution modes.
//! * `figures` — one group per paper figure, timing the full experiment
//!   cell pipeline (generation → scheduling → statistics) at reduced
//!   instance counts. The *numbers* the paper reports come from the
//!   `fhs-experiments` binaries; these benches time regenerating them.
//! * `ablations` — the design choices called out in DESIGN.md §5:
//!   MQB's balance metric and own-work subtraction, the epoch-skipping
//!   preemptive engine vs the literal per-quantum engine, and the
//!   descendant-value precomputation.
//!
//! Run with `cargo bench --workspace` (or `-p fhs-bench --bench figures`).

#![forbid(unsafe_code)]

use fhs_sim::MachineConfig;
use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};
use kdag::KDag;

/// A fixed small layered-EP instance shared by benches.
pub fn small_ep() -> (KDag, MachineConfig) {
    WorkloadSpec::new(Family::Ep, Typing::Layered, SystemSize::Small, 4).sample(7)
}

/// A fixed medium layered-IR instance shared by benches.
pub fn medium_ir() -> (KDag, MachineConfig) {
    WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Medium, 4).sample(7)
}

/// A fixed medium layered-tree instance shared by benches.
pub fn medium_tree() -> (KDag, MachineConfig) {
    WorkloadSpec::new(Family::Tree, Typing::Layered, SystemSize::Medium, 4).sample(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_nontrivial() {
        let (ep, _) = small_ep();
        let (ir, _) = medium_ir();
        let (tree, _) = medium_tree();
        assert!(ep.num_tasks() > 20);
        assert!(ir.num_tasks() > 100);
        assert!(tree.num_tasks() > 60);
    }
}
