//! Property tests for the engines: trace legality on random K-DAGs,
//! equality of the epoch-skipping preemptive engine and the literal
//! per-quantum engine, and conservation laws.

use fhs_sim::policy::FifoPolicy;
use fhs_sim::{engine, trace, MachineConfig, Mode, RunOptions};
use kdag::{metrics, KDag, KDagBuilder, TaskId};
use proptest::prelude::*;

fn arb_kdag(k: usize, max_tasks: usize, max_work: u64) -> impl Strategy<Value = KDag> {
    (1..=max_tasks).prop_flat_map(move |n| {
        let types = proptest::collection::vec(0..k, n);
        let works = proptest::collection::vec(1..=max_work, n);
        let parents = proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..=3), n);
        (types, works, parents).prop_map(move |(types, works, parents)| {
            let mut b = KDagBuilder::new(k);
            let ids: Vec<TaskId> = types
                .iter()
                .zip(&works)
                .map(|(&t, &w)| b.add_task(t, w))
                .collect();
            let mut seen = std::collections::HashSet::new();
            for (i, ps) in parents.iter().enumerate().skip(1) {
                for &raw in ps {
                    let p = (raw as usize) % i;
                    if seen.insert((p, i)) {
                        b.add_edge(ids[p], ids[i]).unwrap();
                    }
                }
            }
            b.build().expect("forward-edge graphs are acyclic")
        })
    })
}

fn arb_config(k: usize) -> impl Strategy<Value = MachineConfig> {
    proptest::collection::vec(1usize..4, k).prop_map(MachineConfig::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn nonpreemptive_traces_are_legal(dag in arb_kdag(3, 40, 4), cfg in arb_config(3)) {
        let opts = RunOptions::default().with_trace();
        let out = engine::run(&dag, &cfg, &mut FifoPolicy, Mode::NonPreemptive, &opts);
        let tr = out.trace.expect("requested");
        prop_assert_eq!(trace::validate(&tr, &dag, &cfg), Ok(()));
        // non-preemptive = one segment per task
        prop_assert_eq!(tr.preemption_count(&dag), 0);
    }

    #[test]
    fn preemptive_traces_are_legal(dag in arb_kdag(3, 40, 4), cfg in arb_config(3)) {
        let opts = RunOptions::default().with_trace();
        let out = engine::run(&dag, &cfg, &mut FifoPolicy, Mode::Preemptive, &opts);
        let tr = out.trace.expect("requested");
        prop_assert_eq!(trace::validate(&tr, &dag, &cfg), Ok(()));
    }

    #[test]
    fn makespan_within_theory_bounds(dag in arb_kdag(3, 40, 4), cfg in arb_config(3)) {
        // L(J) ≤ T(J) ≤ (K+1)·L(J): the right side is the KGreedy
        // guarantee (Theorem 3 of He/Sun/Hsu), with L(J) ≥ the optimum.
        let lb = metrics::lower_bound(&dag, cfg.procs_per_type());
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let out = engine::run(&dag, &cfg, &mut FifoPolicy, mode, &RunOptions::default());
            prop_assert!(out.makespan >= lb);
            let k = dag.num_types() as u64;
            // T ≤ span + Σ_α T1α/Pα ≤ (K+1)·L — use the additive form to
            // avoid slack in the multiplicative one on tiny instances.
            let additive: u64 = metrics::span(&dag)
                + (0..dag.num_types())
                    .map(|a| dag.total_work_of_type(a).div_ceil(cfg.procs(a) as u64))
                    .sum::<u64>();
            prop_assert!(
                out.makespan <= additive,
                "makespan {} > additive greedy bound {} (K = {})",
                out.makespan, additive, k
            );
        }
    }

    #[test]
    fn per_step_and_epoch_preemptive_agree(dag in arb_kdag(3, 25, 4), cfg in arb_config(3)) {
        let fast = engine::run(&dag, &cfg, &mut FifoPolicy, Mode::Preemptive, &RunOptions::default());
        let slow = engine::run_per_step(&dag, &cfg, &mut FifoPolicy, &RunOptions::default());
        prop_assert_eq!(fast.makespan, slow.makespan);
        prop_assert_eq!(fast.busy_time, slow.busy_time);
    }

    #[test]
    fn busy_time_conserves_total_work(dag in arb_kdag(3, 40, 4), cfg in arb_config(3)) {
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let out = engine::run(&dag, &cfg, &mut FifoPolicy, mode, &RunOptions::default());
            prop_assert_eq!(out.busy_time.iter().sum::<u64>(), dag.total_work());
            // per-type busy time equals per-type work
            for alpha in 0..dag.num_types() {
                prop_assert_eq!(out.busy_time[alpha], dag.total_work_of_type(alpha));
            }
            // utilization in (0, 1]
            for u in out.utilization(&cfg) {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&u));
            }
        }
    }

    #[test]
    fn preemptive_never_loses_to_nonpreemptive_under_fifo_on_chains(
        works in proptest::collection::vec(1u64..6, 1..12),
        p in 1usize..3,
    ) {
        // On a pure chain both modes are forced to the serial schedule.
        let mut b = KDagBuilder::new(1);
        let mut prev: Option<TaskId> = None;
        for &w in &works {
            let v = b.add_task(0, w);
            if let Some(p) = prev {
                b.add_edge(p, v).unwrap();
            }
            prev = Some(v);
        }
        let dag = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, p);
        let np = engine::run(&dag, &cfg, &mut FifoPolicy, Mode::NonPreemptive, &RunOptions::default());
        let pe = engine::run(&dag, &cfg, &mut FifoPolicy, Mode::Preemptive, &RunOptions::default());
        let total: u64 = works.iter().sum();
        prop_assert_eq!(np.makespan, total);
        prop_assert_eq!(pe.makespan, total);
    }
}
