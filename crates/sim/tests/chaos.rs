//! Chaos testing: a policy that makes *random but valid* selections each
//! epoch must never break the engines — every run completes, conserves
//! work, and produces a legal trace. This exercises engine paths that
//! well-behaved policies never reach (partial assignments, idle slots
//! with non-empty queues, erratic preemption).

use fhs_sim::policy::{Assignments, EpochView, Policy};
use fhs_sim::{engine, trace, MachineConfig, Mode, RunOptions};
use kdag::{KDag, KDagBuilder, TaskId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Selects a random subset (possibly empty per type, but never globally
/// empty when work exists) of candidates each epoch.
struct ChaosPolicy {
    rng: StdRng,
    scratch: Vec<fhs_sim::ReadyTask>,
}

impl Policy for ChaosPolicy {
    fn name(&self) -> &str {
        "Chaos"
    }

    fn init(&mut self, _job: &KDag, _config: &MachineConfig, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        let mut chose_any = false;
        let mut fallback: Option<(usize, TaskId)> = None;
        for alpha in 0..view.config.num_types() {
            let slots = view.slots[alpha];
            if slots == 0 || view.queues[alpha].is_empty() {
                continue;
            }
            // index-based selection: snapshot the live queue once
            view.queues[alpha].collect_into(&mut self.scratch);
            let queue = &self.scratch;
            if fallback.is_none() {
                fallback = Some((alpha, queue[0].id));
            }
            // choose a random count 0..=min(slots, len), random prefix of a
            // random rotation for variety
            let take = self.rng.gen_range(0..=slots.min(queue.len()));
            let offset = self.rng.gen_range(0..queue.len());
            for j in 0..take {
                let rt = &queue[(offset + j) % queue.len()];
                out.push(alpha, rt.id);
                chose_any = true;
            }
        }
        // The engines treat a globally-empty assignment with idle work as
        // a deadlock (non-preemptive tolerates it only while something
        // runs; preemptive never). Always schedule at least one task.
        if !chose_any {
            if let Some((alpha, id)) = fallback {
                out.push(alpha, id);
            }
        }
    }
}

fn arb_kdag(k: usize, max_tasks: usize, max_work: u64) -> impl Strategy<Value = KDag> {
    (1..=max_tasks).prop_flat_map(move |n| {
        let types = proptest::collection::vec(0..k, n);
        let works = proptest::collection::vec(1..=max_work, n);
        let parents = proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..=3), n);
        (types, works, parents).prop_map(move |(types, works, parents)| {
            let mut b = KDagBuilder::new(k);
            let ids: Vec<TaskId> = types
                .iter()
                .zip(&works)
                .map(|(&t, &w)| b.add_task(t, w))
                .collect();
            let mut seen = std::collections::HashSet::new();
            for (i, ps) in parents.iter().enumerate().skip(1) {
                for &raw in ps {
                    let p = (raw as usize) % i;
                    if seen.insert((p, i)) {
                        b.add_edge(ids[p], ids[i]).unwrap();
                    }
                }
            }
            b.build().expect("forward-edge graphs are acyclic")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chaos_policy_cannot_break_the_engines(
        dag in arb_kdag(3, 30, 4),
        procs in proptest::collection::vec(1usize..4, 3),
        seed in any::<u64>(),
        quantum in proptest::option::of(1u64..4),
    ) {
        let cfg = MachineConfig::new(procs);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let mut policy = ChaosPolicy { rng: StdRng::seed_from_u64(0), scratch: Vec::new() };
            let mut opts = RunOptions::seeded(seed).with_trace();
            opts.quantum = quantum;
            let out = engine::run(&dag, &cfg, &mut policy, mode, &opts);
            // completes all work
            prop_assert_eq!(out.busy_time.iter().sum::<u64>(), dag.total_work());
            // legal trace
            let tr = out.trace.expect("requested");
            prop_assert_eq!(trace::validate(&tr, &dag, &cfg), Ok(()), "{:?}", mode);
            // within the trivial serial bound
            prop_assert!(out.makespan <= dag.total_work());
        }
    }

    #[test]
    fn chaos_runs_still_respect_the_lower_bound(
        dag in arb_kdag(2, 25, 3),
        seed in any::<u64>(),
    ) {
        let cfg = MachineConfig::uniform(2, 2);
        let lb = kdag::metrics::lower_bound(&dag, cfg.procs_per_type());
        let mut policy = ChaosPolicy { rng: StdRng::seed_from_u64(0), scratch: Vec::new() };
        let out = engine::run(&dag, &cfg, &mut policy, Mode::Preemptive, &RunOptions::seeded(seed));
        prop_assert!(out.makespan >= lb);
    }
}
