//! The scheduling-policy interface between the engines and the algorithms.
//!
//! At every *decision epoch* the engine presents the policy with an
//! [`EpochView`] — the per-type candidate queues and the number of slots
//! available per type — and the policy fills an [`Assignments`] with the
//! tasks it wants running. This mirrors the information model of the
//! paper:
//!
//! * An **online** policy (KGreedy) only looks at queue membership (ids and
//!   arrival order) — task works and the DAG structure below ready tasks
//!   are *unknown to the online scheduler* (§II), and the trait cannot stop
//!   a policy from peeking, but the provided online policies don't.
//! * **Offline** policies precompute whatever they need from the full
//!   K-DAG in [`Policy::init`].

use std::sync::Arc;

use kdag::precompute::Artifacts;
use kdag::{KDag, TaskId, Work};

use crate::config::MachineConfig;
use crate::ready_queue::ReadyQueue;
use crate::workspace::Workspace;
use crate::Time;

/// A candidate task visible to the policy at a decision epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadyTask {
    /// The task.
    pub id: TaskId,
    /// Global arrival sequence number: strictly increasing in the order
    /// tasks became ready. FIFO policies dispatch by this.
    pub seq: u64,
    /// Remaining work. Equals the full work for never-started tasks; under
    /// preemptive execution, partially-run candidates have smaller values.
    pub remaining: Work,
}

/// Everything a policy may inspect at one decision epoch.
#[derive(Debug)]
pub struct EpochView<'a> {
    /// Current simulation time.
    pub time: Time,
    /// The job being executed.
    pub job: &'a KDag,
    /// The machine configuration.
    pub config: &'a MachineConfig,
    /// Per-type candidate queues in arrival (seq) order.
    ///
    /// Non-preemptive epochs list only *ready* (not yet started) tasks.
    /// Preemptive epochs list ready **and currently-running** tasks — the
    /// policy re-decides the whole allocation and un-chosen running tasks
    /// are preempted.
    ///
    /// Read through [`ReadyQueue::iter`] /
    /// [`ReadyQueue::first`]; policies that select by queue index should
    /// snapshot once per epoch via [`ReadyQueue::collect_into`].
    pub queues: &'a [ReadyQueue],
    /// Total remaining work per queue — the `l_α` of MQB's x-utilization.
    pub queue_work: &'a [Work],
    /// Upper bound on how many tasks may be chosen per type: free
    /// processors (non-preemptive) or all `P_α` processors (preemptive).
    pub slots: &'a [usize],
    /// Whether this is a preemptive decision (queues may contain
    /// partially-executed tasks).
    pub preemptive: bool,
}

impl EpochView<'_> {
    /// The x-utilization `r_α = l_α / P_α` of queue `alpha` (MQB §IV-A).
    pub fn x_utilization(&self, alpha: usize) -> f64 {
        self.queue_work[alpha] as f64 / self.config.procs(alpha) as f64
    }
}

/// The policy's output: for each type, the tasks to run now.
///
/// Reused across epochs to avoid per-epoch allocation.
#[derive(Clone, Debug, Default)]
pub struct Assignments {
    per_type: Vec<Vec<TaskId>>,
}

impl Assignments {
    /// Clears and resizes for `k` types, reusing the retained buffers.
    pub fn reset(&mut self, k: usize) {
        for v in &mut self.per_type {
            v.clear();
        }
        // `resize_with` both grows (fresh empty lanes) and shrinks; the
        // lanes kept across calls were cleared above, so no stale task can
        // survive a shrink-then-grow cycle.
        self.per_type.resize_with(k, Vec::new);
    }

    /// Schedules `task` onto a type-`alpha` processor this epoch.
    #[inline]
    pub fn push(&mut self, alpha: usize, task: TaskId) {
        self.per_type[alpha].push(task);
    }

    /// Tasks chosen for type `alpha`.
    #[inline]
    pub fn chosen(&self, alpha: usize) -> &[TaskId] {
        &self.per_type[alpha]
    }

    /// Total number of tasks chosen across all types.
    pub fn total(&self) -> usize {
        self.per_type.iter().map(Vec::len).sum()
    }
}

/// A scheduling algorithm.
///
/// One policy value is used for one job execution: [`Policy::init`] is
/// called once before the run (offline policies precompute their tables
/// there), then [`Policy::assign`] once per decision epoch.
pub trait Policy: Send {
    /// Human-readable algorithm name (used in tables and benches).
    fn name(&self) -> &str;

    /// Called once before simulation starts. `seed` feeds any stochastic
    /// component (e.g. MQB's noisy-information models); deterministic
    /// policies may ignore it.
    fn init(&mut self, job: &KDag, config: &MachineConfig, seed: u64);

    /// As [`Policy::init`], with a shared bundle of precomputed graph
    /// analyses for `job` (see [`kdag::precompute::Artifacts`]). Sweeps
    /// evaluating many `(algorithm, mode)` cells on common random numbers
    /// call this so every cell reuses one instance's analyses instead of
    /// recomputing them per cell.
    ///
    /// The contract is strict: initializing from `artifacts` must leave the
    /// policy in a **bit-identical** state to a cold [`Policy::init`] with
    /// the same arguments. The default implementation guarantees that
    /// trivially by ignoring the bundle and delegating to `init`, so
    /// third-party policies are unaffected.
    fn init_with_artifacts(
        &mut self,
        job: &KDag,
        config: &MachineConfig,
        seed: u64,
        artifacts: &Arc<Artifacts>,
    ) {
        let _ = artifacts;
        self.init(job, config, seed);
    }

    /// Hook invoked by the workspace-reusing entry points
    /// ([`crate::engine::run_in`] and friends) *before* `init`, handing the
    /// policy the run's [`Workspace`]. Policies that keep per-run scratch
    /// may clear it here or park reusable buffers in the workspace's typed
    /// [`Workspace::scratch_mut`] slots so they survive across runs on the
    /// same worker.
    ///
    /// The contract mirrors `init_with_artifacts`: after `reset_in` +
    /// `init`, the policy's observable behavior must be **bit-identical**
    /// to a cold `init` alone. The default is a no-op (the cold path), so
    /// policies that fully reset in `init` need not implement it.
    fn reset_in(&mut self, workspace: &mut Workspace) {
        let _ = workspace;
    }

    /// Fill `out` with at most `view.slots[α]` tasks from `view.queues[α]`
    /// for each type `α`. Choosing fewer than the slot count is allowed
    /// (but wastes processors); choosing tasks not present in the queue or
    /// duplicates is an error the engine panics on.
    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments);

    /// Job-scoped attach hook for the session engine: called by
    /// [`crate::session::Session::admit`] when this policy value takes on a
    /// (new) job mid-session, possibly after having served earlier jobs.
    /// `artifacts`, when present, carries the job's shared precompute
    /// bundle.
    ///
    /// The contract extends `init_with_artifacts`: after `attach_job`, the
    /// policy's observable behavior on this job must be **bit-identical**
    /// to a fresh policy value cold-`init`ed for it — that's what lets
    /// sessions recycle policy values (warm tables, zero reallocation)
    /// across a job stream. The default delegates to
    /// [`Policy::init`]/[`Policy::init_with_artifacts`], whose contracts
    /// already require full per-job re-initialization.
    fn attach_job(
        &mut self,
        job: &KDag,
        config: &MachineConfig,
        seed: u64,
        artifacts: Option<&Arc<Artifacts>>,
    ) {
        match artifacts {
            Some(a) => self.init_with_artifacts(job, config, seed, a),
            None => self.init(job, config, seed),
        }
    }

    /// Job-scoped detach hook: called when the session retires this
    /// policy's job, before the value is parked in the recycle pool.
    /// Policies holding per-job derived tables may drop or shrink them
    /// here; behavior of a later [`Policy::attach_job`] must not depend on
    /// whether `detach_job` ran. The default is a no-op.
    fn detach_job(&mut self) {}

    /// Takes (and resets) the policy's candidate-selection counters, when
    /// it maintains any (see
    /// [`SelectionStats`](crate::instrument::SelectionStats)). The engine
    /// harvests this once per run (and the session engine once per retired
    /// job) into [`RunStats::selection`](crate::instrument::RunStats). The
    /// default returns `None` — most policies don't track selection work.
    fn take_selection_stats(&mut self) -> Option<crate::instrument::SelectionStats> {
        None
    }

    /// Whether [`Policy::assign`] is a pure function of queue *membership
    /// and order* plus the slot counts — independent of the epoch time,
    /// candidates' remaining work, internal mutable state (RNG streams,
    /// journal cursors, sequencing caches), and how many times it has been
    /// called.
    ///
    /// Returning `true` certifies that two consecutive epochs presenting
    /// the same queues (same tasks, same order) and the same slots receive
    /// the **identical** assignment. The session engine uses this to
    /// *fast-forward* per-quantum preemptive spans in which nothing
    /// completes or arrives: the skipped epochs would all have re-made the
    /// same decision, so the engine jumps the clock to the next real event
    /// and synthesizes their counters instead. Claiming stability falsely
    /// silently changes schedules; the default is the conservative `false`
    /// (every epoch is executed).
    fn assign_stable(&self) -> bool {
        false
    }
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn init(&mut self, job: &KDag, config: &MachineConfig, seed: u64) {
        (**self).init(job, config, seed)
    }
    fn init_with_artifacts(
        &mut self,
        job: &KDag,
        config: &MachineConfig,
        seed: u64,
        artifacts: &Arc<Artifacts>,
    ) {
        (**self).init_with_artifacts(job, config, seed, artifacts)
    }
    fn reset_in(&mut self, workspace: &mut Workspace) {
        (**self).reset_in(workspace)
    }
    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        (**self).assign(view, out)
    }
    fn attach_job(
        &mut self,
        job: &KDag,
        config: &MachineConfig,
        seed: u64,
        artifacts: Option<&Arc<Artifacts>>,
    ) {
        (**self).attach_job(job, config, seed, artifacts)
    }
    fn detach_job(&mut self) {
        (**self).detach_job()
    }
    fn take_selection_stats(&mut self) -> Option<crate::instrument::SelectionStats> {
        (**self).take_selection_stats()
    }
    fn assign_stable(&self) -> bool {
        (**self).assign_stable()
    }
}

/// Greedy FIFO policy: per type, run the `slots[α]` earliest-arrived
/// candidates. This is the paper's **KGreedy** online algorithm (each
/// type's pool is a Graham greedy scheduler); it lives here because the
/// engines' own tests need a concrete policy without depending on
/// `fhs-core`.
#[derive(Clone, Debug, Default)]
pub struct FifoPolicy;

impl Policy for FifoPolicy {
    fn name(&self) -> &str {
        "KGreedy"
    }

    fn init(&mut self, _job: &KDag, _config: &MachineConfig, _seed: u64) {}

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        for alpha in 0..view.config.num_types() {
            // Queues are kept in arrival order by the engine, so FIFO is a
            // prefix take.
            for rt in view.queues[alpha].iter().take(view.slots[alpha]) {
                out.push(alpha, rt.id);
            }
        }
    }

    // A prefix take depends only on queue order and the slot count.
    fn assign_stable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::KDagBuilder;

    #[test]
    fn assignments_reset_reuses_buffers() {
        let mut a = Assignments::default();
        a.reset(2);
        a.push(0, TaskId::from_index(0));
        a.push(1, TaskId::from_index(1));
        assert_eq!(a.total(), 2);
        a.reset(3);
        assert_eq!(a.total(), 0);
        assert_eq!(a.chosen(2), &[]);
        a.reset(1);
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn assignments_reset_to_smaller_k_drops_tail_lanes() {
        // Regression: shrinking `k` must leave exactly `k` empty lanes and
        // no stale task may resurface when growing back.
        let mut a = Assignments::default();
        a.reset(3);
        a.push(2, TaskId::from_index(7));
        a.push(0, TaskId::from_index(1));
        a.reset(2);
        assert_eq!(a.total(), 0);
        assert_eq!(a.chosen(0), &[]);
        assert_eq!(a.chosen(1), &[]);
        a.push(1, TaskId::from_index(4));
        assert_eq!(a.total(), 1);
        a.reset(3);
        assert_eq!(a.total(), 0);
        assert_eq!(a.chosen(2), &[], "stale lane survived shrink-then-grow");
    }

    #[test]
    fn fifo_takes_prefix_per_type() {
        let mut b = KDagBuilder::new(2);
        let ids: Vec<_> = (0..4).map(|i| b.add_task(i % 2, 1)).collect();
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 2]);
        let queues = vec![
            ReadyQueue::from_tasks(vec![
                ReadyTask {
                    id: ids[0],
                    seq: 0,
                    remaining: 1,
                },
                ReadyTask {
                    id: ids[2],
                    seq: 2,
                    remaining: 1,
                },
            ]),
            ReadyQueue::from_tasks(vec![
                ReadyTask {
                    id: ids[1],
                    seq: 1,
                    remaining: 1,
                },
                ReadyTask {
                    id: ids[3],
                    seq: 3,
                    remaining: 1,
                },
            ]),
        ];
        let view = EpochView {
            time: 0,
            job: &job,
            config: &cfg,
            queues: &queues,
            queue_work: &[2, 2],
            slots: &[1, 2],
            preemptive: false,
        };
        let mut out = Assignments::default();
        out.reset(2);
        FifoPolicy.assign(&view, &mut out);
        assert_eq!(out.chosen(0), &[ids[0]]);
        assert_eq!(out.chosen(1), &[ids[1], ids[3]]);
    }

    #[test]
    fn x_utilization_divides_by_procs() {
        let job = {
            let mut b = KDagBuilder::new(2);
            b.add_task(0, 1);
            b.build().unwrap()
        };
        let cfg = MachineConfig::new(vec![2, 4]);
        let view = EpochView {
            time: 0,
            job: &job,
            config: &cfg,
            queues: &[ReadyQueue::new(), ReadyQueue::new()],
            queue_work: &[10, 10],
            slots: &[2, 4],
            preemptive: false,
        };
        assert_eq!(view.x_utilization(0), 5.0);
        assert_eq!(view.x_utilization(1), 2.5);
    }
}
