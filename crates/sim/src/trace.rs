//! Execution traces and the model-rule validator.

use kdag::{KDag, TaskId};

use crate::config::MachineConfig;
use crate::Time;

/// A contiguous stretch of one task executing on one processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Task being executed.
    pub task: TaskId,
    /// Resource type of the processor (and of the task).
    pub rtype: usize,
    /// Processor index within its type's pool, `< P_rtype`.
    pub proc: u32,
    /// Inclusive start time.
    pub start: Time,
    /// Exclusive end time (`end > start`).
    pub end: Time,
}

/// A complete record of one simulated execution.
#[derive(Clone, Debug)]
pub struct Trace {
    segments: Vec<Segment>,
    makespan: Time,
}

impl Trace {
    /// Wraps raw segments; see [`validate`] for checking them.
    pub fn new(segments: Vec<Segment>, makespan: Time) -> Self {
        Trace { segments, makespan }
    }

    /// All execution segments (unordered).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The recorded completion time.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// All segments of one task, sorted by start time.
    pub fn task_segments(&self, task: TaskId) -> Vec<Segment> {
        let mut segs: Vec<Segment> = self
            .segments
            .iter()
            .copied()
            .filter(|s| s.task == task)
            .collect();
        segs.sort_by_key(|s| s.start);
        segs
    }

    /// Number of preemptions: segments beyond the first, per task, summed.
    pub fn preemption_count(&self, job: &KDag) -> usize {
        job.tasks()
            .map(|v| self.task_segments(v).len().saturating_sub(1))
            .sum()
    }
}

/// Merges back-to-back segments of the same task on the same processor
/// (`end == next.start`); produced by the preemptive engine when a task
/// remains scheduled across consecutive epochs.
pub fn coalesce(segments: &mut Vec<Segment>) {
    segments.sort_by_key(|s| (s.task, s.proc, s.start));
    let mut out: Vec<Segment> = Vec::with_capacity(segments.len());
    for &s in segments.iter() {
        match out.last_mut() {
            Some(last) if last.task == s.task && last.proc == s.proc && last.end == s.start => {
                last.end = s.end;
            }
            _ => out.push(s),
        }
    }
    *segments = out;
}

/// Renders the trace as CSV (`task,rtype,proc,start,end`), segments
/// sorted by start time — the interchange format for downstream analysis
/// (also exposed as `fhs schedule --trace-csv`).
pub fn to_csv(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut segs: Vec<&Segment> = trace.segments().iter().collect();
    segs.sort_by_key(|s| (s.start, s.rtype, s.proc));
    let mut out = String::from("task,rtype,proc,start,end\n");
    for s in segs {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            s.task.index(),
            s.rtype,
            s.proc,
            s.start,
            s.end
        );
    }
    out
}

/// Ways a trace can violate the K-DAG execution model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// A segment has `end <= start`.
    EmptySegment(TaskId),
    /// A segment ran a task on a pool of the wrong type.
    TypeMismatch {
        /// Offending task.
        task: TaskId,
        /// Task's declared type.
        task_type: usize,
        /// Pool the segment claims.
        pool: usize,
    },
    /// A segment names a processor index `≥ P_α`.
    BadProcessor(TaskId),
    /// The union of a task's segments does not equal its work.
    WorkMismatch {
        /// Offending task.
        task: TaskId,
        /// Total executed time.
        executed: u64,
        /// Declared work.
        work: u64,
    },
    /// Two segments overlap on one processor.
    ProcessorOverlap {
        /// Resource type of the pool.
        rtype: usize,
        /// Processor index.
        proc: u32,
        /// Time at which the overlap begins.
        at: Time,
    },
    /// Two segments of one task overlap in time (a task cannot run on two
    /// processors at once).
    TaskOverlap(TaskId),
    /// A task started before one of its parents finished.
    PrecedenceViolation {
        /// Parent task.
        parent: TaskId,
        /// Child task.
        child: TaskId,
    },
    /// A segment extends past the recorded makespan.
    ExceedsMakespan(TaskId),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::EmptySegment(t) => write!(f, "empty segment for {t}"),
            TraceError::TypeMismatch {
                task,
                task_type,
                pool,
            } => {
                write!(f, "{task} of type {task_type} ran on a type-{pool} pool")
            }
            TraceError::BadProcessor(t) => write!(f, "{t} ran on a nonexistent processor"),
            TraceError::WorkMismatch {
                task,
                executed,
                work,
            } => {
                write!(f, "{task} executed {executed} units but has work {work}")
            }
            TraceError::ProcessorOverlap { rtype, proc, at } => {
                write!(f, "pool {rtype} processor {proc} double-booked at t={at}")
            }
            TraceError::TaskOverlap(t) => write!(f, "{t} ran on two processors at once"),
            TraceError::PrecedenceViolation { parent, child } => {
                write!(f, "{child} started before its parent {parent} finished")
            }
            TraceError::ExceedsMakespan(t) => write!(f, "{t} runs past the makespan"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Checks that `trace` is a legal execution of `job` on `config`:
/// segment sanity, type matching, processor bounds, per-processor and
/// per-task exclusivity, exact work totals, precedence, and makespan
/// containment.
pub fn validate(trace: &Trace, job: &KDag, config: &MachineConfig) -> Result<(), TraceError> {
    // Per-segment sanity + accumulate per-task execution.
    let mut executed = vec![0u64; job.num_tasks()];
    for s in trace.segments() {
        if s.end <= s.start {
            return Err(TraceError::EmptySegment(s.task));
        }
        let tt = job.rtype(s.task);
        if tt != s.rtype {
            return Err(TraceError::TypeMismatch {
                task: s.task,
                task_type: tt,
                pool: s.rtype,
            });
        }
        if (s.proc as usize) >= config.procs(s.rtype) {
            return Err(TraceError::BadProcessor(s.task));
        }
        if s.end > trace.makespan() {
            return Err(TraceError::ExceedsMakespan(s.task));
        }
        executed[s.task.index()] += s.end - s.start;
    }

    for v in job.tasks() {
        if executed[v.index()] != job.work(v) {
            return Err(TraceError::WorkMismatch {
                task: v,
                executed: executed[v.index()],
                work: job.work(v),
            });
        }
    }

    // Processor exclusivity: sort by (type, proc, start).
    let mut by_proc: Vec<&Segment> = trace.segments().iter().collect();
    by_proc.sort_by_key(|s| (s.rtype, s.proc, s.start));
    for w in by_proc.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a.rtype == b.rtype && a.proc == b.proc && b.start < a.end {
            return Err(TraceError::ProcessorOverlap {
                rtype: a.rtype,
                proc: a.proc,
                at: b.start,
            });
        }
    }

    // Task exclusivity: sort by (task, start).
    let mut by_task: Vec<&Segment> = trace.segments().iter().collect();
    by_task.sort_by_key(|s| (s.task, s.start));
    for w in by_task.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a.task == b.task && b.start < a.end {
            return Err(TraceError::TaskOverlap(a.task));
        }
    }

    // Precedence: child's first start ≥ parent's last end.
    let mut first_start = vec![Time::MAX; job.num_tasks()];
    let mut last_end = vec![0 as Time; job.num_tasks()];
    for s in trace.segments() {
        let i = s.task.index();
        first_start[i] = first_start[i].min(s.start);
        last_end[i] = last_end[i].max(s.end);
    }
    for v in job.tasks() {
        for &c in job.children(v) {
            if first_start[c.index()] < last_end[v.index()] {
                return Err(TraceError::PrecedenceViolation {
                    parent: v,
                    child: c,
                });
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::KDagBuilder;

    fn tiny_job() -> KDag {
        let mut b = KDagBuilder::new(2);
        let a = b.add_task(0, 2);
        let c = b.add_task(1, 1);
        b.add_edge(a, c).unwrap();
        b.build().unwrap()
    }

    fn seg(task: usize, rtype: usize, proc: u32, start: Time, end: Time) -> Segment {
        Segment {
            task: TaskId::from_index(task),
            rtype,
            proc,
            start,
            end,
        }
    }

    #[test]
    fn valid_trace_passes() {
        let job = tiny_job();
        let cfg = MachineConfig::uniform(2, 1);
        let t = Trace::new(vec![seg(0, 0, 0, 0, 2), seg(1, 1, 0, 2, 3)], 3);
        assert_eq!(validate(&t, &job, &cfg), Ok(()));
        assert_eq!(t.preemption_count(&job), 0);
    }

    #[test]
    fn detects_precedence_violation() {
        let job = tiny_job();
        let cfg = MachineConfig::uniform(2, 1);
        let t = Trace::new(vec![seg(0, 0, 0, 0, 2), seg(1, 1, 0, 1, 2)], 2);
        assert!(matches!(
            validate(&t, &job, &cfg),
            Err(TraceError::PrecedenceViolation { .. })
        ));
    }

    #[test]
    fn detects_work_mismatch() {
        let job = tiny_job();
        let cfg = MachineConfig::uniform(2, 1);
        let t = Trace::new(vec![seg(0, 0, 0, 0, 1), seg(1, 1, 0, 1, 2)], 2);
        assert!(matches!(
            validate(&t, &job, &cfg),
            Err(TraceError::WorkMismatch {
                executed: 1,
                work: 2,
                ..
            })
        ));
    }

    #[test]
    fn detects_processor_overlap() {
        let mut b = KDagBuilder::new(1);
        b.add_task(0, 2);
        b.add_task(0, 2);
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 1);
        let t = Trace::new(vec![seg(0, 0, 0, 0, 2), seg(1, 0, 0, 1, 3)], 3);
        assert!(matches!(
            validate(&t, &job, &cfg),
            Err(TraceError::ProcessorOverlap { .. })
        ));
    }

    #[test]
    fn detects_task_overlap_across_processors() {
        let mut b = KDagBuilder::new(1);
        b.add_task(0, 4);
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 2);
        // same task on procs 0 and 1 simultaneously
        let t = Trace::new(vec![seg(0, 0, 0, 0, 2), seg(0, 0, 1, 1, 3)], 3);
        assert_eq!(
            validate(&t, &job, &cfg),
            Err(TraceError::TaskOverlap(TaskId::from_index(0)))
        );
    }

    #[test]
    fn detects_type_mismatch_and_bad_processor() {
        let job = tiny_job();
        let cfg = MachineConfig::uniform(2, 1);
        let t = Trace::new(vec![seg(0, 1, 0, 0, 2), seg(1, 1, 0, 2, 3)], 3);
        assert!(matches!(
            validate(&t, &job, &cfg),
            Err(TraceError::TypeMismatch { .. })
        ));
        let t = Trace::new(vec![seg(0, 0, 5, 0, 2), seg(1, 1, 0, 2, 3)], 3);
        assert!(matches!(
            validate(&t, &job, &cfg),
            Err(TraceError::BadProcessor(_))
        ));
    }

    #[test]
    fn detects_makespan_overrun_and_empty_segment() {
        let job = tiny_job();
        let cfg = MachineConfig::uniform(2, 1);
        let t = Trace::new(vec![seg(0, 0, 0, 0, 2), seg(1, 1, 0, 2, 3)], 2);
        assert!(matches!(
            validate(&t, &job, &cfg),
            Err(TraceError::ExceedsMakespan(_))
        ));
        let t = Trace::new(vec![seg(0, 0, 0, 2, 2)], 3);
        assert!(matches!(
            validate(&t, &job, &cfg),
            Err(TraceError::EmptySegment(_))
        ));
    }

    #[test]
    fn csv_lists_segments_in_start_order() {
        let t = Trace::new(vec![seg(1, 1, 0, 2, 3), seg(0, 0, 0, 0, 2)], 3);
        let csv = to_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "task,rtype,proc,start,end");
        assert_eq!(lines[1], "0,0,0,0,2");
        assert_eq!(lines[2], "1,1,0,2,3");
    }

    #[test]
    fn coalesce_merges_adjacent_segments() {
        let mut segs = vec![seg(0, 0, 0, 0, 1), seg(0, 0, 0, 1, 2), seg(0, 0, 0, 3, 4)];
        coalesce(&mut segs);
        assert_eq!(segs, vec![seg(0, 0, 0, 0, 2), seg(0, 0, 0, 3, 4)]);
    }

    #[test]
    fn coalesce_keeps_different_procs_apart() {
        let mut segs = vec![seg(0, 0, 0, 0, 1), seg(0, 0, 1, 1, 2)];
        coalesce(&mut segs);
        assert_eq!(segs.len(), 2);
    }

    #[test]
    fn preemption_count_counts_extra_segments() {
        let mut b = KDagBuilder::new(1);
        b.add_task(0, 3);
        let job = b.build().unwrap();
        let t = Trace::new(vec![seg(0, 0, 0, 0, 1), seg(0, 0, 1, 2, 4)], 4);
        assert_eq!(t.preemption_count(&job), 1);
    }
}
