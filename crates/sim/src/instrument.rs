//! Per-run engine instrumentation.
//!
//! Every engine run records a [`RunStats`]: how many decision epochs were
//! executed, how much wall time the policy's `assign` calls took, how many
//! state transitions of each kind the run performed, and the peak ready-queue
//! depth. The counters are cheap (a handful of integer increments per epoch
//! plus two monotonic-clock reads) and are always collected; the experiment
//! runner surfaces them behind a `--instrument` flag.

use std::fmt;
use std::sync::OnceLock;

/// The registered allocation-byte probe (see [`register_alloc_probe`]).
static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Registers a probe reporting the calling thread's cumulative allocated
/// bytes. Intended for a counting `#[global_allocator]` test harness (the
/// simulator itself forbids `unsafe`, so the allocator lives in
/// `fhs-bench`): once registered, every engine run samples the probe
/// around its epoch loop and reports the delta as
/// [`RunStats::epoch_bytes`]. First registration wins; later calls are
/// ignored.
pub fn register_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

/// Current probe reading for this thread, if a probe is registered.
pub(crate) fn alloc_probe() -> Option<u64> {
    ALLOC_PROBE.get().map(|f| f())
}

/// State-transition counters maintained by [`crate::state::JobState`].
///
/// These count *transitions*, not tasks: under preemptive execution a task
/// receives one `progress` update per epoch it is chosen in, so
/// `progress_updates` usually exceeds the task count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransitionCounts {
    /// Tasks released into a ready queue (roots plus dependency releases).
    pub releases: u64,
    /// Non-preemptive starts (`Ready` → `Running`).
    pub starts: u64,
    /// Completions (`Running`/`Ready` → `Done`).
    pub completions: u64,
    /// Preemptive progress updates (remaining-work decrements).
    pub progress_updates: u64,
    /// Largest number of live candidates any single type queue held.
    pub peak_queue_depth: usize,
}

/// Candidate-selection counters reported by policies that maintain an
/// incremental selection index (MQB's dominance-pruned path; see
/// [`crate::policy::Policy::take_selection_stats`]).
///
/// All four counters sum under [`merge`](SelectionStats::merge): the
/// pruning effectiveness of a run is read as `candidates_pruned /
/// (candidates_evaluated + candidates_pruned)`, and the incremental-state
/// health as `diff_events` (cheap) vs `cold_snapshots` (full rebuilds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Candidates actually scored by the selection comparator.
    pub candidates_evaluated: u64,
    /// Queued candidates skipped by dominance pruning (they provably could
    /// not win the pick that skipped them).
    pub candidates_pruned: u64,
    /// Queue-journal diff events applied to the incremental index instead
    /// of re-snapshotting the queues.
    pub diff_events: u64,
    /// Cold full rebuilds of the incremental index (first epoch after
    /// attach, or a detected journal discontinuity).
    pub cold_snapshots: u64,
}

impl SelectionStats {
    /// Sums another policy's selection counters into this one.
    pub fn merge(&mut self, other: &SelectionStats) {
        self.candidates_evaluated += other.candidates_evaluated;
        self.candidates_pruned += other.candidates_pruned;
        self.diff_events += other.diff_events;
        self.cold_snapshots += other.cold_snapshots;
    }
}

/// Counters for one engine run, surfaced on
/// [`crate::engine::SimOutcome::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Decision epochs: the number of times the policy was consulted.
    pub epochs: u64,
    /// Total task selections across all epochs (a task re-chosen each
    /// preemptive epoch counts every time).
    pub tasks_assigned: u64,
    /// State-transition counts from the run's [`crate::state::JobState`].
    pub transitions: TransitionCounts,
    /// Wall time spent inside `Policy::assign`, in nanoseconds.
    pub assign_nanos: u64,
    /// Wall time of the whole engine run (including `Policy::init` and the
    /// assign time above), in nanoseconds.
    pub engine_nanos: u64,
    /// Engine runs that reused an already-warm
    /// [`crate::workspace::Workspace`] (1 for a single reused run; sums
    /// under [`merge`](RunStats::merge)).
    pub workspace_reuses: u64,
    /// Engine runs that cold-initialized their workspace — including every
    /// run through the plain [`crate::engine::run`] entry points, which
    /// use a throwaway workspace.
    pub workspace_cold_inits: u64,
    /// Bytes allocated on the running thread during the epoch loop, when
    /// an allocation probe is registered (see [`register_alloc_probe`]);
    /// 0 otherwise. In steady state (reused workspace, warm policy) this
    /// should be ~0 — asserted by the allocation-regression test.
    pub epoch_bytes: u64,
    /// Candidate-selection counters from the run's policy, when the policy
    /// reports them (all zero otherwise).
    pub selection: SelectionStats,
    /// Decision epochs the session engine *fast-forwarded* over instead of
    /// executing: per-quantum preemptive epochs proven decision-free (no
    /// completion, no arrival, no queue churn, and a policy whose choice is
    /// stable under unchanged queues). Counted inside `epochs`, so
    /// `epochs - epochs_skipped` is the number of `assign` calls made.
    pub epochs_skipped: u64,
    /// Per-(job, epoch) policy consultations actually performed by the
    /// non-preemptive epoch loop (the dirty-set scan skips jobs with no
    /// ready work on any free type). Preemptive runs leave this 0.
    pub dirty_visits: u64,
    /// Non-preemptive epochs in which *every* active job was consulted —
    /// the dirty-set skip found nothing to prune. Preemptive runs leave
    /// this 0.
    pub full_rescans: u64,
}

impl RunStats {
    /// Merges another run's counters into this one (wall times add).
    /// `peak_queue_depth` takes the maximum; everything else sums.
    pub fn merge(&mut self, other: &RunStats) {
        self.epochs += other.epochs;
        self.tasks_assigned += other.tasks_assigned;
        self.transitions.releases += other.transitions.releases;
        self.transitions.starts += other.transitions.starts;
        self.transitions.completions += other.transitions.completions;
        self.transitions.progress_updates += other.transitions.progress_updates;
        self.transitions.peak_queue_depth = self
            .transitions
            .peak_queue_depth
            .max(other.transitions.peak_queue_depth);
        self.assign_nanos += other.assign_nanos;
        self.engine_nanos += other.engine_nanos;
        self.workspace_reuses += other.workspace_reuses;
        self.workspace_cold_inits += other.workspace_cold_inits;
        self.epoch_bytes += other.epoch_bytes;
        self.selection.merge(&other.selection);
        self.epochs_skipped += other.epochs_skipped;
        self.dirty_visits += other.dirty_visits;
        self.full_rescans += other.full_rescans;
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epochs {} | assigned {} | released {} | started {} | completed {} \
             | progressed {} | peak queue {} | assign {:.3} ms | engine {:.3} ms \
             | ws {} warm / {} cold | epoch alloc {} B \
             | sel eval {} / pruned {} | diffs {} / rebuilds {} \
             | ff skipped {} | dirty visits {} / rescans {}",
            self.epochs,
            self.tasks_assigned,
            self.transitions.releases,
            self.transitions.starts,
            self.transitions.completions,
            self.transitions.progress_updates,
            self.transitions.peak_queue_depth,
            self.assign_nanos as f64 / 1e6,
            self.engine_nanos as f64 / 1e6,
            self.workspace_reuses,
            self.workspace_cold_inits,
            self.epoch_bytes,
            self.selection.candidates_evaluated,
            self.selection.candidates_pruned,
            self.selection.diff_events,
            self.selection.cold_snapshots,
            self.epochs_skipped,
            self.dirty_visits,
            self.full_rescans,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counts_and_maxes_peak_depth() {
        let mut a = RunStats {
            epochs: 2,
            tasks_assigned: 5,
            transitions: TransitionCounts {
                releases: 3,
                starts: 3,
                completions: 3,
                progress_updates: 0,
                peak_queue_depth: 7,
            },
            assign_nanos: 100,
            engine_nanos: 500,
            workspace_reuses: 1,
            workspace_cold_inits: 0,
            epoch_bytes: 64,
            selection: SelectionStats {
                candidates_evaluated: 10,
                candidates_pruned: 90,
                diff_events: 5,
                cold_snapshots: 1,
            },
            epochs_skipped: 1,
            dirty_visits: 2,
            full_rescans: 2,
        };
        let b = RunStats {
            epochs: 1,
            tasks_assigned: 2,
            transitions: TransitionCounts {
                releases: 1,
                starts: 0,
                completions: 1,
                progress_updates: 4,
                peak_queue_depth: 4,
            },
            assign_nanos: 50,
            engine_nanos: 200,
            workspace_reuses: 0,
            workspace_cold_inits: 1,
            epoch_bytes: 32,
            selection: SelectionStats {
                candidates_evaluated: 1,
                candidates_pruned: 2,
                diff_events: 3,
                cold_snapshots: 0,
            },
            epochs_skipped: 4,
            dirty_visits: 1,
            full_rescans: 0,
        };
        a.merge(&b);
        assert_eq!(a.epochs, 3);
        assert_eq!(a.tasks_assigned, 7);
        assert_eq!(a.transitions.releases, 4);
        assert_eq!(a.transitions.progress_updates, 4);
        assert_eq!(a.transitions.peak_queue_depth, 7);
        assert_eq!(a.assign_nanos, 150);
        assert_eq!(a.engine_nanos, 700);
        assert_eq!(a.workspace_reuses, 1);
        assert_eq!(a.workspace_cold_inits, 1);
        assert_eq!(a.epoch_bytes, 96);
        assert_eq!(a.selection.candidates_evaluated, 11);
        assert_eq!(a.selection.candidates_pruned, 92);
        assert_eq!(a.selection.diff_events, 8);
        assert_eq!(a.selection.cold_snapshots, 1);
        assert_eq!(a.epochs_skipped, 5);
        assert_eq!(a.dirty_visits, 3);
        assert_eq!(a.full_rescans, 2);
    }

    #[test]
    fn display_is_single_line() {
        let s = RunStats::default().to_string();
        assert!(!s.contains('\n'));
        assert!(s.contains("epochs 0"));
    }
}
