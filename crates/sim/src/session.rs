//! The session engine: a long-lived multi-job scheduler over one machine.
//!
//! The paper's model is one K-DAG job scheduled to a makespan; a service
//! absorbs a *stream* of jobs. A [`Session`] owns the machine-side state
//! of a [`Workspace`] for its whole lifetime and moves jobs through an
//! admit → step → retire lifecycle:
//!
//! * **admit** — [`Session::admit`] attaches a seeded job at the current
//!   simulation time: a recycled `JobRt` is reset for its shape, the
//!   per-job policy is attached via
//!   [`Policy::attach_job`] (artifacts
//!   optional), and its roots join the shared ready state.
//! * **step** — [`Session::run_until`] advances the shared epoch/event
//!   loop (`drive`) to a target time, stopping exactly at the horizon so
//!   arrivals interleave deterministically with completions. Every epoch,
//!   an [`InterJobPolicy`] orders the active jobs and each job's *intra*-job
//!   policy fills its assignment against the slots earlier jobs left.
//! * **retire** — jobs whose last task drained are detached
//!   ([`Policy::detach_job`]), their
//!   runtimes and policy values returned to spare pools, and a
//!   [`JobRecord`](fhs_obs::JobRecord) (response time, queueing delay,
//!   slowdown vs the isolated lower bound) is folded into the session's
//!   [`StreamStats`](fhs_obs::StreamStats).
//!
//! The single-job engine is a one-job session: [`crate::engine::run`]
//! calls the same `drive` loop with one `SessionJob` and no horizon,
//! which is why the session refactor is pinned **bit-identical** to the
//! historical engine by the golden and property tests (and by the
//! `session_equivalence` proptest in `fhs-core`, which replays one-job
//! sessions against `engine::run` for all six algorithms in both modes).
//!
//! Multi-job invariants (vs the single-job engine):
//!
//! * Completion events drain in `(time, job slot, task)` order; slots are
//!   stable for the life of a job and 0 for single runs, so single-job
//!   event order is unchanged.
//! * The epoch counter stays monotonic across jobs and sessions, so
//!   recycled duplicate-selection stamps can never collide.
//! * Within an epoch, jobs consume slots in inter-job priority order;
//!   with one job the policy sees exactly the historical slot counts.
//! * Trace recording assumes task ids are unique, which only holds for
//!   single-job sessions; streaming sessions record per-job metrics
//!   instead.

use std::sync::Arc;
use std::time::Instant;

use kdag::precompute::Artifacts;
use kdag::{KDag, TaskId, Work};

use crate::config::MachineConfig;
use crate::engine::Mode;
use crate::instrument::RunStats;
use crate::policy::{EpochView, Policy};
use crate::trace::Segment;
use crate::workspace::{JobRt, MachState, Workspace};
use crate::Time;

/// How a [`Session`] orders active jobs when handing out the epoch's
/// processor slots. All three are deterministic and work-conserving: a
/// later job always sees whatever slots earlier jobs declined.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InterJobPolicy {
    /// Admission order: the earliest-admitted job picks first.
    #[default]
    Fifo,
    /// Ascending attained service (work dispatched so far), ties broken by
    /// admission order — a deterministic fair-share discipline.
    FairShare,
    /// Descending slot-fill potential `Σ_α min(ready_α, slots_α)`, ties by
    /// admission order: the job that can soak up the most idle capacity
    /// right now picks first (utilization-aware admission).
    UtilizationAware,
}

impl InterJobPolicy {
    /// Short machine-readable label (CLI/CSV/JSON).
    pub fn label(&self) -> &'static str {
        match self {
            InterJobPolicy::Fifo => "fifo",
            InterJobPolicy::FairShare => "fair",
            InterJobPolicy::UtilizationAware => "util",
        }
    }

    /// Parses a [`label`](InterJobPolicy::label).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(InterJobPolicy::Fifo),
            "fair" => Some(InterJobPolicy::FairShare),
            "util" => Some(InterJobPolicy::UtilizationAware),
            _ => None,
        }
    }
}

/// All inter-job disciplines, in display order.
pub const ALL_INTER_JOB_POLICIES: [InterJobPolicy; 3] = [
    InterJobPolicy::Fifo,
    InterJobPolicy::FairShare,
    InterJobPolicy::UtilizationAware,
];

/// Identifier of a job admitted to a [`Session`], unique per session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Knobs for one [`Session`].
#[derive(Clone, Debug)]
pub struct SessionOptions {
    /// Scheduling mode (shared by all jobs in the session).
    pub mode: Mode,
    /// Preemptive re-decision cadence (see
    /// [`RunOptions::quantum`](crate::engine::RunOptions::quantum)).
    pub quantum: Option<Work>,
    /// Inter-job slot-ordering discipline.
    pub inter: InterJobPolicy,
    /// Observability channels. Event tracing across jobs reuses task ids,
    /// so per-task event streams are only meaningful for one-job sessions;
    /// utilization timelines and latency histograms are job-agnostic.
    pub observe: fhs_obs::ObsConfig,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            mode: Mode::NonPreemptive,
            quantum: None,
            inter: InterJobPolicy::Fifo,
            observe: fhs_obs::ObsConfig::default(),
        }
    }
}

impl SessionOptions {
    /// Options for `mode` with defaults otherwise.
    pub fn new(mode: Mode) -> Self {
        SessionOptions {
            mode,
            ..SessionOptions::default()
        }
    }

    /// Sets the inter-job discipline.
    pub fn with_inter(mut self, inter: InterJobPolicy) -> Self {
        self.inter = inter;
        self
    }

    /// Sets the preemptive re-decision quantum.
    pub fn with_quantum(mut self, q: Work) -> Self {
        assert!(q > 0, "quantum must be positive");
        self.quantum = Some(q);
        self
    }
}

/// Aggregate result of a finished [`Session`].
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// Simulation time when the session finished (last completion or the
    /// latest `run_until` horizon, whichever is later).
    pub makespan: Time,
    /// Per-type processor-busy time, cumulative over all jobs.
    pub busy_time: Vec<Time>,
    /// Engine counters accumulated across the whole session.
    pub stats: RunStats,
    /// Per-job records in retirement order.
    pub jobs: Vec<fhs_obs::JobRecord>,
    /// Mergeable response/queueing/slowdown histograms over retired jobs.
    pub stream: fhs_obs::StreamStats,
    /// Observability payload, when any channel was enabled.
    pub obs: Option<Box<fhs_obs::RunObs>>,
}

/// One active job as seen by the `drive` loop: the job graph, its
/// runtime, its policy, and its stable heap slot.
pub(crate) struct SessionJob<'a> {
    pub(crate) job: &'a KDag,
    pub(crate) rt: &'a mut JobRt,
    pub(crate) policy: &'a mut dyn Policy,
    /// Stable id carried by this job's completion-calendar entries; 0 for
    /// single-job runs.
    pub(crate) slot: u32,
    /// Cached `state.all_done` (maintained at completion points).
    pub(crate) done: bool,
}

/// Why `drive` returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DriveEnd {
    /// Every job in the slice has drained.
    AllDone,
    /// The clock reached `stop_at` (the next arrival horizon).
    Reached,
}

/// Borrowed context threaded through one `drive` call: machine state,
/// recorder, config, cadence, and the accumulators that persist across
/// calls within a session.
pub(crate) struct DriveCtx<'a> {
    pub(crate) mach: &'a mut MachState,
    pub(crate) obs: &'a mut fhs_obs::Recorder,
    pub(crate) config: &'a MachineConfig,
    pub(crate) preemptive: bool,
    pub(crate) quantum: Option<Work>,
    pub(crate) record_trace: bool,
    pub(crate) inter: InterJobPolicy,
    pub(crate) now: &'a mut Time,
    pub(crate) stats: &'a mut RunStats,
    /// Timestamp of the previous epoch's assign (epoch-duration histogram
    /// sampling); persists across drive calls within a session.
    pub(crate) last_epoch_t: &'a mut Option<Instant>,
    /// Periodic telemetry cadence, when a sink is registered (sessions
    /// only; the single-run engine passes `None`). Observe-only.
    pub(crate) telemetry: Option<crate::telemetry::CadenceCtx<'a>>,
}

/// The shared admit/step/drain epoch loop — the engine core for both the
/// single-job entry points ([`crate::engine::run`] passes one job and no
/// horizon) and streaming [`Session`]s (which call it between arrivals
/// with `stop_at` at the next admission time).
///
/// Runs until every job in `jobs` has drained ([`DriveEnd::AllDone`]) or
/// the clock cannot advance further without passing `stop_at`
/// ([`DriveEnd::Reached`]). With `stop_at == None` the loop preserves the
/// historical engine semantics exactly, including its deadlock panics.
pub(crate) fn drive(
    cx: &mut DriveCtx<'_>,
    jobs: &mut [SessionJob<'_>],
    stop_at: Option<Time>,
) -> DriveEnd {
    let k = cx.config.num_types();
    let latency_on = cx.obs.latency_on();

    loop {
        if jobs.iter().all(|j| j.done) {
            return DriveEnd::AllDone;
        }
        if let Some(s) = stop_at {
            if *cx.now >= s {
                return DriveEnd::Reached;
            }
        }

        // --- shared: per-type slot counts; decide whether to consult. A
        // non-preemptive epoch only happens when some type has both a free
        // processor and a candidate; preemptive epochs always re-decide
        // (some job is incomplete, so some queue is non-empty).
        let consult = if cx.preemptive {
            for (alpha, slot) in cx.mach.slots.iter_mut().enumerate() {
                *slot = cx.config.procs(alpha);
            }
            true
        } else {
            let mut any = false;
            for alpha in 0..k {
                cx.mach.slots[alpha] = cx.config.procs(alpha) - cx.mach.busy[alpha];
                if cx.mach.slots[alpha] > 0
                    && jobs
                        .iter()
                        .any(|j| !j.done && !j.rt.state.queues()[alpha].is_empty())
                {
                    any = true;
                }
            }
            any
        };

        if consult {
            // --- shared: decision epoch. The epoch counter is monotonic
            // across every run on this workspace (bumped eagerly, so a
            // panicking run cannot leave stamps above it), which is what
            // lets workspace and job-runtime reuse skip clearing stamps.
            cx.mach.epoch += 1;
            cx.stats.epochs += 1;
            // Telemetry cadence: fire on executed epochs only (a
            // fast-forward bulk jump may overshoot `next_at`; the next
            // executed epoch fires once and re-arms). Observe-only — the
            // sink sees shared references and the loop state is
            // untouched.
            if let Some(tel) = cx.telemetry.as_mut() {
                if cx.stats.epochs >= *tel.next_at {
                    *tel.next_at = cx.stats.epochs + tel.every;
                    tel.sink.tick(&crate::telemetry::TelemetryTick {
                        now: *cx.now,
                        epoch: cx.mach.epoch,
                        stats: &*cx.stats,
                        stream: tel.stream,
                        active_jobs: tel.active_jobs,
                    });
                }
            }
            if cx.preemptive {
                cx.mach.running_now[..k].fill(0);
            }

            // Dirty-set scan (non-preemptive): a job whose every non-empty
            // queue faces a fully-busy pool cannot legally receive a task
            // this epoch, so its policy need not be consulted at all. The
            // per-type masks make that test one AND: `free_mask` tracks
            // types with free processors (cleared below as jobs consume the
            // last slot of a type), `ready_mask` tracks the job's non-empty
            // queues. Skipping is gated off when the latency channel is on
            // (it samples queue depths per consultation) and for machines
            // wider than the 128-bit masks.
            let dirty_set = !cx.preemptive && !latency_on && k <= 128;
            let mut free_mask: u128 = 0;
            if !cx.preemptive {
                for alpha in 0..k.min(128) {
                    if cx.mach.slots[alpha] > 0 {
                        free_mask |= 1 << alpha;
                    }
                }
            }
            let mut skipped_any = false;

            let mut min_rem: Option<Work> = None;
            let mut epoch_total: u64 = 0;
            let mut first_in_epoch = true;
            let use_order = priority_order(cx, jobs);
            let njobs = if use_order {
                cx.mach.order.len()
            } else {
                jobs.len()
            };
            for oi in 0..njobs {
                let ji = if use_order {
                    cx.mach.order[oi].1 as usize
                } else {
                    oi
                };
                let j = &mut jobs[ji];
                if j.done {
                    continue;
                }
                if !cx.preemptive {
                    if dirty_set && j.rt.state.ready_mask() & free_mask == 0 {
                        // Stale `out`/journals are safe: the non-preemptive
                        // advance never reads `out`, and journal consumers
                        // track their own cursors across unconsulted epochs.
                        skipped_any = true;
                        continue;
                    }
                    cx.stats.dirty_visits += 1;
                }
                j.rt.out.reset(k);
                if latency_on {
                    for alpha in 0..k {
                        cx.obs.record_depth(j.rt.state.queues()[alpha].len() as u64);
                    }
                }
                let view = EpochView {
                    time: *cx.now,
                    job: j.job,
                    config: cx.config,
                    queues: j.rt.state.queues(),
                    queue_work: j.rt.state.queue_work(),
                    slots: &cx.mach.slots,
                    preemptive: cx.preemptive,
                };
                let assign_t = Instant::now();
                j.policy.assign(&view, &mut j.rt.out);
                let assign_ns = assign_t.elapsed().as_nanos() as u64;
                cx.stats.assign_nanos += assign_ns;
                if latency_on {
                    cx.obs.record_assign_ns(assign_ns);
                    // Epoch duration = wall time between consecutive
                    // decision epochs (n epochs yield n−1 samples), sampled
                    // at the first assign boundary of the epoch — the
                    // latency channel adds no clock read of its own here.
                    if first_in_epoch {
                        if let Some(prev) = cx.last_epoch_t.replace(assign_t) {
                            cx.obs
                                .record_epoch_ns(assign_t.duration_since(prev).as_nanos() as u64);
                        }
                    }
                }
                first_in_epoch = false;
                // The policy has consumed this epoch's queue diffs; truncate
                // the change-journals so the post-assign transitions below
                // (starts, progress, releases) accumulate into a fresh
                // journal for the next epoch.
                j.rt.state.clear_journals();
                epoch_total += j.rt.out.total() as u64;

                for alpha in 0..k {
                    // Reusable copy of one type's chosen slice: reading it
                    // once per type ends the borrow of `rt.out` before the
                    // state mutations below.
                    cx.mach.chosen_buf.clear();
                    cx.mach.chosen_buf.extend_from_slice(j.rt.out.chosen(alpha));
                    // --- shared validation: capacity, type, duplicates. ---
                    assert!(
                        cx.mach.chosen_buf.len() <= cx.mach.slots[alpha],
                        "policy over-assigned type {alpha}: {} chosen for {} slots",
                        cx.mach.chosen_buf.len(),
                        cx.mach.slots[alpha]
                    );
                    cx.mach.slots[alpha] -= cx.mach.chosen_buf.len();
                    if alpha < 128 && cx.mach.slots[alpha] == 0 {
                        // Later (lower-priority) jobs skip types this job
                        // just saturated.
                        free_mask &= !(1u128 << alpha);
                    }
                    for &v in &cx.mach.chosen_buf {
                        assert_eq!(
                            j.job.rtype(v),
                            alpha,
                            "type mismatch for task {v}: type {} chosen for type-{alpha} processors",
                            j.job.rtype(v)
                        );
                        assert_ne!(
                            j.rt.stamp[v.index()],
                            cx.mach.epoch,
                            "task {v} chosen twice"
                        );
                        j.rt.stamp[v.index()] = cx.mach.epoch;
                    }
                    cx.stats.tasks_assigned += cx.mach.chosen_buf.len() as u64;

                    // --- mode dispatch. ---
                    if cx.preemptive {
                        for &v in &cx.mach.chosen_buf {
                            let rem =
                                j.rt.state
                                    .remaining(j.job, v)
                                    .unwrap_or_else(|| panic!("task {v} is not a candidate"));
                            assert!(rem > 0, "task {v} already finished");
                            min_rem = Some(min_rem.map_or(rem, |m| m.min(rem)));
                        }
                        if !cx.mach.chosen_buf.is_empty() && j.rt.first_start.is_none() {
                            j.rt.first_start = Some(*cx.now);
                        }
                        cx.mach.running_now[alpha] += cx.mach.chosen_buf.len() as u32;
                    } else {
                        for &v in &cx.mach.chosen_buf {
                            let rem = j.rt.state.start(j.job, v); // panics if not ready
                            cx.mach.busy[alpha] += 1;
                            cx.mach.busy_time[alpha] += rem;
                            let p = cx.mach.free_procs[alpha].pop().expect("slot accounting");
                            j.rt.proc_of[v.index()] = p;
                            j.rt.attained += rem;
                            if j.rt.first_start.is_none() {
                                j.rt.first_start = Some(*cx.now);
                            }
                            cx.mach.cal.push(*cx.now + rem, j.slot, v, *cx.now);
                            cx.obs.start(
                                *cx.now,
                                cx.mach.epoch,
                                v.index() as u32,
                                alpha,
                                Some(p as usize),
                                rem,
                            );
                            if cx.record_trace {
                                cx.mach.segments.push(Segment {
                                    task: v,
                                    rtype: alpha,
                                    proc: p,
                                    start: *cx.now,
                                    end: *cx.now + rem,
                                });
                            }
                        }
                        cx.obs
                            .timeline_set(alpha, *cx.now, cx.mach.busy[alpha] as u32);
                    }
                }
            }
            if cx.preemptive {
                for alpha in 0..k {
                    cx.obs
                        .timeline_set(alpha, *cx.now, cx.mach.running_now[alpha]);
                }
            } else if !skipped_any {
                cx.stats.full_rescans += 1;
            }
            cx.obs.epoch_event(*cx.now, cx.mach.epoch, epoch_total);

            // --- preemptive advance: progress everything chosen by dt. ---
            if cx.preemptive {
                assert!(
                    epoch_total > 0,
                    "deadlock: policy assigned nothing with {} tasks incomplete",
                    incomplete_tasks(jobs)
                );
                // `span` is the distance to the next *real* event: the
                // earliest chosen task's completion, clamped at the arrival
                // horizon (a newly admitted job deserves a re-decision at
                // its arrival instant).
                let mut span = min_rem.expect("chosen non-empty");
                if let Some(s) = stop_at {
                    span = span.min(s - *cx.now);
                }
                let mut dt = match cx.quantum {
                    Some(q) => q.min(span),
                    None => span,
                };
                debug_assert!(dt > 0);

                // Epoch fast-forward: when the quantum chops `span` into
                // several epochs, nothing changes between them — no task
                // completes or arrives, un-chosen tasks make no progress,
                // so every queue keeps its membership and order and every
                // type offers the same (full) slot count. If each job's
                // policy certifies its choice is a pure function of exactly
                // that view ([`Policy::assign_stable`]) — and the inter-job
                // order cannot flip mid-span (FairShare keys on attained
                // service, which grows between epochs, so it is excluded) —
                // the skipped epochs would reproduce this epoch's
                // assignment verbatim. Jump straight to `span` and
                // synthesize the skipped epochs' counters; per-epoch
                // observability (events, latency samples, utilization
                // points) and trace segments disable the jump because they
                // record each epoch individually.
                if dt < span
                    && !cx.record_trace
                    && !cx.obs.events_on()
                    && !latency_on
                    && !cx.obs.utilization_on()
                    && (jobs.len() <= 1 || cx.inter != InterJobPolicy::FairShare)
                    && jobs.iter().all(|j| j.done || j.policy.assign_stable())
                {
                    let q = cx.quantum.expect("dt < span only under a quantum");
                    let skipped = span.div_ceil(q) - 1;
                    cx.mach.epoch += skipped;
                    cx.stats.epochs += skipped;
                    cx.stats.epochs_skipped += skipped;
                    cx.stats.tasks_assigned += skipped * epoch_total;
                    for j in jobs.iter_mut() {
                        if !j.done {
                            j.rt.state
                                .add_progress_updates(skipped * j.rt.out.total() as u64);
                        }
                    }
                    dt = span;
                }

                // Trace segments with stable-ish processor ids: keep each
                // task's previous processor where possible. (Single-job
                // sessions only; task ids collide across jobs.)
                if cx.record_trace {
                    for j in jobs.iter_mut() {
                        if j.done {
                            continue;
                        }
                        for alpha in 0..k {
                            let mut used = vec![false; cx.config.procs(alpha)];
                            let chosen = j.rt.out.chosen(alpha);
                            let mut needs: Vec<TaskId> = Vec::new();
                            for &v in chosen {
                                match j.rt.last_proc[v.index()] {
                                    Some(p) if !used[p as usize] => used[p as usize] = true,
                                    _ => needs.push(v),
                                }
                            }
                            let mut next_free = 0usize;
                            for v in needs {
                                while used[next_free] {
                                    next_free += 1;
                                }
                                used[next_free] = true;
                                j.rt.last_proc[v.index()] = Some(next_free as u32);
                            }
                            for &v in chosen {
                                cx.mach.segments.push(Segment {
                                    task: v,
                                    rtype: alpha,
                                    proc: j.rt.last_proc[v.index()].expect("assigned above"),
                                    start: *cx.now,
                                    end: *cx.now + dt,
                                });
                            }
                        }
                    }
                }

                *cx.now += dt;
                let now = *cx.now;
                for j in jobs.iter_mut() {
                    if j.done {
                        continue;
                    }
                    for alpha in 0..k {
                        cx.mach.chosen_buf.clear();
                        cx.mach.chosen_buf.extend_from_slice(j.rt.out.chosen(alpha));
                        cx.mach.busy_time[alpha] += cx.mach.chosen_buf.len() as u64 * dt;
                        j.rt.attained += cx.mach.chosen_buf.len() as u64 * dt;
                        for &v in &cx.mach.chosen_buf {
                            if j.rt.state.progress(j.job, v, dt) == 0 {
                                cx.obs
                                    .complete(now, cx.mach.epoch, v.index() as u32, alpha, None);
                                j.rt.state
                                    .complete_obs(j.job, v, now, cx.mach.epoch, Some(cx.obs));
                                j.rt.last_proc[v.index()] = None;
                            }
                        }
                    }
                    if j.rt.state.all_done(j.job) {
                        j.done = true;
                        j.rt.finish = Some(now);
                    }
                }
                continue;
            }
        }

        // --- non-preemptive advance: jump to the next completion event and
        // drain every completion at that time before the next epoch. ---
        if !cx.preemptive {
            match cx.mach.cal.next_time(*cx.now) {
                Some(t) if stop_at.is_none_or(|s| t <= s) => {
                    cx.mach.events_buf.clear();
                    cx.mach.cal.claim_into(t, *cx.now, &mut cx.mach.events_buf);
                    // Sorting by (slot, task) reproduces the historical
                    // heap's (time, slot, task) pop order within one time.
                    cx.mach.events_buf.sort_unstable();
                    *cx.now = t;
                    for i in 0..cx.mach.events_buf.len() {
                        let (slot, v) = cx.mach.events_buf[i];
                        finish_task(cx, jobs, slot, v);
                    }
                }
                Some(_) => return DriveEnd::Reached,
                None => {
                    if stop_at.is_some() {
                        // Idle (or refusing) until the next arrival.
                        return DriveEnd::Reached;
                    }
                    panic!(
                        "deadlock: no running tasks but {} tasks incomplete",
                        incomplete_tasks(jobs)
                    );
                }
            }
        }
    }
}

/// Tasks not yet completed across all jobs (deadlock diagnostics).
fn incomplete_tasks(jobs: &[SessionJob<'_>]) -> usize {
    jobs.iter()
        .map(|j| j.job.num_tasks() - j.rt.state.done_count())
        .sum()
}

/// Fills `cx.mach.order` with the epoch's job priority order; returns
/// whether `order` is in use. As a fast path (and to keep the single-job
/// engine allocation-free), a slice of ≤ 1 job — or the FIFO discipline,
/// where the slice is already in admission order (retirement removal is
/// order-preserving) — skips the keyed sort and is visited in slice order.
fn priority_order(cx: &mut DriveCtx<'_>, jobs: &[SessionJob<'_>]) -> bool {
    if jobs.len() <= 1 || cx.inter == InterJobPolicy::Fifo {
        return false;
    }
    cx.mach.order.clear();
    for (i, j) in jobs.iter().enumerate() {
        if j.done {
            continue;
        }
        let key = match cx.inter {
            InterJobPolicy::Fifo => unreachable!("handled above"),
            InterJobPolicy::FairShare => j.rt.attained,
            InterJobPolicy::UtilizationAware => {
                // Descending fill potential via a complemented key.
                let fill: u64 = (0..cx.config.num_types())
                    .map(|alpha| {
                        (j.rt.state.queues()[alpha].len().min(cx.mach.slots[alpha])) as u64
                    })
                    .sum();
                u64::MAX - fill
            }
        };
        cx.mach.order.push((key, i as u32));
    }
    // Stable on the (key, admission index) pair: ties resolve by admission
    // order because the slice is in admission order.
    cx.mach.order.sort_unstable();
    true
}

/// Completes a non-preemptively running task of the job occupying `slot`,
/// returning its processor to the free stack (and reporting the
/// completion, child releases and new busy count to the recorder).
fn finish_task(cx: &mut DriveCtx<'_>, jobs: &mut [SessionJob<'_>], slot: u32, v: TaskId) {
    let j = jobs
        .iter_mut()
        .find(|j| j.slot == slot)
        .expect("heap slot refers to an active job");
    let alpha = j.job.rtype(v);
    cx.mach.busy[alpha] -= 1;
    let p = j.rt.proc_of[v.index()];
    cx.mach.free_procs[alpha].push(p);
    cx.obs.complete(
        *cx.now,
        cx.mach.epoch,
        v.index() as u32,
        alpha,
        Some(p as usize),
    );
    j.rt.state
        .complete_obs(j.job, v, *cx.now, cx.mach.epoch, Some(cx.obs));
    cx.obs
        .timeline_set(alpha, *cx.now, cx.mach.busy[alpha] as u32);
    if j.rt.state.all_done(j.job) {
        j.done = true;
        j.rt.finish = Some(*cx.now);
    }
}

/// One job admitted to a [`Session`], with everything it owns.
struct Active {
    id: JobId,
    slot: u32,
    job: Arc<KDag>,
    rt: JobRt,
    policy: Box<dyn Policy>,
    lower_bound: Time,
}

/// A persistent multi-job scheduler over one machine. See the module docs
/// for the lifecycle; [`SessionOptions`] selects mode, cadence, inter-job
/// discipline and observability.
///
/// # Panics
/// [`Session::drain`] (and [`Session::finish`], which drains) inherits the
/// engine's panics: invalid policy selections and true deadlocks (a policy
/// assigning nothing while jobs are incomplete and nothing is running).
pub struct Session {
    config: MachineConfig,
    opts: SessionOptions,
    ws: Workspace,
    active: Vec<Active>,
    spare_rts: Vec<JobRt>,
    spare_policies: Vec<Box<dyn Policy>>,
    free_slots: Vec<u32>,
    next_slot: u32,
    next_id: u64,
    now: Time,
    stats: RunStats,
    last_epoch_t: Option<Instant>,
    jobs: Vec<fhs_obs::JobRecord>,
    stream: fhs_obs::StreamStats,
    telemetry: Option<crate::telemetry::SessionTelemetry>,
}

impl Session {
    /// Opens a session over `config` with a fresh [`Workspace`].
    pub fn new(config: MachineConfig, opts: SessionOptions) -> Self {
        Session::with_workspace(config, opts, Workspace::new())
    }

    /// Opens a session inside a caller-owned (possibly warm) [`Workspace`]
    /// — the steady-state path for back-to-back sessions: machine buffers,
    /// recorder storage and policy scratch all retain capacity.
    pub fn with_workspace(config: MachineConfig, opts: SessionOptions, mut ws: Workspace) -> Self {
        let preemptive = opts.mode == Mode::Preemptive;
        let reused = ws.begin_session(&config, preemptive);
        let mut stats = RunStats::default();
        if reused {
            stats.workspace_reuses = 1;
        } else {
            stats.workspace_cold_inits = 1;
        }
        ws.obs
            .begin_run(opts.observe, config.procs_per_type(), reused);
        if ws.obs.events_on() && reused {
            ws.obs.workspace_reuse(ws.runs());
        }
        Session {
            config,
            opts,
            ws,
            active: Vec::new(),
            spare_rts: Vec::new(),
            spare_policies: Vec::new(),
            free_slots: Vec::new(),
            next_slot: 0,
            next_id: 0,
            now: 0,
            stats,
            last_epoch_t: None,
            jobs: Vec::new(),
            stream: fhs_obs::StreamStats::default(),
            telemetry: None,
        }
    }

    /// Registers a telemetry sink called every `every` executed decision
    /// epochs (see [`crate::telemetry::TelemetrySink`]). The hook is
    /// observe-only: schedules, counters and outcomes are identical with
    /// or without it. Replaces any previous sink.
    ///
    /// # Panics
    /// If `every` is 0.
    pub fn set_telemetry(&mut self, every: u64, sink: Box<dyn crate::telemetry::TelemetrySink>) {
        assert!(every > 0, "telemetry cadence must be positive");
        self.telemetry = Some(crate::telemetry::SessionTelemetry {
            every,
            next_at: self.stats.epochs + every,
            sink,
        });
    }

    /// Unregisters the telemetry sink, returning it for reuse.
    pub fn take_telemetry(&mut self) -> Option<Box<dyn crate::telemetry::TelemetrySink>> {
        self.telemetry.take().map(|t| t.sink)
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Jobs currently admitted and not yet retired.
    pub fn active_jobs(&self) -> usize {
        self.active.len()
    }

    /// Jobs retired so far.
    pub fn retired_jobs(&self) -> u64 {
        self.stream.completed
    }

    /// The machine this session schedules onto.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Per-job stream statistics over the jobs retired so far.
    pub fn stream_stats(&self) -> &fhs_obs::StreamStats {
        &self.stream
    }

    /// A policy value recycled from a retired job, if any — warm buffers
    /// included. [`Policy::attach_job`]
    /// guarantees re-attachment is bit-identical to a fresh policy, so
    /// single-algorithm streams can run allocation-light by re-admitting
    /// these.
    pub fn recycled_policy(&mut self) -> Option<Box<dyn Policy>> {
        self.spare_policies.pop()
    }

    /// Admits `job` at the current time under `policy` (seeded for
    /// stochastic policies). Roots join the shared ready state
    /// immediately; the job starts competing for slots at the next epoch.
    pub fn admit(&mut self, job: Arc<KDag>, policy: Box<dyn Policy>, seed: u64) -> JobId {
        self.admit_inner(job, policy, seed, None)
    }

    /// As [`Session::admit`], attaching the policy through a shared
    /// precompute bundle for `job`.
    pub fn admit_with_artifacts(
        &mut self,
        job: Arc<KDag>,
        policy: Box<dyn Policy>,
        seed: u64,
        artifacts: &Arc<Artifacts>,
    ) -> JobId {
        self.admit_inner(job, policy, seed, Some(artifacts))
    }

    fn admit_inner(
        &mut self,
        job: Arc<KDag>,
        mut policy: Box<dyn Policy>,
        seed: u64,
        artifacts: Option<&Arc<Artifacts>>,
    ) -> JobId {
        assert_eq!(
            job.num_types(),
            self.config.num_types(),
            "job declared K={} but machine has K={}",
            job.num_types(),
            self.config.num_types()
        );
        let preemptive = self.opts.mode == Mode::Preemptive;
        policy.reset_in(&mut self.ws);
        policy.attach_job(&job, &self.config, seed, artifacts);
        let mut rt = self.spare_rts.pop().unwrap_or_default();
        rt.reset_for(&job, preemptive, self.now);
        let lower_bound = match artifacts {
            Some(a) => {
                kdag::metrics::lower_bound_with_span(&job, self.config.procs_per_type(), a.span())
            }
            None => kdag::metrics::lower_bound(&job, self.config.procs_per_type()),
        };
        if self.ws.obs.events_on() {
            self.ws.obs.policy_init(artifacts.is_some());
            for v in job.roots() {
                self.ws
                    .obs
                    .release(self.now, self.ws.mach.epoch, v.index() as u32, job.rtype(v));
            }
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        let slot = self.free_slots.pop().unwrap_or_else(|| {
            let s = self.next_slot;
            self.next_slot += 1;
            s
        });
        // A task-free job retires at its arrival instant.
        if rt.state.all_done(&job) {
            rt.finish = Some(self.now);
        }
        self.active.push(Active {
            id,
            slot,
            job,
            rt,
            policy,
            lower_bound,
        });
        self.retire_done();
        id
    }

    /// Advances the session to time `t`: epochs run and completions drain
    /// up to the horizon, drained jobs retire, and the clock idles forward
    /// to `t` if the machine goes quiet first.
    ///
    /// # Panics
    /// If `t` is in the past.
    pub fn run_until(&mut self, t: Time) {
        assert!(
            t >= self.now,
            "run_until({t}) but session is at {}",
            self.now
        );
        self.drive_session(Some(t));
        self.now = self.now.max(t);
        self.retire_done();
    }

    /// Runs until every admitted job has drained.
    pub fn drain(&mut self) {
        self.drive_session(None);
        self.retire_done();
    }

    fn drive_session(&mut self, stop_at: Option<Time>) {
        let preemptive = self.opts.mode == Mode::Preemptive;
        let wall = Instant::now();
        let mut jobs: Vec<SessionJob<'_>> = self
            .active
            .iter_mut()
            .map(|a| SessionJob {
                job: &a.job,
                rt: &mut a.rt,
                policy: &mut *a.policy,
                slot: a.slot,
                done: false,
            })
            .collect();
        for j in jobs.iter_mut() {
            j.done = j.rt.finish.is_some();
        }
        let active_jobs = jobs.len();
        let telemetry = self
            .telemetry
            .as_mut()
            .map(|t| crate::telemetry::CadenceCtx {
                every: t.every,
                next_at: &mut t.next_at,
                sink: &mut *t.sink,
                stream: Some(&self.stream),
                active_jobs,
            });
        let mut cx = DriveCtx {
            mach: &mut self.ws.mach,
            obs: &mut self.ws.obs,
            config: &self.config,
            preemptive,
            quantum: self.opts.quantum,
            record_trace: false,
            inter: self.opts.inter,
            now: &mut self.now,
            stats: &mut self.stats,
            last_epoch_t: &mut self.last_epoch_t,
            telemetry,
        };
        // With a counting allocator registered, meter the epoch loop —
        // in steady state (warm workspace, warm policies, no telemetry
        // tick due) the delta is ~0, asserted by the allocation-
        // regression suite.
        let alloc_at_entry = crate::instrument::alloc_probe();
        drive(&mut cx, &mut jobs, stop_at);
        if let Some(at_entry) = alloc_at_entry {
            self.stats.epoch_bytes += crate::instrument::alloc_probe()
                .unwrap_or(at_entry)
                .saturating_sub(at_entry);
        }
        self.stats.engine_nanos += wall.elapsed().as_nanos() as u64;
    }

    /// Retires every drained job: detach its policy, recycle its runtime,
    /// fold its [`JobRecord`](fhs_obs::JobRecord) into the stream stats.
    fn retire_done(&mut self) {
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].rt.finish.is_none() {
                i += 1;
                continue;
            }
            // Ordered removal: the active vec stays in admission order,
            // which FIFO slice order and the tie-breaks depend on.
            let mut a = self.active.remove(i);
            let finish = a.rt.finish.expect("checked above");
            let record = fhs_obs::JobRecord {
                id: a.id.0,
                arrival: a.rt.arrival,
                first_start: a.rt.first_start,
                finish,
                tasks: a.job.num_tasks() as u64,
                work: a.job.total_work(),
                lower_bound: a.lower_bound,
            };
            self.stream.record(&record);
            self.jobs.push(record);
            self.stats.merge(&RunStats {
                transitions: a.rt.state.transition_counts(),
                selection: a.policy.take_selection_stats().unwrap_or_default(),
                ..RunStats::default()
            });
            a.policy.detach_job();
            self.spare_policies.push(a.policy);
            self.spare_rts.push(a.rt);
            self.free_slots.push(a.slot);
        }
    }

    /// Drains any remaining jobs, closes the recorder, and reports the
    /// session's aggregate outcome plus the workspace for reuse by a
    /// follow-up session.
    pub fn finish(mut self) -> (SessionOutcome, Workspace) {
        self.drain();
        self.ws.obs.run_end(self.now, self.ws.mach.epoch);
        let obs = self.ws.obs.take_run(self.now);
        let outcome = SessionOutcome {
            makespan: self.now,
            busy_time: self.ws.mach.busy_time.clone(),
            stats: self.stats,
            jobs: self.jobs,
            stream: self.stream,
            obs,
        };
        (outcome, self.ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, RunOptions};
    use crate::policy::FifoPolicy;
    use kdag::KDagBuilder;

    fn chain_job() -> KDag {
        let mut b = KDagBuilder::new(2);
        let a = b.add_task(0, 2);
        let m = b.add_task(1, 3);
        let z = b.add_task(0, 1);
        b.add_edge(a, m).unwrap();
        b.add_edge(m, z).unwrap();
        b.build().unwrap()
    }

    fn wide_job() -> KDag {
        let mut b = KDagBuilder::new(2);
        for i in 0..6 {
            b.add_task(i % 2, 2);
        }
        b.build().unwrap()
    }

    #[test]
    fn one_job_session_matches_engine_run() {
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let job = chain_job();
            let cfg = MachineConfig::uniform(2, 2);
            let single = engine::run(&job, &cfg, &mut FifoPolicy, mode, &RunOptions::default());
            let mut s = Session::new(cfg, SessionOptions::new(mode));
            s.admit(Arc::new(job), Box::new(FifoPolicy), 0);
            let (out, _) = s.finish();
            assert_eq!(out.makespan, single.makespan, "{mode:?}");
            assert_eq!(out.busy_time, single.busy_time, "{mode:?}");
            assert_eq!(out.stats.epochs, single.stats.epochs, "{mode:?}");
            assert_eq!(out.jobs.len(), 1);
            assert_eq!(out.jobs[0].finish, single.makespan);
            assert_eq!(out.jobs[0].arrival, 0);
        }
    }

    #[test]
    fn staggered_arrivals_respect_clock_and_retire_all() {
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            for inter in ALL_INTER_JOB_POLICIES {
                let cfg = MachineConfig::uniform(2, 1);
                let mut s = Session::new(cfg, SessionOptions::new(mode).with_inter(inter));
                s.admit(Arc::new(chain_job()), Box::new(FifoPolicy), 0);
                s.run_until(4);
                assert_eq!(s.now(), 4);
                s.admit(Arc::new(wide_job()), Box::new(FifoPolicy), 0);
                let (out, _) = s.finish();
                assert_eq!(out.jobs.len(), 2, "{mode:?} {inter:?}");
                // Total work is conserved across the machine view.
                assert_eq!(
                    out.busy_time.iter().sum::<u64>(),
                    6 + 12,
                    "{mode:?} {inter:?}"
                );
                // The second job arrived at t=4 and cannot respond faster
                // than its isolated lower bound.
                let j1 = out.jobs.iter().find(|j| j.id == 1).unwrap();
                assert_eq!(j1.arrival, 4);
                assert!(j1.response() >= j1.lower_bound, "{mode:?} {inter:?}");
                assert!(j1.slowdown() >= 1.0, "{mode:?} {inter:?}");
            }
        }
    }

    #[test]
    fn idle_gap_between_jobs_moves_clock_forward() {
        let cfg = MachineConfig::uniform(2, 2);
        let mut s = Session::new(cfg, SessionOptions::new(Mode::NonPreemptive));
        s.admit(Arc::new(chain_job()), Box::new(FifoPolicy), 0);
        s.run_until(100); // job drains at 6, machine idles to 100
        assert_eq!(s.now(), 100);
        assert_eq!(s.active_jobs(), 0);
        assert_eq!(s.retired_jobs(), 1);
        s.admit(Arc::new(chain_job()), Box::new(FifoPolicy), 0);
        let (out, _) = s.finish();
        assert_eq!(out.makespan, 106);
        let j1 = &out.jobs[1];
        assert_eq!(j1.arrival, 100);
        assert_eq!(j1.response(), 6);
        assert_eq!(j1.queueing(), 0);
    }

    #[test]
    fn empty_job_retires_at_arrival() {
        let cfg = MachineConfig::uniform(1, 1);
        let mut s = Session::new(cfg, SessionOptions::default());
        let job = KDagBuilder::new(1).build().unwrap();
        s.admit(Arc::new(job), Box::new(FifoPolicy), 0);
        assert_eq!(s.active_jobs(), 0);
        let (out, _) = s.finish();
        assert_eq!(out.jobs[0].response(), 0);
        assert_eq!(out.jobs[0].slowdown(), 1.0);
    }

    #[test]
    fn policies_and_runtimes_are_recycled() {
        let cfg = MachineConfig::uniform(2, 1);
        let mut s = Session::new(cfg, SessionOptions::default());
        for i in 0..5 {
            let p = s.recycled_policy().unwrap_or_else(|| Box::new(FifoPolicy));
            s.admit(Arc::new(chain_job()), p, i);
            s.drain();
        }
        let (out, _) = s.finish();
        assert_eq!(out.jobs.len(), 5);
        assert_eq!(out.stream.completed, 5);
        // Back-to-back identical jobs on an empty machine all see the same
        // response time.
        assert!(out
            .jobs
            .iter()
            .all(|j| j.response() == out.jobs[0].response()));
    }

    #[test]
    fn contended_session_is_deterministic_per_inter_policy() {
        // Same arrival plan under each discipline: outcomes are stable
        // across repeated replays, and all jobs complete under all three.
        for inter in ALL_INTER_JOB_POLICIES {
            let mut reference: Option<Vec<(u64, Time)>> = None;
            for _ in 0..2 {
                let cfg = MachineConfig::uniform(2, 1);
                let mut s = Session::new(
                    cfg,
                    SessionOptions::new(Mode::NonPreemptive).with_inter(inter),
                );
                for i in 0..4u64 {
                    s.run_until(i * 2);
                    s.admit(Arc::new(wide_job()), Box::new(FifoPolicy), i);
                }
                let (out, _) = s.finish();
                let got: Vec<(u64, Time)> = out.jobs.iter().map(|j| (j.id, j.finish)).collect();
                assert_eq!(out.jobs.len(), 4, "{inter:?}");
                if let Some(r) = &reference {
                    assert_eq!(r, &got, "{inter:?} not deterministic");
                } else {
                    reference = Some(got);
                }
            }
        }
    }

    #[test]
    fn fair_share_prefers_the_starved_job() {
        // Two identical wide jobs, one admitted mid-flight. Under
        // fair-share the latecomer (0 attained service) must be granted
        // the next free slot ahead of the incumbent.
        let cfg = MachineConfig::uniform(2, 1);
        let mut s = Session::new(
            cfg,
            SessionOptions::new(Mode::NonPreemptive).with_inter(InterJobPolicy::FairShare),
        );
        s.admit(Arc::new(wide_job()), Box::new(FifoPolicy), 0);
        s.run_until(2);
        s.admit(Arc::new(wide_job()), Box::new(FifoPolicy), 1);
        let (out, _) = s.finish();
        let j0 = out.jobs.iter().find(|j| j.id == 0).unwrap();
        let j1 = out.jobs.iter().find(|j| j.id == 1).unwrap();
        // The latecomer starts as soon as a slot frees after its arrival.
        assert_eq!(j1.queueing(), 0);
        // Interleaving stretches the incumbent past its isolated finish.
        assert!(j0.response() > 6);
    }

    #[test]
    fn fast_forward_skips_decision_free_quantum_epochs() {
        // One 10-work task under quantum 1: stepping would execute 10
        // epochs; fast-forward executes the first and synthesizes the
        // other 9 (counters included), landing on the same schedule.
        let mut b = KDagBuilder::new(1);
        b.add_task(0, 10);
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 1);
        let mut s = Session::new(cfg, SessionOptions::new(Mode::Preemptive).with_quantum(1));
        s.admit(Arc::new(job), Box::new(FifoPolicy), 0);
        let (out, _) = s.finish();
        assert_eq!(out.makespan, 10);
        assert_eq!(out.stats.epochs, 10);
        assert_eq!(out.stats.epochs_skipped, 9);
        assert_eq!(out.stats.tasks_assigned, 10);
        assert_eq!(out.stats.transitions.progress_updates, 10);
    }

    #[test]
    fn fast_forward_counts_partial_trailing_quantum() {
        // 7 work at quantum 3 steps 3 + 3 + 1: three epochs, two skipped.
        let mut b = KDagBuilder::new(1);
        b.add_task(0, 7);
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 1);
        let mut s = Session::new(cfg, SessionOptions::new(Mode::Preemptive).with_quantum(3));
        s.admit(Arc::new(job), Box::new(FifoPolicy), 0);
        let (out, _) = s.finish();
        assert_eq!(out.makespan, 7);
        assert_eq!(out.stats.epochs, 3);
        assert_eq!(out.stats.epochs_skipped, 2);
        assert_eq!(out.stats.transitions.progress_updates, 3);
    }

    #[test]
    fn telemetry_ticks_fire_on_cadence_and_do_not_perturb() {
        use crate::telemetry::{TelemetrySink, TelemetryTick};
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Probe {
            ticks: Vec<(u64, u64, usize)>, // (epochs, now, active)
        }
        struct ProbeSink(Rc<RefCell<Probe>>);
        impl TelemetrySink for ProbeSink {
            fn tick(&mut self, t: &TelemetryTick<'_>) {
                self.0
                    .borrow_mut()
                    .ticks
                    .push((t.stats.epochs, t.now, t.active_jobs));
            }
        }

        let run = |every: Option<u64>| {
            let cfg = MachineConfig::uniform(2, 2);
            let mut s = Session::new(cfg, SessionOptions::new(Mode::NonPreemptive));
            let probe = Rc::new(RefCell::new(Probe::default()));
            if let Some(every) = every {
                s.set_telemetry(every, Box::new(ProbeSink(probe.clone())));
            }
            s.admit(Arc::new(chain_job()), Box::new(FifoPolicy), 0);
            s.run_until(2);
            s.admit(Arc::new(wide_job()), Box::new(FifoPolicy), 1);
            let (out, _) = s.finish();
            let ticks = probe.borrow().ticks.clone();
            (out, ticks)
        };

        let (base, no_ticks) = run(None);
        assert!(no_ticks.is_empty());
        let (out, ticks) = run(Some(2));
        // Observe-only: identical schedule and counters with the sink on
        // (wall-clock nanos aside, which never replay).
        assert_eq!(out.makespan, base.makespan);
        let dewall = |mut s: RunStats| {
            s.assign_nanos = 0;
            s.engine_nanos = 0;
            s
        };
        assert_eq!(dewall(out.stats), dewall(base.stats));
        // Ticks fire at every 2nd executed epoch, with monotone counters.
        assert!(!ticks.is_empty());
        assert_eq!(ticks.len() as u64, out.stats.epochs / 2);
        for (i, &(epochs, _, active)) in ticks.iter().enumerate() {
            assert_eq!(epochs, 2 * (i as u64 + 1));
            assert!(active >= 1);
        }
        let times: Vec<u64> = ticks.iter().map(|t| t.1).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn telemetry_cadence_survives_fast_forward_bulk_jumps() {
        use crate::telemetry::{TelemetrySink, TelemetryTick};
        use std::cell::RefCell;
        use std::rc::Rc;

        struct Count(Rc<RefCell<Vec<u64>>>);
        impl TelemetrySink for Count {
            fn tick(&mut self, t: &TelemetryTick<'_>) {
                self.0.borrow_mut().push(t.stats.epochs);
            }
        }
        // One 10-work task under quantum 1 fast-forwards 9 of 10 epochs;
        // with a cadence of 3 the single executed epoch fires at most one
        // tick, and the bulk jump must not re-fire for the overshoot.
        let mut b = KDagBuilder::new(1);
        b.add_task(0, 10);
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 1);
        let mut s = Session::new(cfg, SessionOptions::new(Mode::Preemptive).with_quantum(1));
        let fired = Rc::new(RefCell::new(Vec::new()));
        s.set_telemetry(3, Box::new(Count(fired.clone())));
        s.admit(Arc::new(job), Box::new(FifoPolicy), 0);
        let (out, _) = s.finish();
        assert_eq!(out.stats.epochs, 10);
        assert_eq!(out.stats.epochs_skipped, 9);
        // Cadence 3 over a single executed epoch (epochs counter 1 at the
        // tick check): no tick fires before the jump, none after.
        assert!(fired.borrow().is_empty());
    }

    #[test]
    fn dirty_set_counters_track_np_consultations() {
        // A single job is never skippable: an epoch only fires when some
        // type has both a free slot and one of its candidates.
        let cfg = MachineConfig::uniform(2, 2);
        let mut s = Session::new(cfg, SessionOptions::new(Mode::NonPreemptive));
        s.admit(Arc::new(chain_job()), Box::new(FifoPolicy), 0);
        let (out, _) = s.finish();
        assert!(out.stats.epochs > 0);
        assert_eq!(out.stats.dirty_visits, out.stats.epochs);
        assert_eq!(out.stats.full_rescans, out.stats.epochs);
        assert_eq!(out.stats.epochs_skipped, 0);
    }

    #[test]
    fn dirty_set_skips_jobs_with_no_eligible_work() {
        // Job A: two type-0 tasks on one type-0 processor; job B: one
        // long type-1 task. When A's first task completes at t=3, the
        // epoch consults A (free type-0 slot, ready type-0 task) but
        // skips B, whose only task is already running.
        let cfg = MachineConfig::new(vec![1, 1]);
        let mut s = Session::new(cfg, SessionOptions::new(Mode::NonPreemptive));
        let mut ba = KDagBuilder::new(2);
        ba.add_task(0, 3);
        ba.add_task(0, 3);
        let mut bb = KDagBuilder::new(2);
        bb.add_task(1, 7);
        s.admit(Arc::new(ba.build().unwrap()), Box::new(FifoPolicy), 0);
        s.admit(Arc::new(bb.build().unwrap()), Box::new(FifoPolicy), 0);
        let (out, _) = s.finish();
        assert_eq!(out.makespan, 7);
        assert_eq!(out.stats.epochs, 2);
        assert_eq!(out.stats.dirty_visits, 3);
        assert_eq!(out.stats.full_rescans, 1);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn drain_detects_deadlock() {
        struct Lazy;
        impl Policy for Lazy {
            fn name(&self) -> &str {
                "Lazy"
            }
            fn init(&mut self, _: &KDag, _: &MachineConfig, _: u64) {}
            fn assign(&mut self, _: &EpochView<'_>, _: &mut crate::policy::Assignments) {}
        }
        let cfg = MachineConfig::uniform(2, 1);
        let mut s = Session::new(cfg, SessionOptions::default());
        s.admit(Arc::new(chain_job()), Box::new(Lazy), 0);
        s.drain();
    }

    #[test]
    fn utilization_timeline_spans_the_whole_session() {
        let cfg = MachineConfig::uniform(2, 1);
        let mut opts = SessionOptions::new(Mode::NonPreemptive);
        opts.observe = fhs_obs::ObsConfig {
            utilization: true,
            ..fhs_obs::ObsConfig::default()
        };
        let mut s = Session::new(cfg, opts);
        s.admit(Arc::new(chain_job()), Box::new(FifoPolicy), 0);
        s.run_until(10);
        s.admit(Arc::new(chain_job()), Box::new(FifoPolicy), 0);
        let (out, _) = s.finish();
        let obs = out.obs.expect("utilization on");
        let util = obs.util.as_ref().expect("utilization channel");
        assert_eq!(util.makespan, out.makespan);
        for (alpha, t) in util.per_type.iter().enumerate() {
            assert_eq!(t.busy, out.busy_time[alpha], "type {alpha}");
        }
    }
}
