//! The pre-indexed reference engines: linear-scan state, separate
//! non-preemptive and preemptive loops.
//!
//! This module preserves the simulator as it existed before the indexed
//! ready-set and unified epoch loop landed in [`crate::engine`]: every
//! `start`/`complete`/`progress`/`remaining` walks its type's queue with a
//! linear scan, and removal shifts elements (`Vec::remove` semantics). It
//! exists for two reasons:
//!
//! 1. **Oracle.** The production engine is property-tested to produce
//!    bit-identical outcomes (makespan, busy time, trace) against this
//!    implementation for every policy and mode — the two code paths share
//!    no event-loop code, so agreement on random K-DAGs is strong evidence
//!    the refactor preserved semantics.
//! 2. **Baseline.** The engine microbenchmark reports the indexed engine's
//!    speedup relative to this implementation (`BENCH_engine.json`).
//!
//! No instrumentation is collected here; [`SimOutcome::stats`] is zeroed
//! except for `epochs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kdag::{KDag, TaskId, Work};

use crate::config::MachineConfig;
use crate::engine::{Mode, RunOptions, SimOutcome};
use crate::instrument::RunStats;
use crate::policy::{Assignments, EpochView, Policy, ReadyTask};
use crate::ready_queue::ReadyQueue;
use crate::trace::{Segment, Trace};
use crate::Time;

/// Linear-scan job state: the pre-refactor [`crate::state::JobState`].
/// Queues stay dense (removal shifts), so policies observe exactly the
/// arrival-ordered live sequences of the original implementation.
struct RefState {
    status: Vec<Status>,
    indeg: Vec<u32>,
    queues: Vec<ReadyQueue>,
    queue_work: Vec<Work>,
    next_seq: u64,
    done: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Blocked,
    Ready,
    Running,
    Done,
}

impl RefState {
    fn new(job: &KDag) -> Self {
        let n = job.num_tasks();
        let mut s = RefState {
            status: vec![Status::Blocked; n],
            indeg: (0..n)
                .map(|i| job.num_parents(TaskId::from_index(i)) as u32)
                .collect(),
            queues: vec![ReadyQueue::new(); job.num_types()],
            queue_work: vec![0; job.num_types()],
            next_seq: 0,
            done: 0,
        };
        for v in job.roots() {
            s.release(job, v);
        }
        s
    }

    fn all_done(&self, job: &KDag) -> bool {
        self.done == job.num_tasks()
    }

    fn release(&mut self, job: &KDag, v: TaskId) {
        self.status[v.index()] = Status::Ready;
        let alpha = job.rtype(v);
        let w = job.work(v);
        self.queues[alpha].push(ReadyTask {
            id: v,
            seq: self.next_seq,
            remaining: w,
        });
        self.queue_work[alpha] += w;
        self.next_seq += 1;
    }

    fn start(&mut self, job: &KDag, v: TaskId) -> Work {
        assert_eq!(
            self.status[v.index()],
            Status::Ready,
            "policy selected task {v} which is not ready"
        );
        self.status[v.index()] = Status::Running;
        let alpha = job.rtype(v);
        let rt = self.queues[alpha]
            .scan_remove(v)
            .expect("ready task must be queued");
        self.queue_work[alpha] -= rt.remaining;
        rt.remaining
    }

    fn complete(&mut self, job: &KDag, v: TaskId) {
        let st = self.status[v.index()];
        assert!(
            st == Status::Running || st == Status::Ready,
            "completing task {v} in status {st:?}"
        );
        if st == Status::Ready {
            let alpha = job.rtype(v);
            let rt = self.queues[alpha]
                .scan_remove(v)
                .expect("ready task must be queued");
            self.queue_work[alpha] -= rt.remaining;
        }
        self.status[v.index()] = Status::Done;
        self.done += 1;
        for &c in job.children(v) {
            self.indeg[c.index()] -= 1;
            if self.indeg[c.index()] == 0 {
                self.release(job, c);
            }
        }
    }

    fn progress(&mut self, job: &KDag, v: TaskId, dt: Work) -> Work {
        assert_eq!(
            self.status[v.index()],
            Status::Ready,
            "progressing task {v} which is not a candidate"
        );
        let alpha = job.rtype(v);
        let rem = self.queues[alpha]
            .scan_progress(v, dt)
            .expect("ready task must be queued");
        self.queue_work[alpha] -= dt;
        rem
    }

    fn remaining(&self, job: &KDag, v: TaskId) -> Option<Work> {
        self.queues[job.rtype(v)]
            .scan_find(v)
            .map(|rt| rt.remaining)
    }
}

/// Runs `policy` with the reference engines. Same contract and panics as
/// [`crate::engine::run`].
pub fn run(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
) -> SimOutcome {
    assert_eq!(
        job.num_types(),
        config.num_types(),
        "job declared K={} but machine has K={}",
        job.num_types(),
        config.num_types()
    );
    policy.init(job, config, opts.seed);
    match mode {
        Mode::NonPreemptive => run_nonpreemptive(job, config, policy, opts),
        Mode::Preemptive => run_preemptive(job, config, policy, opts, opts.quantum),
    }
}

fn outcome(makespan: Time, epochs: u64, busy_time: Vec<Time>, trace: Option<Trace>) -> SimOutcome {
    SimOutcome {
        makespan,
        epochs,
        busy_time,
        trace,
        stats: RunStats {
            epochs,
            ..RunStats::default()
        },
        obs: None,
    }
}

fn run_nonpreemptive(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    opts: &RunOptions,
) -> SimOutcome {
    let k = config.num_types();
    let mut state = RefState::new(job);
    let mut out = Assignments::default();
    let mut heap: BinaryHeap<Reverse<(Time, TaskId)>> = BinaryHeap::new();
    let mut busy = vec![0usize; k];
    let mut busy_time = vec![0u64; k];
    let mut epochs = 0u64;

    let mut free_procs: Vec<Vec<u32>> = (0..k)
        .map(|a| (0..config.procs(a) as u32).rev().collect())
        .collect();
    let mut proc_of: Vec<u32> = vec![0; job.num_tasks()];
    let mut segments: Vec<Segment> = Vec::new();

    let mut now: Time = 0;
    let mut slots = vec![0usize; k];

    if state.all_done(job) {
        let trace = opts.record_trace.then(|| Trace::new(Vec::new(), 0));
        return outcome(0, 0, busy_time, trace);
    }

    loop {
        let mut has_slot_and_work = false;
        for alpha in 0..k {
            slots[alpha] = config.procs(alpha) - busy[alpha];
            if slots[alpha] > 0 && !state.queues[alpha].is_empty() {
                has_slot_and_work = true;
            }
        }
        if has_slot_and_work {
            epochs += 1;
            out.reset(k);
            let view = EpochView {
                time: now,
                job,
                config,
                queues: &state.queues,
                queue_work: &state.queue_work,
                slots: &slots,
                preemptive: false,
            };
            policy.assign(&view, &mut out);
            for alpha in 0..k {
                let chosen = out.chosen(alpha);
                assert!(
                    chosen.len() <= slots[alpha],
                    "policy over-assigned type {alpha}: {} > {} slots",
                    chosen.len(),
                    slots[alpha]
                );
                for i in 0..chosen.len() {
                    let v = out.chosen(alpha)[i];
                    assert_eq!(
                        job.rtype(v),
                        alpha,
                        "policy put task {v} (type {}) on type-{alpha} processors",
                        job.rtype(v)
                    );
                    let rem = state.start(job, v);
                    busy[alpha] += 1;
                    busy_time[alpha] += rem;
                    let p = free_procs[alpha].pop().expect("slot accounting");
                    proc_of[v.index()] = p;
                    heap.push(Reverse((now + rem, v)));
                    if opts.record_trace {
                        segments.push(Segment {
                            task: v,
                            rtype: alpha,
                            proc: p,
                            start: now,
                            end: now + rem,
                        });
                    }
                }
            }
        }

        if heap.is_empty() {
            assert!(
                state.all_done(job),
                "deadlock: no running tasks but {} tasks incomplete",
                job.num_tasks() - state.done
            );
            break;
        }

        let Reverse((t, first)) = heap.pop().expect("checked non-empty");
        now = t;
        finish(job, &mut state, &mut busy, &mut free_procs, &proc_of, first);
        while let Some(&Reverse((t2, _))) = heap.peek() {
            if t2 != now {
                break;
            }
            let Reverse((_, v)) = heap.pop().expect("peeked");
            finish(job, &mut state, &mut busy, &mut free_procs, &proc_of, v);
        }

        if state.all_done(job) {
            break;
        }
    }

    let trace = opts
        .record_trace
        .then(|| Trace::new(std::mem::take(&mut segments), now));
    outcome(now, epochs, busy_time, trace)
}

fn finish(
    job: &KDag,
    state: &mut RefState,
    busy: &mut [usize],
    free_procs: &mut [Vec<u32>],
    proc_of: &[u32],
    v: TaskId,
) {
    let alpha = job.rtype(v);
    busy[alpha] -= 1;
    free_procs[alpha].push(proc_of[v.index()]);
    state.complete(job, v);
}

fn run_preemptive(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    opts: &RunOptions,
    quantum: Option<Work>,
) -> SimOutcome {
    let k = config.num_types();
    let mut state = RefState::new(job);
    let mut out = Assignments::default();
    let mut busy_time = vec![0u64; k];
    let mut epochs = 0u64;
    let mut now: Time = 0;
    let slots: Vec<usize> = (0..k).map(|a| config.procs(a)).collect();

    let mut last_proc: Vec<Option<u32>> = vec![None; job.num_tasks()];
    let mut segments: Vec<Segment> = Vec::new();

    let mut stamp = vec![0u64; job.num_tasks()];
    let mut epoch_id = 0u64;

    while !state.all_done(job) {
        epoch_id += 1;
        epochs += 1;
        out.reset(k);
        let view = EpochView {
            time: now,
            job,
            config,
            queues: &state.queues,
            queue_work: &state.queue_work,
            slots: &slots,
            preemptive: true,
        };
        policy.assign(&view, &mut out);

        let mut min_rem: Option<Work> = None;
        let mut total_chosen = 0usize;
        for (alpha, &slot_count) in slots.iter().enumerate() {
            let chosen = out.chosen(alpha);
            assert!(
                chosen.len() <= slot_count,
                "policy over-assigned type {alpha}"
            );
            for &v in chosen {
                assert_eq!(job.rtype(v), alpha, "type mismatch for task {v}");
                assert_ne!(stamp[v.index()], epoch_id, "task {v} chosen twice");
                stamp[v.index()] = epoch_id;
                let rem = state
                    .remaining(job, v)
                    .unwrap_or_else(|| panic!("task {v} is not a candidate"));
                assert!(rem > 0, "task {v} already finished");
                min_rem = Some(min_rem.map_or(rem, |m| m.min(rem)));
                total_chosen += 1;
            }
        }
        assert!(
            total_chosen > 0,
            "deadlock: policy assigned nothing with {} tasks incomplete",
            job.num_tasks() - state.done
        );

        let dt = match quantum {
            Some(q) => q.min(min_rem.expect("chosen non-empty")),
            None => min_rem.expect("chosen non-empty"),
        };

        if opts.record_trace {
            for alpha in 0..k {
                let mut used = vec![false; config.procs(alpha)];
                let chosen: Vec<TaskId> = out.chosen(alpha).to_vec();
                let mut needs: Vec<TaskId> = Vec::new();
                for &v in &chosen {
                    match last_proc[v.index()] {
                        Some(p) if !used[p as usize] => used[p as usize] = true,
                        _ => needs.push(v),
                    }
                }
                let mut next_free = 0usize;
                for v in needs {
                    while used[next_free] {
                        next_free += 1;
                    }
                    used[next_free] = true;
                    last_proc[v.index()] = Some(next_free as u32);
                }
                for &v in &chosen {
                    segments.push(Segment {
                        task: v,
                        rtype: alpha,
                        proc: last_proc[v.index()].expect("assigned above"),
                        start: now,
                        end: now + dt,
                    });
                }
            }
        }

        now += dt;
        for (alpha, bt) in busy_time.iter_mut().enumerate() {
            *bt += out.chosen(alpha).len() as u64 * dt;
            for i in 0..out.chosen(alpha).len() {
                let v = out.chosen(alpha)[i];
                if state.progress(job, v, dt) == 0 {
                    state.complete(job, v);
                    last_proc[v.index()] = None;
                }
            }
        }
    }

    if opts.record_trace {
        crate::trace::coalesce(&mut segments);
    }
    let trace = opts
        .record_trace
        .then(|| Trace::new(std::mem::take(&mut segments), now));
    outcome(now, epochs, busy_time, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::policy::FifoPolicy;
    use kdag::KDagBuilder;

    #[test]
    fn reference_matches_engine_on_a_small_job() {
        let mut b = KDagBuilder::new(2);
        let a = b.add_task(0, 2);
        let m = b.add_task(1, 3);
        let z = b.add_task(0, 1);
        b.add_edge(a, m).unwrap();
        b.add_edge(m, z).unwrap();
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(2, 2);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let opts = RunOptions::seeded(0).with_trace();
            let r = run(&job, &cfg, &mut FifoPolicy, mode, &opts);
            let e = engine::run(&job, &cfg, &mut FifoPolicy, mode, &opts);
            assert_eq!(r.makespan, e.makespan);
            assert_eq!(r.busy_time, e.busy_time);
            assert_eq!(r.epochs, e.epochs);
            assert_eq!(
                crate::trace::to_csv(r.trace.as_ref().unwrap()),
                crate::trace::to_csv(e.trace.as_ref().unwrap())
            );
        }
    }

    #[test]
    fn reference_stats_are_zero_except_epochs() {
        let mut b = KDagBuilder::new(1);
        b.add_task(0, 2);
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 1);
        let r = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
        assert_eq!(r.stats.epochs, r.epochs);
        assert_eq!(r.stats.transitions.releases, 0);
        assert_eq!(r.stats.assign_nanos, 0);
    }
}
