//! Reusable per-run simulation state: the steady-state execution layer.
//!
//! Every [`crate::engine::run`] call cold-allocates the engine's entire
//! mutable state — the [`JobState`] position maps and tombstone storage,
//! the completion calendar, the `free_procs` index stacks, `busy_time`,
//! the duplicate-selection stamps. A sweep performs thousands of runs, so
//! that allocator traffic dominates steady-state cost once per-instance
//! analysis is shared (PR 2).
//!
//! A [`Workspace`] owns all of it once, split along the session engine's
//! ownership seam (PR 6):
//!
//! * `JobRt` — the runtime of **one job**: its [`JobState`], assignment
//!   lanes, duplicate-selection stamps, processor maps, and stream
//!   metadata (arrival/first-start/finish times). The single-job engine
//!   uses the workspace's own `rt`; a [`crate::session::Session`] owns one
//!   `JobRt` per in-flight job and recycles them through a spare pool.
//! * `MachState` — the **machine-side** state shared by every job in a
//!   session: per-type busy counts and busy time, the free-processor
//!   stacks, the completion calendar (events drained in
//!   `(time, job slot, task)` order), the per-epoch slot counts, and the
//!   monotonic epoch counter.
//!
//! The `*_in` entry points ([`crate::engine::run_in`],
//! [`crate::metrics::evaluate_instrumented_in`]) `clear()`-and-reuse the
//! buffers instead of reallocating: the second and later runs on the same
//! workspace allocate ~nothing in the epoch loop (asserted by a
//! counting-allocator test in `fhs-bench`). The runner keeps one workspace
//! per pool worker, so a full sweep performs O(workers) engine allocations
//! instead of O(cells × instances).
//!
//! Reuse is **bit-for-bit invisible**: a run on a dirty reused workspace
//! produces exactly the outcome of a cold run (property-tested across
//! differently-shaped instances, both modes, both cadences). Two
//! invariants make that safe:
//!
//! * Every buffer is fully re-initialized for the incoming `(job, config)`
//!   shape by `Workspace::begin_run`; capacity is retained, contents are
//!   not.
//! * The duplicate-selection stamps are *not* cleared — instead the epoch
//!   counter is monotonic across all runs on one workspace, so a stale
//!   stamp (≤ the counter at hand-back) can never equal a fresh epoch id
//!   (> it). The counter advances eagerly inside the loop, so even a run
//!   abandoned by a panic leaves the workspace consistent. The same
//!   argument covers session-recycled `JobRt`s: their stamps were written
//!   against the same monotonic counter.
//!
//! Policies participate through [`crate::policy::Policy::reset_in`]: the
//! hook runs before `init` on the `*_in` paths and lets a policy clear
//! per-run scratch it owns or park per-run state in the workspace's typed
//! [`scratch_mut`](Workspace::scratch_mut) slots. The default is a no-op
//! (the cold path), and the contract is the same as for artifacts:
//! behavior must stay bit-identical to a cold run.

use std::any::{Any, TypeId};

use kdag::{KDag, TaskId};

use crate::calendar::{CalEvent, Calendar};
use crate::config::MachineConfig;
use crate::policy::Assignments;
use crate::state::JobState;
use crate::trace::Segment;
use crate::Time;

/// The per-job half of the engine's mutable state: everything whose
/// lifetime is one job, reusable across jobs of arbitrary shape via
/// [`reset_for`](JobRt::reset_for). The single-job engine embeds one in
/// its [`Workspace`]; a [`crate::session::Session`] owns one per admitted
/// job and recycles retired ones.
#[derive(Debug, Default)]
pub(crate) struct JobRt {
    /// Queues, statuses and dependency counters; reset in place per job.
    pub(crate) state: JobState,
    /// The policy's output lanes for this job.
    pub(crate) out: Assignments,
    /// Duplicate-selection stamps; never cleared (see module docs).
    pub(crate) stamp: Vec<u64>,
    /// Non-preemptive: processor each running task occupies.
    pub(crate) proc_of: Vec<u32>,
    /// Preemptive: last processor each task ran on (trace stability).
    pub(crate) last_proc: Vec<Option<u32>>,
    /// Session metadata: admission time of the job (0 for single runs).
    pub(crate) arrival: Time,
    /// Session metadata: first time any task of the job was dispatched.
    pub(crate) first_start: Option<Time>,
    /// Session metadata: completion time, set when the last task drains.
    pub(crate) finish: Option<Time>,
    /// Session metadata: work dispatched to (np) or executed for (pre)
    /// this job so far — the fair-share attained-service key.
    pub(crate) attained: u64,
}

impl JobRt {
    /// Re-initializes for `job` in place (capacity retained) and releases
    /// the roots; `arrival` stamps the job's admission time.
    pub(crate) fn reset_for(&mut self, job: &KDag, preemptive: bool, arrival: Time) {
        let n = job.num_tasks();
        self.state.reset(job);
        // Stamps are only *resized*, never zeroed: surviving entries hold
        // epoch ids ≤ the machine's monotonic counter, so they can never
        // collide with a fresh epoch id.
        self.stamp.resize(n, 0);
        if preemptive {
            self.last_proc.clear();
            self.last_proc.resize(n, None);
        } else {
            self.proc_of.clear();
            self.proc_of.resize(n, 0);
        }
        self.arrival = arrival;
        self.first_start = None;
        self.finish = None;
        self.attained = 0;
    }
}

/// The machine-side half of the engine's mutable state, shared by every
/// job in a session: pool occupancy, the completion calendar, per-epoch
/// scratch, and the monotonic epoch counter.
#[derive(Debug, Default)]
pub(crate) struct MachState {
    /// Per-type processor-busy time (cumulative over the whole session).
    pub(crate) busy_time: Vec<Time>,
    /// Trace segments (populated only when tracing; stolen by the outcome).
    pub(crate) segments: Vec<Segment>,
    /// Per-type slot counts recomputed every epoch (and decremented as
    /// jobs consume them within the epoch).
    pub(crate) slots: Vec<usize>,
    /// Reusable copy of one type's chosen slice (ends the `out` borrow).
    pub(crate) chosen_buf: Vec<TaskId>,
    /// Monotonic epoch counter across every run on this workspace.
    pub(crate) epoch: u64,
    /// Non-preemptive: occupied processors per type.
    pub(crate) busy: Vec<usize>,
    /// Non-preemptive: free-processor index stacks (stable trace ids).
    pub(crate) free_procs: Vec<Vec<u32>>,
    /// Non-preemptive: pending completion events, drained in
    /// `(time, job slot, task)` order. The slot is 0 for single-job runs,
    /// so the ordering is exactly the old `(time, task)` key.
    pub(crate) cal: Calendar,
    /// Reusable drain buffer for one completion time's events.
    pub(crate) events_buf: Vec<CalEvent>,
    /// Preemptive: tasks chosen per type this epoch, summed across jobs
    /// (feeds the utilization timeline).
    pub(crate) running_now: Vec<u32>,
    /// Inter-job priority order scratch: `(key, job index)` pairs.
    pub(crate) order: Vec<(u64, u32)>,
}

impl MachState {
    /// Re-initializes the machine state for `config` (capacity retained).
    /// The epoch counter is *not* reset — it is monotonic for the life of
    /// the workspace (see module docs).
    pub(crate) fn reset(&mut self, config: &MachineConfig, preemptive: bool) {
        let k = config.num_types();
        self.busy_time.clear();
        self.busy_time.resize(k, 0);
        self.segments.clear();
        self.slots.clear();
        self.slots.resize(k, 0);
        self.chosen_buf.clear();
        self.order.clear();
        if preemptive {
            self.running_now.clear();
            self.running_now.resize(k, 0);
        } else {
            self.busy.clear();
            self.busy.resize(k, 0);
            self.cal.clear();
            self.events_buf.clear();
            for q in &mut self.free_procs {
                q.clear();
            }
            self.free_procs.truncate(k);
            self.free_procs.resize_with(k, Vec::new);
            for (alpha, q) in self.free_procs.iter_mut().enumerate() {
                q.extend((0..config.procs(alpha) as u32).rev());
            }
        }
    }
}

/// Owns every per-run allocation of the engine, reusable across runs of
/// arbitrary `(job, config)` shapes. See the module docs for the reuse
/// contract and the `JobRt`/`MachState` split.
#[derive(Debug)]
pub struct Workspace {
    /// The single-job runtime (job slot 0 of a one-job session).
    pub(crate) rt: JobRt,
    /// Machine-side state shared across jobs.
    pub(crate) mach: MachState,
    /// Observability recorder (timelines, histograms, event trace). Armed
    /// per run by the engine from [`crate::engine::RunOptions::observe`];
    /// inert (every call an early-return no-op) when nothing is enabled.
    /// Owned here so its storage survives runs and the warm epoch loop
    /// records without allocating.
    pub(crate) obs: fhs_obs::Recorder,
    /// Completed runs on this workspace (drives the reuse counters).
    runs: u64,
    /// Policy-owned typed scratch slots, keyed by concrete type. A linear
    /// scan: policies register at most a couple of entries.
    scratch: Vec<(TypeId, Box<dyn Any + Send>)>,
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace {
            rt: JobRt::default(),
            mach: MachState::default(),
            obs: fhs_obs::Recorder::new(),
            runs: 0,
            scratch: Vec::new(),
        }
    }
}

impl Workspace {
    /// An empty workspace. No buffer is allocated until the first run.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Number of engine runs (or sessions) this workspace has hosted.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The typed scratch slot for `T`, created (via `Default`) on first
    /// access. Policies use this from [`crate::policy::Policy::reset_in`]
    /// to keep per-run buffers alive across runs on the same worker.
    pub fn scratch_mut<T: Default + Send + 'static>(&mut self) -> &mut T {
        let tid = TypeId::of::<T>();
        if let Some(i) = self.scratch.iter().position(|(t, _)| *t == tid) {
            return self.scratch[i]
                .1
                .downcast_mut::<T>()
                .expect("scratch slot type matches its TypeId key");
        }
        self.scratch.push((tid, Box::new(T::default())));
        self.scratch
            .last_mut()
            .expect("pushed just above")
            .1
            .downcast_mut::<T>()
            .expect("scratch slot type matches its TypeId key")
    }

    /// Re-initializes every engine buffer for a single-job run of
    /// `(job, config)` in place, retaining capacity. Returns `true` when
    /// this is a reuse (the workspace has hosted a run before).
    pub(crate) fn begin_run(
        &mut self,
        job: &KDag,
        config: &MachineConfig,
        preemptive: bool,
    ) -> bool {
        let reused = self.runs > 0;
        self.runs += 1;
        self.rt.reset_for(job, preemptive, 0);
        self.mach.reset(config, preemptive);
        reused
    }

    /// Re-initializes the machine-side state for a session over `config`.
    /// The embedded single-job `rt` is left untouched (sessions own their
    /// job runtimes). Returns `true` on reuse.
    pub(crate) fn begin_session(&mut self, config: &MachineConfig, preemptive: bool) -> bool {
        let reused = self.runs > 0;
        self.runs += 1;
        self.mach.reset(config, preemptive);
        reused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_slots_are_typed_and_persistent() {
        let mut ws = Workspace::new();
        ws.scratch_mut::<Vec<u64>>().push(7);
        *ws.scratch_mut::<u32>() += 3;
        ws.scratch_mut::<Vec<u64>>().push(9);
        assert_eq!(ws.scratch_mut::<Vec<u64>>(), &[7, 9]);
        assert_eq!(*ws.scratch_mut::<u32>(), 3);
    }

    #[test]
    fn begin_run_reports_reuse_and_resets_shape() {
        use kdag::KDagBuilder;
        let mut b = KDagBuilder::new(2);
        b.add_task(0, 4);
        b.add_task(1, 2);
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(2, 3);
        let mut ws = Workspace::new();
        assert!(!ws.begin_run(&job, &cfg, false));
        assert_eq!(ws.mach.busy_time, vec![0, 0]);
        assert_eq!(ws.mach.free_procs.len(), 2);
        assert_eq!(ws.mach.free_procs[0], vec![2, 1, 0]);
        assert_eq!(ws.runs(), 1);
        // Dirty the buffers, then reuse with a smaller machine.
        ws.mach.busy_time[1] = 99;
        ws.mach.free_procs[0].clear();
        let cfg2 = MachineConfig::uniform(2, 1);
        assert!(ws.begin_run(&job, &cfg2, false));
        assert_eq!(ws.mach.busy_time, vec![0, 0]);
        assert_eq!(ws.mach.free_procs[0], vec![0]);
        assert_eq!(ws.runs(), 2);
    }

    #[test]
    fn stamps_survive_resizes_without_collisions() {
        use kdag::KDagBuilder;
        let big = {
            let mut b = KDagBuilder::new(1);
            for _ in 0..8 {
                b.add_task(0, 1);
            }
            b.build().unwrap()
        };
        let small = {
            let mut b = KDagBuilder::new(1);
            b.add_task(0, 1);
            b.build().unwrap()
        };
        let cfg = MachineConfig::uniform(1, 2);
        let mut ws = Workspace::new();
        ws.begin_run(&big, &cfg, true);
        ws.mach.epoch = 5;
        ws.rt.stamp.fill(5);
        ws.begin_run(&small, &cfg, true);
        ws.begin_run(&big, &cfg, true);
        // Entries reborn by the shrink-then-grow hold 0; survivors hold 5.
        // Both are below any future epoch id (monotonic counter at 5).
        assert!(ws.rt.stamp.iter().all(|&s| s <= ws.mach.epoch));
    }

    #[test]
    fn job_rt_reset_clears_stream_metadata() {
        use kdag::KDagBuilder;
        let mut b = KDagBuilder::new(1);
        b.add_task(0, 1);
        let job = b.build().unwrap();
        let mut rt = JobRt::default();
        rt.reset_for(&job, false, 7);
        rt.first_start = Some(9);
        rt.finish = Some(12);
        rt.attained = 5;
        rt.reset_for(&job, false, 20);
        assert_eq!(rt.arrival, 20);
        assert_eq!(rt.first_start, None);
        assert_eq!(rt.finish, None);
        assert_eq!(rt.attained, 0);
    }
}
