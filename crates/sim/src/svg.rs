//! SVG rendering of execution traces — publication-quality Gantt charts
//! from any simulated schedule.
//!
//! One horizontal lane per processor, one rounded rectangle per execution
//! segment, colored by resource type, with a time axis. The output is a
//! standalone `<svg>` document.

use std::fmt::Write as _;

use kdag::KDag;

use crate::config::MachineConfig;
use crate::trace::Trace;

const LANE_H: u32 = 22;
const LANE_GAP: u32 = 4;
const LEFT_MARGIN: u32 = 84;
const TOP_MARGIN: u32 = 28;
const PX_PER_UNIT_MAX: f64 = 48.0;
const CHART_W: u32 = 960;

/// Type-indexed fill colors (cycled when `K` exceeds the palette).
const PALETTE: &[&str] = &[
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#76b7b2", "#edc948", "#9c755f",
];

/// Renders `trace` as a standalone SVG document string.
pub fn render(trace: &Trace, job: &KDag, config: &MachineConfig) -> String {
    let makespan = trace.makespan().max(1);
    let px = (CHART_W as f64 / makespan as f64).min(PX_PER_UNIT_MAX);
    let lanes: u32 = config.total_procs() as u32;
    let height = TOP_MARGIN + lanes * (LANE_H + LANE_GAP) + 30;
    let width = LEFT_MARGIN + (makespan as f64 * px).ceil() as u32 + 16;

    // lane index per (rtype, proc)
    let mut lane_of = Vec::new(); // (rtype, proc) in row order
    for alpha in 0..config.num_types() {
        for p in 0..config.procs(alpha) {
            lane_of.push((alpha, p as u32));
        }
    }
    let lane_y = |lane: usize| TOP_MARGIN + lane as u32 * (LANE_H + LANE_GAP);

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="sans-serif" font-size="11">"#
    );
    let _ = writeln!(
        out,
        r#"<rect width="{width}" height="{height}" fill="white"/>"#
    );

    // axis ticks: at most ~12, integer spacing
    let tick_step = ((makespan as f64 / 12.0).ceil() as u64).max(1);
    let mut t = 0;
    while t <= makespan {
        let x = LEFT_MARGIN as f64 + t as f64 * px;
        let _ = writeln!(
            out,
            r##"<line x1="{x:.1}" y1="{TOP_MARGIN}" x2="{x:.1}" y2="{}" stroke="#ddd"/>"##,
            lane_y(lane_of.len())
        );
        let _ = writeln!(
            out,
            r##"<text x="{x:.1}" y="{}" text-anchor="middle" fill="#555">{t}</text>"##,
            lane_y(lane_of.len()) + 14
        );
        t += tick_step;
    }

    // lane labels
    for (lane, &(alpha, p)) in lane_of.iter().enumerate() {
        let y = lane_y(lane);
        let _ = writeln!(
            out,
            r##"<text x="6" y="{}" fill="#333">type{alpha} p{p}</text>"##,
            y + LANE_H / 2 + 4
        );
    }

    // segments
    for s in trace.segments() {
        let lane = lane_of
            .iter()
            .position(|&(a, p)| a == s.rtype && p == s.proc)
            .expect("segment references a known processor");
        let x = LEFT_MARGIN as f64 + s.start as f64 * px;
        let w = (s.end - s.start) as f64 * px;
        let y = lane_y(lane);
        let color = PALETTE[s.rtype % PALETTE.len()];
        let _ = writeln!(
            out,
            r##"<rect x="{x:.1}" y="{y}" width="{w:.1}" height="{LANE_H}" rx="3" fill="{color}" stroke="#333" stroke-width="0.5"><title>{task} [{s0}, {s1})</title></rect>"##,
            task = s.task,
            s0 = s.start,
            s1 = s.end,
        );
        if w >= 18.0 {
            let _ = writeln!(
                out,
                r##"<text x="{:.1}" y="{}" text-anchor="middle" fill="white">{}</text>"##,
                x + w / 2.0,
                y + LANE_H / 2 + 4,
                s.task
            );
        }
    }

    let _ = writeln!(
        out,
        r##"<text x="{LEFT_MARGIN}" y="16" fill="#000">makespan {makespan} — {} tasks on {}</text>"##,
        job.num_tasks(),
        config
    );
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, Mode, RunOptions};
    use crate::policy::FifoPolicy;
    use kdag::KDagBuilder;

    fn traced() -> (KDag, MachineConfig, Trace) {
        let mut b = KDagBuilder::new(2);
        let a = b.add_task(0, 2);
        let c = b.add_task(1, 3);
        b.add_edge(a, c).unwrap();
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 2]);
        let out = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::NonPreemptive,
            &RunOptions::default().with_trace(),
        );
        let tr = out.trace.unwrap();
        (job, cfg, tr)
    }

    #[test]
    fn produces_wellformed_svg() {
        let (job, cfg, tr) = traced();
        let svg = render(&tr, &job, &cfg);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // one rect per segment (plus the background)
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, tr.segments().len() + 1);
        // lane labels for all three processors
        assert!(svg.contains("type0 p0"));
        assert!(svg.contains("type1 p0"));
        assert!(svg.contains("type1 p1"));
    }

    #[test]
    fn segments_carry_tooltips_and_type_colors() {
        let (job, cfg, tr) = traced();
        let svg = render(&tr, &job, &cfg);
        assert!(svg.contains("<title>t0 [0, 2)</title>"));
        assert!(svg.contains(PALETTE[0]));
        assert!(svg.contains(PALETTE[1]));
    }

    #[test]
    fn empty_trace_still_renders() {
        let job = KDagBuilder::new(1).build().unwrap();
        let cfg = MachineConfig::uniform(1, 1);
        let svg = render(&Trace::new(Vec::new(), 0), &job, &cfg);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("makespan 1")); // clamped to ≥ 1 for layout
    }
}
