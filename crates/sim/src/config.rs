//! Machine (resource) configuration: how many processors of each type.

/// Processor counts per resource type — the `P_α` of the paper.
///
/// A configuration with `K` entries describes a functionally heterogeneous
/// system with `K` resource types. Every entry must be ≥ 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    procs: Vec<usize>,
}

impl MachineConfig {
    /// Builds a configuration from explicit per-type counts.
    ///
    /// # Panics
    /// If `procs` is empty or contains a zero.
    pub fn new(procs: Vec<usize>) -> Self {
        assert!(!procs.is_empty(), "need at least one resource type");
        assert!(
            procs.iter().all(|&p| p > 0),
            "every resource type needs at least one processor"
        );
        MachineConfig { procs }
    }

    /// `k` types with `p` processors each.
    pub fn uniform(k: usize, p: usize) -> Self {
        MachineConfig::new(vec![p; k])
    }

    /// Number of resource types `K`.
    #[inline]
    pub fn num_types(&self) -> usize {
        self.procs.len()
    }

    /// `P_α` for type `alpha`.
    #[inline]
    pub fn procs(&self, alpha: usize) -> usize {
        self.procs[alpha]
    }

    /// The per-type counts as a slice `[P_0, …, P_{K-1}]`.
    #[inline]
    pub fn procs_per_type(&self) -> &[usize] {
        &self.procs
    }

    /// Total processor count across all types.
    pub fn total_procs(&self) -> usize {
        self.procs.iter().sum()
    }

    /// `P_max = max_α P_α`.
    pub fn max_procs(&self) -> usize {
        *self.procs.iter().max().expect("non-empty by invariant")
    }

    /// Returns a copy with type `alpha`'s processor count divided by
    /// `divisor` (rounded up, so it never reaches zero) — the skewed-load
    /// transformation of the paper's §V-E, which shrinks type 1 to 1/5 of
    /// its machines.
    pub fn with_type_shrunk(&self, alpha: usize, divisor: usize) -> Self {
        assert!(divisor >= 1, "divisor must be positive");
        let mut procs = self.procs.clone();
        procs[alpha] = procs[alpha].div_ceil(divisor);
        MachineConfig::new(procs)
    }
}

impl std::fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P[")?;
        for (i, p) in self.procs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_accessors() {
        let c = MachineConfig::uniform(4, 3);
        assert_eq!(c.num_types(), 4);
        assert_eq!(c.procs(2), 3);
        assert_eq!(c.total_procs(), 12);
        assert_eq!(c.max_procs(), 3);
        assert_eq!(c.procs_per_type(), &[3, 3, 3, 3]);
    }

    #[test]
    fn shrink_rounds_up_and_stays_positive() {
        let c = MachineConfig::new(vec![10, 20]);
        let s = c.with_type_shrunk(0, 5);
        assert_eq!(s.procs_per_type(), &[2, 20]);
        // 3 / 5 rounds up to 1, never 0
        let c = MachineConfig::new(vec![3, 7]);
        assert_eq!(c.with_type_shrunk(0, 5).procs(0), 1);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn rejects_zero_processor_type() {
        MachineConfig::new(vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one resource type")]
    fn rejects_empty() {
        MachineConfig::new(vec![]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(MachineConfig::new(vec![1, 2, 3]).to_string(), "P[1,2,3]");
    }
}
