//! Flat-ring completion calendar for the non-preemptive engine.
//!
//! Non-preemptive completion events are overwhelmingly *near*: a task
//! started at `now` finishes at `now + work`, and virtually every workload
//! draws works from a small range. A binary heap pays O(log pending)
//! pointer-chasing comparisons per push/pop; this calendar files an event
//! at `time & (RING_SLOTS-1)` in O(1) and finds the next event time with a
//! bounded scan of at most [`RING_SLOTS`] bucket headers — the same
//! flat-ring technique the `shiftbt` relaxation engine uses for its
//! completion cascade.
//!
//! **Invariant.** Every ring event's time lies in `(now, now + RING_SLOTS]`
//! for the engine clock `now` (pushes are gated on that window; the clock
//! only advances to the earliest pending event, so the window never slides
//! past a filed event). Two distinct times in a window of length
//! `RING_SLOTS` cannot share a bucket, so a bucket identifies a unique
//! event time and entries need not store it. Events outside the window —
//! far-future works, and degenerate zero-work tasks completing at `now` —
//! spill to an overflow [`BinaryHeap`] ordered by the full
//! `(time, job slot, task)` key.
//!
//! [`claim_into`](Calendar::claim_into) drains one time's events (ring
//! bucket plus any same-time heap spill) into a caller-owned buffer; the
//! caller sorts by `(job slot, task)` to reproduce the historical heap pop
//! order exactly. All storage is capacity-retaining: warm runs push and
//! claim without allocating.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kdag::TaskId;

use crate::Time;

/// Ring width: the window of near-future times filed in O(1). Works ≤ 64
/// cover every stock workload family; anything larger takes the heap path.
const RING_SLOTS: usize = 64;

/// One pending completion: the owning job's session slot and the task.
pub(crate) type CalEvent = (u32, TaskId);

/// The non-preemptive pending-completion set: a 64-bucket time ring with a
/// binary-heap spillover (see the module docs for the window invariant).
#[derive(Debug, Default)]
pub(crate) struct Calendar {
    /// `ring[t & 63]` holds every pending event at time `t`, for `t` in
    /// the active window `(now, now + 64]`.
    ring: Vec<Vec<CalEvent>>,
    /// Events filed in the ring (cheap emptiness probe).
    ring_len: usize,
    /// Far-future and degenerate (`time ≤ now`) events.
    overflow: BinaryHeap<Reverse<(Time, u32, TaskId)>>,
}

impl Calendar {
    /// Empties the calendar in place, retaining every bucket's capacity.
    pub(crate) fn clear(&mut self) {
        for b in &mut self.ring {
            b.clear();
        }
        self.ring_len = 0;
        self.overflow.clear();
    }

    /// `true` when no completion is pending.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.ring_len == 0 && self.overflow.is_empty()
    }

    /// Files a completion at time `t` (the engine clock reads `now`).
    pub(crate) fn push(&mut self, t: Time, slot: u32, v: TaskId, now: Time) {
        if self.ring.is_empty() {
            self.ring.resize_with(RING_SLOTS, Vec::new);
        }
        if t > now && t - now <= RING_SLOTS as Time {
            self.ring[t as usize & (RING_SLOTS - 1)].push((slot, v));
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse((t, slot, v)));
        }
    }

    /// The earliest pending event time, scanning the ring window forward
    /// from `now` and consulting the overflow heap.
    pub(crate) fn next_time(&self, now: Time) -> Option<Time> {
        let mut best: Option<Time> = self.overflow.peek().map(|&Reverse((t, _, _))| t);
        if self.ring_len > 0 {
            for d in 1..=RING_SLOTS as Time {
                let t = now + d;
                if !self.ring[t as usize & (RING_SLOTS - 1)].is_empty() {
                    best = Some(best.map_or(t, |b| b.min(t)));
                    break;
                }
            }
        }
        best
    }

    /// Moves every event at time `t` into `buf` (unsorted; the caller owns
    /// ordering). `t` must come from [`next_time`](Self::next_time) with
    /// the same `now`.
    pub(crate) fn claim_into(&mut self, t: Time, now: Time, buf: &mut Vec<CalEvent>) {
        if t > now && t - now <= RING_SLOTS as Time && self.ring_len > 0 {
            let bucket = &mut self.ring[t as usize & (RING_SLOTS - 1)];
            self.ring_len -= bucket.len();
            buf.append(bucket);
        }
        while let Some(&Reverse((t2, _, _))) = self.overflow.peek() {
            if t2 != t {
                break;
            }
            let Reverse((_, slot, v)) = self.overflow.pop().expect("peeked");
            buf.push((slot, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> TaskId {
        TaskId::from_index(i)
    }

    #[test]
    fn near_events_round_trip_through_the_ring() {
        let mut c = Calendar::default();
        assert!(c.is_empty());
        c.push(5, 0, id(1), 0);
        c.push(3, 0, id(2), 0);
        c.push(64, 0, id(3), 0); // window edge: still a ring event
        assert_eq!(c.next_time(0), Some(3));
        let mut buf = Vec::new();
        c.claim_into(3, 0, &mut buf);
        assert_eq!(buf, vec![(0, id(2))]);
        assert_eq!(c.next_time(3), Some(5));
        buf.clear();
        c.claim_into(5, 3, &mut buf);
        assert_eq!(buf, vec![(0, id(1))]);
        assert_eq!(c.next_time(5), Some(64));
        buf.clear();
        c.claim_into(64, 5, &mut buf);
        assert_eq!(buf, vec![(0, id(3))]);
        assert!(c.is_empty());
    }

    #[test]
    fn far_and_degenerate_events_spill_to_the_heap() {
        let mut c = Calendar::default();
        c.push(100, 0, id(1), 0); // beyond the window
        c.push(0, 0, id(2), 0); // zero-work: completes "now"
        assert_eq!(c.next_time(0), Some(0));
        let mut buf = Vec::new();
        c.claim_into(0, 0, &mut buf);
        assert_eq!(buf, vec![(0, id(2))]);
        assert_eq!(c.next_time(0), Some(100));
        // A ring event filed later can undercut the heap's front.
        c.push(40, 0, id(3), 0);
        assert_eq!(c.next_time(0), Some(40));
        buf.clear();
        c.claim_into(40, 0, &mut buf);
        assert_eq!(buf, vec![(0, id(3))]);
        assert_eq!(c.next_time(40), Some(100));
    }

    #[test]
    fn same_time_ring_and_heap_events_are_claimed_together() {
        let mut c = Calendar::default();
        c.push(70, 1, id(1), 0); // heap (70 > 0 + 64)
        c.push(70, 0, id(2), 20); // ring (70 - 20 ≤ 64), same time
        assert_eq!(c.next_time(20), Some(70));
        let mut buf = Vec::new();
        c.claim_into(70, 20, &mut buf);
        buf.sort_unstable();
        assert_eq!(buf, vec![(0, id(2)), (1, id(1))]);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_retains_capacity_and_empties_everything() {
        let mut c = Calendar::default();
        c.push(5, 0, id(1), 0);
        c.push(500, 0, id(2), 0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.next_time(0), None);
        c.push(2, 0, id(3), 0);
        assert_eq!(c.next_time(0), Some(2));
    }
}
