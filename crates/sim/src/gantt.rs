//! ASCII Gantt rendering of execution traces — handy in examples and when
//! debugging a scheduler's decisions.

use std::fmt::Write as _;

use kdag::KDag;

use crate::config::MachineConfig;
use crate::trace::Trace;

const GLYPHS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

/// Renders a trace as one text row per processor, one column per time unit
/// (capped at `max_width` columns; longer traces are scaled down by
/// integer bucketing — a bucket shows the task occupying its first unit).
/// Idle time renders as `.`; task `i` renders as a cycling alphanumeric
/// glyph.
pub fn render(trace: &Trace, job: &KDag, config: &MachineConfig, max_width: usize) -> String {
    let makespan = trace.makespan().max(1);
    let width = (makespan as usize).min(max_width.max(1));
    // scale: time units per column, rounded up
    let scale = (makespan as usize).div_ceil(width);

    // grid[(rtype, proc)] -> row of chars
    let mut out = String::new();
    let _ = writeln!(
        out,
        "t = 0 .. {} ({} unit(s) per column, '.' = idle)",
        trace.makespan(),
        scale
    );
    for alpha in 0..config.num_types() {
        for proc in 0..config.procs(alpha) {
            let mut row = vec![b'.'; width];
            for s in trace.segments() {
                if s.rtype == alpha && s.proc as usize == proc {
                    let glyph = GLYPHS[s.task.index() % GLYPHS.len()];
                    let c0 = (s.start as usize) / scale;
                    let c1 = ((s.end as usize - 1) / scale).min(width - 1);
                    for c in &mut row[c0..=c1] {
                        *c = glyph;
                    }
                }
            }
            let _ = writeln!(
                out,
                "type{alpha} p{proc:<2} |{}|",
                String::from_utf8(row).expect("ascii glyphs")
            );
        }
    }
    let _ = writeln!(
        out,
        "tasks: {} segments: {}",
        job.num_tasks(),
        trace.segments().len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, Mode, RunOptions};
    use crate::policy::FifoPolicy;
    use kdag::KDagBuilder;

    fn traced_run() -> (KDag, MachineConfig, Trace) {
        let mut b = KDagBuilder::new(2);
        let a = b.add_task(0, 2);
        let c = b.add_task(1, 3);
        let d = b.add_task(1, 1);
        b.add_edge(a, c).unwrap();
        b.add_edge(a, d).unwrap();
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 2]);
        let out = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::NonPreemptive,
            &RunOptions::default().with_trace(),
        );
        let trace = out.trace.unwrap();
        (job, cfg, trace)
    }

    #[test]
    fn renders_one_row_per_processor() {
        let (job, cfg, trace) = traced_run();
        let text = render(&trace, &job, &cfg, 80);
        // 1 type-0 + 2 type-1 processors => 3 grid rows
        assert_eq!(text.lines().filter(|l| l.contains('|')).count(), 3);
        assert!(text.contains("type0 p0"));
        assert!(text.contains("type1 p1"));
    }

    #[test]
    fn busy_cells_use_task_glyphs() {
        let (job, cfg, trace) = traced_run();
        let text = render(&trace, &job, &cfg, 80);
        assert!(text.contains('a')); // task 0
        assert!(text.contains('b')); // task 1
        assert!(text.contains('c')); // task 2
        assert!(text.contains('.')); // idle after the chain head
    }

    #[test]
    fn narrow_width_scales_down() {
        let (job, cfg, trace) = traced_run();
        let text = render(&trace, &job, &cfg, 2);
        for line in text.lines().filter(|l| l.contains('|')) {
            let body = line.split('|').nth(1).unwrap();
            assert!(body.len() <= 2, "row too wide: {line}");
        }
    }
}
