//! Mutable execution state of one job run, shared by both engines.

use kdag::{KDag, TaskId, Work};

use crate::instrument::TransitionCounts;
use crate::policy::ReadyTask;
use crate::ready_queue::ReadyQueue;

/// Lifecycle of a task during simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskStatus {
    /// Not all parents have completed.
    Blocked,
    /// Released: all parents done, the task sits in its type's queue.
    /// Under preemptive execution a task stays `Ready` while running (it is
    /// a re-selectable candidate every epoch).
    Ready,
    /// Started on a processor (non-preemptive engine only).
    Running,
    /// Completed.
    Done,
}

/// Queues, statuses, and dependency counters for one run. Reusable across
/// runs via [`reset`](JobState::reset), which re-initializes in place and
/// retains allocated capacity (the steady-state path of
/// [`crate::workspace::Workspace`]).
///
/// The per-type queues are kept in arrival order (monotonic `seq`), so FIFO
/// policies can dispatch by prefix and every policy sees a deterministic
/// ordering. A dense task→slot position map (`pos`) indexes every `Ready`
/// task's queue entry, making [`start`](JobState::start),
/// [`complete`](JobState::complete), [`progress`](JobState::progress) and
/// [`remaining`](JobState::remaining) O(1) amortized — removal tombstones
/// the slot and an amortized compaction pass (see [`ReadyQueue`]) reclaims
/// storage without disturbing arrival order.
///
/// The per-task records are a structure-of-arrays *hot band* sized to what
/// the epoch loop touches: one packed `word` per task (status in the low 2
/// bits, resource type above — one load answers both questions the engine
/// asks on every transition, with no `KDag` indirection), and a dense
/// `rem` mirror of remaining work so preemptive `remaining()` probes never
/// chase `pos → queue → slot`. A `ready_mask` summarizes per-type queue
/// non-emptiness for the session engine's dirty-set skip.
#[derive(Debug)]
pub struct JobState {
    /// Hot per-task word: bits 0–1 hold the status code, bits 2+ the
    /// resource type.
    word: Vec<u32>,
    /// Dense remaining-work mirror; authoritative while a task is `Ready`
    /// (kept in sync with its queue entry), stale otherwise.
    rem: Vec<Work>,
    indeg: Vec<u32>,
    queues: Vec<ReadyQueue>,
    queue_work: Vec<Work>,
    /// Slot of each task in its type's queue; valid only while `Ready`.
    pos: Vec<u32>,
    /// Bit `α` set iff `queues[α]` is non-empty (maintained for `α` < 128;
    /// machines with more types fall back to scanning the queues).
    ready_mask: u128,
    next_seq: u64,
    done: usize,
    counts: TransitionCounts,
}

/// Status codes packed into the low 2 bits of [`JobState`]'s task word.
const ST_BLOCKED: u32 = 0;
const ST_READY: u32 = 1;
const ST_RUNNING: u32 = 2;
const ST_DONE: u32 = 3;

#[inline]
fn decode_status(code: u32) -> TaskStatus {
    match code {
        ST_BLOCKED => TaskStatus::Blocked,
        ST_READY => TaskStatus::Ready,
        ST_RUNNING => TaskStatus::Running,
        _ => TaskStatus::Done,
    }
}

impl JobState {
    /// Initializes the state and releases the roots (at seq 0, 1, … in id
    /// order).
    pub fn new(job: &KDag) -> Self {
        let mut s = JobState::empty();
        s.reset(job);
        s
    }

    /// A zero-capacity state for workspace construction; must be
    /// [`reset`](JobState::reset) before use.
    pub(crate) fn empty() -> Self {
        JobState {
            word: Vec::new(),
            rem: Vec::new(),
            indeg: Vec::new(),
            queues: Vec::new(),
            queue_work: Vec::new(),
            pos: Vec::new(),
            ready_mask: 0,
            next_seq: 0,
            done: 0,
            counts: TransitionCounts::default(),
        }
    }
}

impl Default for JobState {
    /// A zero-capacity state (as `JobState::empty`); must be
    /// [`reset`](JobState::reset) before use.
    fn default() -> Self {
        JobState::empty()
    }
}

impl JobState {
    /// Re-initializes for `job` in place, retaining allocated capacity, and
    /// releases the roots — observationally identical to a fresh
    /// [`new`](JobState::new) (property-tested via workspace reuse).
    pub fn reset(&mut self, job: &KDag) {
        let n = job.num_tasks();
        let k = job.num_types();
        self.word.clear();
        self.word
            .extend((0..n).map(|i| (job.rtype(TaskId::from_index(i)) as u32) << 2));
        self.rem.clear();
        self.rem.resize(n, 0);
        self.ready_mask = 0;
        self.indeg.clear();
        self.indeg
            .extend((0..n).map(|i| job.num_parents(TaskId::from_index(i)) as u32));
        for q in &mut self.queues {
            q.clear();
        }
        self.queues.truncate(k);
        self.queues.resize_with(k, ReadyQueue::new);
        self.queue_work.clear();
        self.queue_work.resize(k, 0);
        self.pos.clear();
        self.pos.resize(n, 0);
        self.next_seq = 0;
        self.done = 0;
        self.counts = TransitionCounts::default();
        for v in job.roots() {
            self.release(job, v);
        }
    }

    /// Number of completed tasks.
    #[inline]
    pub fn done_count(&self) -> usize {
        self.done
    }

    /// `true` when every task of `job` has completed.
    #[inline]
    pub fn all_done(&self, job: &KDag) -> bool {
        self.done == job.num_tasks()
    }

    /// Current status of `v`.
    #[inline]
    pub fn status(&self, v: TaskId) -> TaskStatus {
        decode_status(self.word[v.index()] & 3)
    }

    /// Resource type of `v`, read from the hot task word (no `KDag`
    /// indirection).
    #[inline]
    pub fn rtype_of(&self, v: TaskId) -> usize {
        (self.word[v.index()] >> 2) as usize
    }

    /// Per-type queue non-emptiness, bit `α` set iff `queues[α]` has a
    /// candidate. Only the low 128 types are tracked; engines on larger
    /// machines must scan the queues instead.
    #[inline]
    pub(crate) fn ready_mask(&self) -> u128 {
        self.ready_mask
    }

    /// Folds `n` synthesized progress updates into the transition counters
    /// (the session engine's epoch fast-forward replays the counters of the
    /// epochs it skips).
    pub(crate) fn add_progress_updates(&mut self, n: u64) {
        self.counts.progress_updates += n;
    }

    /// The per-type candidate queues, arrival-ordered.
    #[inline]
    pub fn queues(&self) -> &[ReadyQueue] {
        &self.queues
    }

    /// Total remaining work per queue (`l_α`).
    #[inline]
    pub fn queue_work(&self) -> &[Work] {
        &self.queue_work
    }

    /// State-transition counters accumulated so far (see
    /// [`TransitionCounts`]).
    #[inline]
    pub fn transition_counts(&self) -> TransitionCounts {
        self.counts
    }

    /// Releases `v` into its queue with the next arrival sequence number.
    fn release(&mut self, job: &KDag, v: TaskId) {
        let i = v.index();
        debug_assert_eq!(self.word[i] & 3, ST_BLOCKED);
        self.word[i] |= ST_READY;
        let alpha = (self.word[i] >> 2) as usize;
        let w = job.work(v);
        self.rem[i] = w;
        let slot = self.queues[alpha].push(ReadyTask {
            id: v,
            seq: self.next_seq,
            remaining: w,
        });
        self.pos[i] = slot as u32;
        self.queue_work[alpha] += w;
        if alpha < 128 {
            self.ready_mask |= 1u128 << alpha;
        }
        self.next_seq += 1;
        self.counts.releases += 1;
        let depth = self.queues[alpha].len();
        if depth > self.counts.peak_queue_depth {
            self.counts.peak_queue_depth = depth;
        }
    }

    /// Tombstones `v`'s queue entry via the position map and compacts the
    /// queue if enough dead slots accumulated.
    fn unqueue(&mut self, v: TaskId) -> ReadyTask {
        let alpha = self.rtype_of(v);
        let rt = self.queues[alpha].remove_slot(self.pos[v.index()] as usize);
        self.queue_work[alpha] -= rt.remaining;
        if self.queues[alpha].is_empty() && alpha < 128 {
            self.ready_mask &= !(1u128 << alpha);
        }
        if self.queues[alpha].needs_compaction() {
            let pos = &mut self.pos;
            self.queues[alpha].compact(|id, slot| pos[id.index()] = slot as u32);
        }
        rt
    }

    /// Non-preemptive start: moves `v` from `Ready` to `Running`, removing
    /// it from its queue. Returns the task's (full) remaining work.
    ///
    /// # Panics
    /// If `v` is not currently `Ready` — this is how the engine rejects
    /// invalid policy selections.
    pub fn start(&mut self, job: &KDag, v: TaskId) -> Work {
        debug_assert_eq!(self.rtype_of(v), job.rtype(v));
        let i = v.index();
        assert_eq!(
            self.word[i] & 3,
            ST_READY,
            "policy selected task {v} which is not ready"
        );
        self.word[i] = (self.word[i] & !3) | ST_RUNNING;
        let rt = self.unqueue(v);
        self.counts.starts += 1;
        rt.remaining
    }

    /// Marks `v` complete and releases any children whose last dependency
    /// this was. Newly released children are appended to their queues.
    pub fn complete(&mut self, job: &KDag, v: TaskId) {
        self.complete_obs(job, v, 0, 0, None);
    }

    /// As [`complete`](JobState::complete), but reports each newly released
    /// child to `obs` (stamped with sim time `t` and `epoch`). The
    /// recorder is write-only: state transitions are identical to
    /// [`complete`](JobState::complete).
    pub fn complete_obs(
        &mut self,
        job: &KDag,
        v: TaskId,
        t: u64,
        epoch: u64,
        mut obs: Option<&mut fhs_obs::Recorder>,
    ) {
        let i = v.index();
        let st = self.word[i] & 3;
        assert!(
            st == ST_RUNNING || st == ST_READY,
            "completing task {v} in status {:?}",
            decode_status(st)
        );
        if st == ST_READY {
            // Preemptive completion: still queued; drop the entry.
            self.unqueue(v);
        }
        self.word[i] |= ST_DONE;
        self.done += 1;
        self.counts.completions += 1;
        for &c in job.children(v) {
            self.indeg[c.index()] -= 1;
            if self.indeg[c.index()] == 0 {
                self.release(job, c);
                if let Some(o) = obs.as_deref_mut() {
                    o.release(t, epoch, c.index() as u32, job.rtype(c));
                }
            }
        }
    }

    /// Preemptive progress: subtracts `dt` from the queued remaining work
    /// of `v`. Returns the new remaining work.
    ///
    /// # Panics
    /// If `v` is not `Ready`, or `dt` exceeds its remaining work.
    pub fn progress(&mut self, job: &KDag, v: TaskId, dt: Work) -> Work {
        debug_assert_eq!(self.rtype_of(v), job.rtype(v));
        let i = v.index();
        assert_eq!(
            self.word[i] & 3,
            ST_READY,
            "progressing task {v} which is not a candidate"
        );
        let alpha = (self.word[i] >> 2) as usize;
        let rem = self.queues[alpha].progress_slot(self.pos[i] as usize, dt);
        self.rem[i] = rem;
        self.queue_work[alpha] -= dt;
        self.counts.progress_updates += 1;
        rem
    }

    /// Truncates every queue's change-journal (and bumps its generation),
    /// once per epoch after policies have consumed the diffs.
    pub fn clear_journals(&mut self) {
        for q in &mut self.queues {
            q.clear_journal();
        }
    }

    /// Remaining work of a queued candidate (preemptive engines). Served
    /// from the dense `rem` mirror: no `pos → queue → slot` chase.
    pub fn remaining(&self, job: &KDag, v: TaskId) -> Option<Work> {
        debug_assert_eq!(self.rtype_of(v), job.rtype(v));
        let i = v.index();
        if self.word[i] & 3 != ST_READY {
            return None;
        }
        Some(self.rem[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::KDagBuilder;

    fn chain() -> (KDag, Vec<TaskId>) {
        let mut b = KDagBuilder::new(2);
        let ids = vec![b.add_task(0, 2), b.add_task(1, 3), b.add_task(0, 1)];
        b.add_edge(ids[0], ids[1]).unwrap();
        b.add_edge(ids[1], ids[2]).unwrap();
        (b.build().unwrap(), ids)
    }

    #[test]
    fn roots_are_released_at_construction() {
        let (job, ids) = chain();
        let s = JobState::new(&job);
        assert_eq!(s.status(ids[0]), TaskStatus::Ready);
        assert_eq!(s.status(ids[1]), TaskStatus::Blocked);
        assert_eq!(s.queues()[0].len(), 1);
        assert_eq!(s.queue_work(), &[2, 0]);
    }

    #[test]
    fn start_complete_releases_children_in_order() {
        let (job, ids) = chain();
        let mut s = JobState::new(&job);
        let rem = s.start(&job, ids[0]);
        assert_eq!(rem, 2);
        assert_eq!(s.queue_work(), &[0, 0]);
        s.complete(&job, ids[0]);
        assert_eq!(s.status(ids[1]), TaskStatus::Ready);
        assert_eq!(s.queue_work(), &[0, 3]);
        s.start(&job, ids[1]);
        s.complete(&job, ids[1]);
        s.start(&job, ids[2]);
        s.complete(&job, ids[2]);
        assert!(s.all_done(&job));
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn starting_blocked_task_panics() {
        let (job, ids) = chain();
        let mut s = JobState::new(&job);
        s.start(&job, ids[1]);
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn double_start_panics() {
        let (job, ids) = chain();
        let mut s = JobState::new(&job);
        s.start(&job, ids[0]);
        s.start(&job, ids[0]);
    }

    #[test]
    fn preemptive_progress_and_complete_from_queue() {
        let (job, ids) = chain();
        let mut s = JobState::new(&job);
        assert_eq!(s.progress(&job, ids[0], 1), 1);
        assert_eq!(s.queue_work(), &[1, 0]);
        assert_eq!(s.remaining(&job, ids[0]), Some(1));
        assert_eq!(s.progress(&job, ids[0], 1), 0);
        s.complete(&job, ids[0]); // completes directly from Ready
        assert_eq!(s.status(ids[0]), TaskStatus::Done);
        assert_eq!(s.status(ids[1]), TaskStatus::Ready);
    }

    #[test]
    fn seq_numbers_are_monotonic_across_releases() {
        // Two roots then a join child: child's seq must be larger.
        let mut b = KDagBuilder::new(1);
        let a = b.add_task(0, 1);
        let c = b.add_task(0, 1);
        let j = b.add_task(0, 1);
        b.add_edge(a, j).unwrap();
        b.add_edge(c, j).unwrap();
        let job = b.build().unwrap();
        let mut s = JobState::new(&job);
        let root_seqs: Vec<u64> = s.queues()[0].iter().map(|rt| rt.seq).collect();
        assert_eq!(root_seqs, vec![0, 1]);
        s.start(&job, a);
        s.complete(&job, a);
        s.start(&job, c);
        s.complete(&job, c);
        assert_eq!(s.queues()[0].first().unwrap().seq, 2);
    }

    #[test]
    fn scattered_removals_survive_compaction() {
        // 40 independent tasks; start every third one in scattered order,
        // forcing tombstones past the compaction threshold, then verify the
        // survivors iterate in arrival order and remain operable through
        // the (relocated) position map.
        let mut b = KDagBuilder::new(1);
        let ids: Vec<TaskId> = (0..40).map(|_| b.add_task(0, 5)).collect();
        let job = b.build().unwrap();
        let mut s = JobState::new(&job);
        let mut started = Vec::new();
        for (i, &v) in ids.iter().enumerate() {
            if i % 3 == 0 {
                s.start(&job, v);
                started.push(v);
            }
        }
        let expect: Vec<usize> = (0..40).filter(|i| i % 3 != 0).collect();
        let got: Vec<usize> = s.queues()[0].iter().map(|rt| rt.id.index()).collect();
        assert_eq!(got, expect);
        // Survivors still progress and complete via their slots.
        assert_eq!(s.progress(&job, ids[1], 2), 3);
        assert_eq!(s.remaining(&job, ids[1]), Some(3));
        s.complete(&job, ids[1]);
        assert_eq!(s.status(ids[1]), TaskStatus::Done);
        let total: Work = s.queues()[0].iter().map(|rt| rt.remaining).sum();
        assert_eq!(total, s.queue_work()[0]);
    }

    #[test]
    fn transition_counts_track_lifecycle() {
        let (job, ids) = chain();
        let mut s = JobState::new(&job);
        assert_eq!(s.transition_counts().releases, 1); // the root
        assert_eq!(s.transition_counts().peak_queue_depth, 1);
        s.start(&job, ids[0]);
        s.complete(&job, ids[0]);
        s.progress(&job, ids[1], 3);
        s.complete(&job, ids[1]);
        let c = s.transition_counts();
        assert_eq!(c.releases, 3);
        assert_eq!(c.starts, 1);
        assert_eq!(c.completions, 2);
        assert_eq!(c.progress_updates, 1);
    }
}
