//! Periodic telemetry hook for the session epoch loop.
//!
//! A [`TelemetrySink`] registered on a [`Session`](crate::Session) is
//! called every N *executed* decision epochs with a read-only
//! [`TelemetryTick`] view of the live counters. The hook is strictly
//! observe-only: it fires after the epoch counter increment and before
//! any scheduling decision of the next epoch, receives shared references
//! only, and the drive loop's behaviour (including epoch fast-forward)
//! is identical with or without a sink — pinned by the session
//! equivalence tests.
//!
//! Fast-forwarded epochs are *skipped*, not executed: a bulk jump may
//! carry `stats.epochs` far past the next cadence point, in which case
//! the next executed epoch fires one tick and re-arms the cadence from
//! there. Tick counters are exact either way — skipped epochs are
//! synthesized into `stats` before the next tick fires.

use crate::instrument::RunStats;
use crate::Time;
use fhs_obs::StreamStats;

/// Receiver of periodic telemetry ticks. Implementations typically
/// render an exposition snapshot and publish it (atomically) somewhere a
/// scraper can read; they must not assume any particular cadence beyond
/// "at most once per executed epoch".
pub trait TelemetrySink {
    /// Called at each cadence point with the live counters.
    fn tick(&mut self, tick: &TelemetryTick<'_>);
}

/// One periodic observation of a running session, passed to
/// [`TelemetrySink::tick`]. All references point at live session state —
/// read, render, return.
pub struct TelemetryTick<'a> {
    /// Current simulation time.
    pub now: Time,
    /// Workspace epoch counter (monotonic across runs on a workspace).
    pub epoch: u64,
    /// Engine counters accumulated so far this session.
    pub stats: &'a RunStats,
    /// Stream statistics over jobs retired so far (sessions only).
    pub stream: Option<&'a StreamStats>,
    /// Jobs currently admitted and not yet drained.
    pub active_jobs: usize,
}

/// Borrowed cadence state threaded through one `drive` call.
pub(crate) struct CadenceCtx<'a> {
    /// Fire a tick every this many executed epochs.
    pub(crate) every: u64,
    /// `stats.epochs` value at which the next tick fires; persists
    /// across drive calls within a session.
    pub(crate) next_at: &'a mut u64,
    pub(crate) sink: &'a mut dyn TelemetrySink,
    pub(crate) stream: Option<&'a StreamStats>,
    pub(crate) active_jobs: usize,
}

/// Owned per-session cadence state (see
/// [`Session::set_telemetry`](crate::Session::set_telemetry)).
pub(crate) struct SessionTelemetry {
    pub(crate) every: u64,
    pub(crate) next_at: u64,
    pub(crate) sink: Box<dyn TelemetrySink>,
}
