//! Evaluation helpers: the paper's lower bound and completion-time ratio.

use std::sync::Arc;

use kdag::precompute::Artifacts;
use kdag::KDag;

use crate::config::MachineConfig;
use crate::engine::{run, run_in, run_in_with_artifacts, run_with_artifacts, Mode, RunOptions};
use crate::instrument::RunStats;
use crate::policy::Policy;
use crate::workspace::Workspace;
use crate::Time;

/// One policy evaluation on one job instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalResult {
    /// Measured completion time `T(J)`.
    pub makespan: Time,
    /// The paper's offline lower bound `L(J) = max(T∞, max_α T1_α/P_α)`.
    pub lower_bound: Time,
    /// The headline metric: `T(J) / L(J)` (1.0 for an empty job).
    pub ratio: f64,
}

/// Runs `policy` on `(job, config)` and reports the completion-time ratio
/// against the paper's lower bound. Traces are not recorded.
pub fn evaluate(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    seed: u64,
) -> EvalResult {
    evaluate_with(job, config, policy, mode, &RunOptions::seeded(seed))
}

/// As [`evaluate`], but with explicit [`RunOptions`] (e.g. a per-quantum
/// preemption cadence).
pub fn evaluate_with(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
) -> EvalResult {
    evaluate_instrumented(job, config, policy, mode, opts).0
}

/// As [`evaluate_with`], but also returns the run's engine counters for
/// callers that aggregate instrumentation across instances.
pub fn evaluate_instrumented(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
) -> (EvalResult, RunStats) {
    let out = run(job, config, policy, mode, opts);
    let lb = kdag::metrics::lower_bound(job, config.procs_per_type());
    (eval_result(out.makespan, lb), out.stats)
}

/// [`evaluate_instrumented`] inside a caller-owned [`Workspace`] — engine
/// buffers are reused across calls; the result is bit-identical to a cold
/// evaluation.
pub fn evaluate_instrumented_in(
    ws: &mut Workspace,
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
) -> (EvalResult, RunStats) {
    let out = run_in(ws, job, config, policy, mode, opts);
    let lb = kdag::metrics::lower_bound(job, config.procs_per_type());
    (eval_result(out.makespan, lb), out.stats)
}

/// As [`evaluate_instrumented_in`], but also surfaces the run's
/// observability payload ([`SimOutcome::obs`](crate::SimOutcome::obs)) —
/// present when any [`RunOptions::observe`] channel is enabled.
pub fn evaluate_observed_in(
    ws: &mut Workspace,
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
) -> (EvalResult, RunStats, Option<Box<fhs_obs::RunObs>>) {
    let out = run_in(ws, job, config, policy, mode, opts);
    let lb = kdag::metrics::lower_bound(job, config.procs_per_type());
    (eval_result(out.makespan, lb), out.stats, out.obs)
}

/// As [`evaluate_instrumented_with_artifacts_in`], but also surfaces the
/// run's observability payload — the fully-loaded sweep path: shared
/// per-instance analyses, zero-allocation engine reuse, and recording.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_observed_with_artifacts_in(
    ws: &mut Workspace,
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
    artifacts: &Arc<Artifacts>,
) -> (EvalResult, RunStats, Option<Box<fhs_obs::RunObs>>) {
    let out = run_in_with_artifacts(ws, job, config, policy, mode, opts, artifacts);
    let lb = kdag::metrics::lower_bound_with_span(job, config.procs_per_type(), artifacts.span());
    (eval_result(out.makespan, lb), out.stats, out.obs)
}

fn eval_result(makespan: Time, lb: Time) -> EvalResult {
    EvalResult {
        makespan,
        lower_bound: lb,
        ratio: if lb == 0 {
            1.0
        } else {
            makespan as f64 / lb as f64
        },
    }
}

/// As [`evaluate_instrumented`], but initializes the policy from a shared
/// [`Artifacts`] bundle (via [`run_with_artifacts`]) and reuses the
/// bundle's span for the lower bound instead of recomputing it. With a
/// correct `Policy::init_with_artifacts` implementation the result is
/// bit-identical to [`evaluate_instrumented`].
pub fn evaluate_instrumented_with_artifacts(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
    artifacts: &Arc<Artifacts>,
) -> (EvalResult, RunStats) {
    let out = run_with_artifacts(job, config, policy, mode, opts, artifacts);
    let lb = kdag::metrics::lower_bound_with_span(job, config.procs_per_type(), artifacts.span());
    (eval_result(out.makespan, lb), out.stats)
}

/// [`evaluate_instrumented_with_artifacts`] inside a caller-owned
/// [`Workspace`] — the steady-state sweep path: shared per-instance
/// analyses *and* zero-allocation engine reuse. Bit-identical to a cold
/// evaluation.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_instrumented_with_artifacts_in(
    ws: &mut Workspace,
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
    artifacts: &Arc<Artifacts>,
) -> (EvalResult, RunStats) {
    let out = run_in_with_artifacts(ws, job, config, policy, mode, opts, artifacts);
    let lb = kdag::metrics::lower_bound_with_span(job, config.procs_per_type(), artifacts.span());
    (eval_result(out.makespan, lb), out.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FifoPolicy;
    use kdag::KDagBuilder;

    #[test]
    fn ratio_is_one_when_optimal() {
        // 4 unit tasks, 1 type, 2 procs: greedy achieves lb = 2.
        let mut b = KDagBuilder::new(1);
        for _ in 0..4 {
            b.add_task(0, 1);
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 2);
        let r = evaluate(&job, &cfg, &mut FifoPolicy, Mode::NonPreemptive, 0);
        assert_eq!(r.makespan, 2);
        assert_eq!(r.lower_bound, 2);
        assert_eq!(r.ratio, 1.0);
    }

    #[test]
    fn ratio_is_at_least_one_always() {
        let mut b = KDagBuilder::new(2);
        let a = b.add_task(0, 3);
        let c = b.add_task(1, 2);
        let d = b.add_task(1, 4);
        b.add_edge(a, c).unwrap();
        b.add_edge(a, d).unwrap();
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 1]);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let r = evaluate(&job, &cfg, &mut FifoPolicy, mode, 0);
            assert!(r.ratio >= 1.0, "ratio {} < 1 in {mode:?}", r.ratio);
            assert!(r.makespan >= r.lower_bound);
        }
    }

    #[test]
    fn empty_job_ratio_is_one() {
        let job = KDagBuilder::new(1).build().unwrap();
        let cfg = MachineConfig::uniform(1, 1);
        let r = evaluate(&job, &cfg, &mut FifoPolicy, Mode::NonPreemptive, 0);
        assert_eq!(r.ratio, 1.0);
        assert_eq!(r.lower_bound, 0);
    }
}
