//! Indexed, arrival-ordered candidate queues.
//!
//! A [`ReadyQueue`] stores one type's ready candidates in arrival (`seq`)
//! order. Removal does not shift elements: slots are *tombstoned* and
//! reclaimed by an amortized compaction pass, so — together with the dense
//! task→slot position map kept by [`crate::state::JobState`] — the state
//! transitions `start`/`complete`/`progress`/`remaining` are O(1) amortized
//! instead of a linear scan per call. Iteration skips tombstones and
//! therefore presents exactly the arrival-ordered live sequence a plain
//! `Vec` with order-preserving removal would: FIFO and seq-sensitive
//! policies observe bit-for-bit identical queues.
//!
//! Liveness is tracked in a *bitmap* (one `u64` word per 64 slots), so
//! iteration skips tombstones 64 at a time with `trailing_zeros` instead of
//! testing a `bool` per slot, and rank-indexed batch lookups
//! ([`select_ranks`](ReadyQueue::select_ranks)) skip whole words with a
//! popcount — the epoch loop touches O(live/64 + picks) cache lines per
//! queue instead of O(capacity).
//!
//! Compaction runs when the tombstone count reaches
//! `max(live, MIN_COMPACT_SLACK)`, which bounds the backing storage to
//! `2·live + MIN_COMPACT_SLACK` entries — iteration stays O(live) and each
//! entry is moved O(1) amortized times over its queue lifetime.

use kdag::{TaskId, Work};

use crate::policy::ReadyTask;

/// Tombstone slack below which compaction is never triggered; keeps tiny
/// queues from compacting on every removal.
const MIN_COMPACT_SLACK: usize = 8;

/// One membership or remaining-work change to a [`ReadyQueue`], recorded in
/// the queue's change-journal.
///
/// Policies that maintain incremental per-candidate state (the indexed MQB
/// selection path) subscribe to the journal instead of re-snapshotting the
/// queue every epoch: they remember how far into [`ReadyQueue::journal`]
/// they have read (together with [`ReadyQueue::journal_gen`], which detects
/// truncation) and replay only the suffix. Compaction is *not* journaled —
/// it moves slots, never membership — so journal consumers must key their
/// state by task, not by slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueEvent {
    /// A candidate entered the queue (task release, or a preempted task
    /// re-queued by the engine).
    Pushed(ReadyTask),
    /// A candidate left the queue (started non-preemptively, completed, or
    /// unqueued by the engine).
    Removed(TaskId),
    /// A queued candidate's remaining work changed (preemptive progress).
    Updated {
        /// The task whose queue entry changed.
        id: TaskId,
        /// Its new remaining work.
        remaining: Work,
    },
}

/// One type's candidate queue: arrival-ordered storage with tombstoned
/// removal, bitmap liveness, and amortized compaction.
///
/// Policies read it through [`len`](ReadyQueue::len),
/// [`iter`](ReadyQueue::iter), [`first`](ReadyQueue::first),
/// [`collect_into`](ReadyQueue::collect_into) and
/// [`select_ranks`](ReadyQueue::select_ranks); mutation is reserved to the
/// simulator state (`crate`-internal).
#[derive(Clone, Debug, Default)]
pub struct ReadyQueue {
    entries: Vec<ReadyTask>,
    /// Liveness bitmap: bit `s & 63` of word `s >> 6` is set iff slot `s`
    /// holds a live candidate. Bits past `entries.len()` are always clear.
    live: Vec<u64>,
    live_count: usize,
    journal: Vec<QueueEvent>,
    journal_gen: u64,
}

/// Word-skipping iterator over the live candidates of a [`ReadyQueue`], in
/// arrival order.
pub struct QueueIter<'a> {
    entries: &'a [ReadyTask],
    words: &'a [u64],
    wi: usize,
    cur: u64,
}

impl<'a> Iterator for QueueIter<'a> {
    type Item = &'a ReadyTask;

    #[inline]
    fn next(&mut self) -> Option<&'a ReadyTask> {
        loop {
            if self.cur != 0 {
                let b = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some(&self.entries[(self.wi << 6) | b]);
            }
            self.wi += 1;
            if self.wi >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.wi];
        }
    }
}

impl ReadyQueue {
    /// An empty queue.
    pub fn new() -> Self {
        ReadyQueue::default()
    }

    /// Builds a queue holding `tasks` in the given (arrival) order.
    ///
    /// Intended for tests and benchmarks that construct an
    /// [`crate::policy::EpochView`] by hand.
    pub fn from_tasks(tasks: Vec<ReadyTask>) -> Self {
        let n = tasks.len();
        let mut live = vec![!0u64; n.div_ceil(64)];
        if n & 63 != 0 {
            if let Some(last) = live.last_mut() {
                *last = (1u64 << (n & 63)) - 1;
            }
        }
        ReadyQueue {
            entries: tasks,
            live,
            live_count: n,
            ..ReadyQueue::default()
        }
    }

    #[inline]
    fn is_live(&self, slot: usize) -> bool {
        self.live[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    /// The change-journal: every membership/remaining change since the last
    /// [`journal_gen`](Self::journal_gen) bump, in application order.
    ///
    /// The engine truncates the journal once per epoch, after policies have
    /// consumed it; hand-built queues (tests) never truncate, so consumers
    /// must tolerate an ever-growing journal.
    #[inline]
    pub fn journal(&self) -> &[QueueEvent] {
        &self.journal
    }

    /// Generation counter for the journal: bumped every time the journal is
    /// truncated. A consumer that remembers `(journal_gen, offset)` replays
    /// `journal()[offset..]` when the generation still matches, and
    /// `journal()[0..]` when it advanced.
    #[inline]
    pub fn journal_gen(&self) -> u64 {
        self.journal_gen
    }

    /// Truncates the journal and bumps the generation (capacity retained).
    pub(crate) fn clear_journal(&mut self) {
        self.journal.clear();
        self.journal_gen += 1;
    }

    /// Number of live candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// `true` when no candidate is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Iterates the live candidates in arrival order, skipping tombstones a
    /// word at a time.
    #[inline]
    pub fn iter(&self) -> QueueIter<'_> {
        QueueIter {
            entries: &self.entries,
            words: &self.live,
            wi: 0,
            cur: self.live.first().copied().unwrap_or(0),
        }
    }

    /// The earliest-arrived live candidate, if any.
    #[inline]
    pub fn first(&self) -> Option<&ReadyTask> {
        self.iter().next()
    }

    /// Visits the live candidates at the given arrival-order *ranks* (0 =
    /// earliest live candidate), calling `emit(i, task)` for `ranks[i]`.
    ///
    /// `ranks` must be strictly increasing and every rank must be `<`
    /// [`len`](Self::len). A single pass over the liveness bitmap skips
    /// whole words by popcount, so a batch of `p` lookups costs
    /// O(live/64 + p) instead of `p` independent O(live) scans — this is
    /// what lets sampling policies (KGreedy's random picks) touch only
    /// their chosen candidates rather than snapshotting the queue.
    pub fn select_ranks(&self, ranks: &[u32], mut emit: impl FnMut(usize, &ReadyTask)) {
        let mut ri = 0usize;
        let mut passed = 0u32;
        for (wi, &w) in self.live.iter().enumerate() {
            if ri >= ranks.len() {
                break;
            }
            let pc = w.count_ones();
            if passed + pc <= ranks[ri] {
                passed += pc;
                continue;
            }
            let mut bits = w;
            let mut rank = passed;
            while bits != 0 && ri < ranks.len() {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if rank == ranks[ri] {
                    emit(ri, &self.entries[(wi << 6) | b]);
                    ri += 1;
                }
                rank += 1;
            }
            passed += pc;
        }
        debug_assert_eq!(ri, ranks.len(), "a requested rank exceeds the live count");
    }

    /// Clears `buf` and fills it with the live candidates in arrival order.
    ///
    /// Policies that need random access to the queue (index-based selection)
    /// snapshot it through this once per epoch instead of paying a tombstone
    /// skip per access.
    pub fn collect_into(&self, buf: &mut Vec<ReadyTask>) {
        buf.clear();
        buf.extend(self.iter().copied());
    }

    /// Empties the queue in place, retaining allocated capacity (the
    /// workspace-reuse path).
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.live.clear();
        self.live_count = 0;
        self.clear_journal();
    }

    /// Appends a candidate, returning its slot for the position map.
    pub(crate) fn push(&mut self, rt: ReadyTask) -> usize {
        let slot = self.entries.len();
        self.entries.push(rt);
        if slot >> 6 >= self.live.len() {
            self.live.push(0);
        }
        self.live[slot >> 6] |= 1u64 << (slot & 63);
        self.live_count += 1;
        self.journal.push(QueueEvent::Pushed(rt));
        slot
    }

    /// Tombstones `slot` and returns its candidate. O(1); storage is
    /// reclaimed later by [`compact`](Self::compact).
    pub(crate) fn remove_slot(&mut self, slot: usize) -> ReadyTask {
        debug_assert!(self.is_live(slot), "slot {slot} already tombstoned");
        self.live[slot >> 6] &= !(1u64 << (slot & 63));
        self.live_count -= 1;
        self.journal
            .push(QueueEvent::Removed(self.entries[slot].id));
        self.entries[slot]
    }

    /// Subtracts `dt` from the remaining work of the (live) candidate at
    /// `slot`, journaling the update; returns the new remaining work.
    pub(crate) fn progress_slot(&mut self, slot: usize, dt: Work) -> Work {
        debug_assert!(self.is_live(slot), "slot {slot} is tombstoned");
        let rt = &mut self.entries[slot];
        assert!(
            rt.remaining >= dt,
            "task {} overran its remaining work",
            rt.id
        );
        rt.remaining -= dt;
        let remaining = rt.remaining;
        self.journal.push(QueueEvent::Updated {
            id: rt.id,
            remaining,
        });
        remaining
    }

    /// Number of tombstoned slots awaiting compaction.
    #[inline]
    pub(crate) fn dead(&self) -> usize {
        self.entries.len() - self.live_count
    }

    /// `true` once enough tombstones accumulated to amortize a compaction.
    #[inline]
    pub(crate) fn needs_compaction(&self) -> bool {
        self.dead() >= self.live_count.max(MIN_COMPACT_SLACK)
    }

    /// Drops all tombstones, preserving arrival order. Calls
    /// `on_move(task, new_slot)` for every surviving candidate so the owner
    /// can fix its position map.
    pub(crate) fn compact(&mut self, mut on_move: impl FnMut(TaskId, usize)) {
        let mut w = 0usize;
        for r in 0..self.entries.len() {
            if self.is_live(r) {
                self.entries[w] = self.entries[r];
                on_move(self.entries[w].id, w);
                w += 1;
            }
        }
        self.entries.truncate(w);
        self.live.truncate(w.div_ceil(64));
        self.live.fill(!0);
        if w & 63 != 0 {
            if let Some(last) = self.live.last_mut() {
                *last = (1u64 << (w & 63)) - 1;
            }
        }
    }

    /// Order-preserving removal with immediate storage reclamation — the
    /// pre-indexed behaviour, kept for the [`crate::reference`] engine (its
    /// state holds no position map, so shifted slots are harmless).
    pub(crate) fn scan_remove(&mut self, id: TaskId) -> Option<ReadyTask> {
        let at = (0..self.entries.len()).find(|&i| self.is_live(i) && self.entries[i].id == id)?;
        let rt = self.remove_slot(at);
        // Reclaim eagerly: the reference engine expects `Vec::remove`
        // semantics (no tombstones). Compaction is not journaled.
        self.compact(|_, _| {});
        Some(rt)
    }

    /// Linear-scan lookup (reference engine).
    pub(crate) fn scan_find(&self, id: TaskId) -> Option<&ReadyTask> {
        self.iter().find(|rt| rt.id == id)
    }

    /// Linear-scan progress (reference engine): subtracts `dt` from `id`'s
    /// remaining work, journaling the update; returns the new remaining
    /// work, or `None` when `id` is not queued.
    pub(crate) fn scan_progress(&mut self, id: TaskId, dt: Work) -> Option<Work> {
        let at = (0..self.entries.len()).find(|&i| self.is_live(i) && self.entries[i].id == id)?;
        Some(self.progress_slot(at, dt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::Work;

    fn rt(i: usize, seq: u64, rem: Work) -> ReadyTask {
        ReadyTask {
            id: TaskId::from_index(i),
            seq,
            remaining: rem,
        }
    }

    #[test]
    fn iteration_skips_tombstones_in_arrival_order() {
        let mut q = ReadyQueue::from_tasks(vec![rt(0, 0, 1), rt(1, 1, 1), rt(2, 2, 1)]);
        let removed = q.remove_slot(1);
        assert_eq!(removed.id, TaskId::from_index(1));
        assert_eq!(q.len(), 2);
        let ids: Vec<usize> = q.iter().map(|r| r.id.index()).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(q.first().unwrap().id.index(), 0);
    }

    #[test]
    fn iteration_crosses_bitmap_word_boundaries() {
        // 130 entries spans three bitmap words; tombstone a prefix band and
        // both word boundaries to exercise the word-skipping iterator.
        let n = 130;
        let mut q = ReadyQueue::from_tasks((0..n).map(|i| rt(i, i as u64, 1)).collect());
        for i in (0..64).chain([64, 127, 128]) {
            q.remove_slot(i);
        }
        let ids: Vec<usize> = q.iter().map(|r| r.id.index()).collect();
        let expect: Vec<usize> = (65..127).chain([129]).collect();
        assert_eq!(ids, expect);
        assert_eq!(q.len(), expect.len());
        assert_eq!(q.first().unwrap().id.index(), 65);
    }

    #[test]
    fn select_ranks_visits_exactly_the_requested_live_ranks() {
        let n = 200;
        let mut q = ReadyQueue::from_tasks((0..n).map(|i| rt(i, i as u64, 1)).collect());
        // Tombstone every third slot so live ranks diverge from slots.
        for i in (0..n).step_by(3) {
            q.remove_slot(i);
        }
        let live: Vec<usize> = q.iter().map(|r| r.id.index()).collect();
        let ranks: Vec<u32> = vec![0, 1, 7, 63, 64, live.len() as u32 - 1];
        let mut got = vec![usize::MAX; ranks.len()];
        q.select_ranks(&ranks, |i, rt| got[i] = rt.id.index());
        let expect: Vec<usize> = ranks.iter().map(|&r| live[r as usize]).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn compaction_preserves_order_and_reports_new_slots() {
        let mut q = ReadyQueue::from_tasks((0..6).map(|i| rt(i, i as u64, 1)).collect());
        q.remove_slot(0);
        q.remove_slot(2);
        q.remove_slot(4);
        let mut moves = Vec::new();
        q.compact(|id, slot| moves.push((id.index(), slot)));
        assert_eq!(moves, vec![(1, 0), (3, 1), (5, 2)]);
        assert_eq!(q.dead(), 0);
        let ids: Vec<usize> = q.iter().map(|r| r.id.index()).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn compaction_threshold_requires_minimum_slack() {
        let mut q = ReadyQueue::from_tasks((0..4).map(|i| rt(i, i as u64, 1)).collect());
        q.remove_slot(0);
        q.remove_slot(1);
        q.remove_slot(2);
        // 3 dead, 1 live: under MIN_COMPACT_SLACK, no compaction yet.
        assert!(!q.needs_compaction());
    }

    #[test]
    fn scan_remove_matches_vec_remove_semantics() {
        let mut q = ReadyQueue::from_tasks(vec![rt(0, 0, 1), rt(1, 1, 2), rt(2, 2, 3)]);
        assert!(q.scan_remove(TaskId::from_index(9)).is_none());
        let got = q.scan_remove(TaskId::from_index(1)).unwrap();
        assert_eq!(got.remaining, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.dead(), 0, "scan removal reclaims eagerly; no tombstones");
        assert_eq!(q.scan_find(TaskId::from_index(2)).unwrap().remaining, 3);
        assert_eq!(q.scan_progress(TaskId::from_index(2), 1), Some(2));
        assert_eq!(q.scan_find(TaskId::from_index(2)).unwrap().remaining, 2);
        assert_eq!(q.scan_progress(TaskId::from_index(9), 1), None);
    }

    #[test]
    fn journal_records_membership_and_progress_in_order() {
        let mut q = ReadyQueue::new();
        assert_eq!(q.journal_gen(), 0);
        let s0 = q.push(rt(0, 0, 4));
        q.push(rt(1, 1, 2));
        q.progress_slot(s0, 1);
        q.remove_slot(s0);
        q.scan_remove(TaskId::from_index(1));
        assert_eq!(
            q.journal(),
            &[
                QueueEvent::Pushed(rt(0, 0, 4)),
                QueueEvent::Pushed(rt(1, 1, 2)),
                QueueEvent::Updated {
                    id: TaskId::from_index(0),
                    remaining: 3
                },
                QueueEvent::Removed(TaskId::from_index(0)),
                QueueEvent::Removed(TaskId::from_index(1)),
            ]
        );
        q.clear_journal();
        assert!(q.journal().is_empty());
        assert_eq!(q.journal_gen(), 1);
        // Compaction moves slots but not membership: nothing journaled.
        q.compact(|_, _| {});
        assert!(q.journal().is_empty());
        // Full clears bump the generation so stale cursors can't alias.
        q.clear();
        assert_eq!(q.journal_gen(), 2);
    }

    #[test]
    fn collect_into_reuses_buffer() {
        let mut q = ReadyQueue::from_tasks(vec![rt(0, 0, 1), rt(1, 1, 1)]);
        q.remove_slot(0);
        let mut buf = vec![rt(9, 9, 9)];
        q.collect_into(&mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].id.index(), 1);
    }
}
