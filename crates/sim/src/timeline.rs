//! Utilization timelines: per-type busy-processor profiles extracted from
//! execution traces — the quantity MQB is designed to keep balanced.

use kdag::KDag;

use crate::config::MachineConfig;
use crate::trace::Trace;
use crate::Time;

/// Per-type busy-processor counts over time.
#[derive(Clone, Debug, PartialEq)]
pub struct Timeline {
    makespan: Time,
    /// `busy[α][t]` = busy type-`α` processors during `[t, t+1)`.
    busy: Vec<Vec<u32>>,
}

impl Timeline {
    /// Builds the timeline of `trace` (O(segments + K·makespan)).
    pub fn of(trace: &Trace, job: &KDag, config: &MachineConfig) -> Self {
        let makespan = trace.makespan();
        let k = config.num_types();
        let mut busy = vec![vec![0u32; makespan as usize]; k];
        for s in trace.segments() {
            debug_assert_eq!(job.rtype(s.task), s.rtype);
            for t in s.start..s.end {
                busy[s.rtype][t as usize] += 1;
            }
        }
        Timeline { makespan, busy }
    }

    /// The trace's makespan.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// Busy type-`alpha` processors during `[t, t+1)`.
    pub fn busy_at(&self, alpha: usize, t: Time) -> u32 {
        self.busy[alpha][t as usize]
    }

    /// Instantaneous utilization of type `alpha` at time `t`.
    pub fn utilization_at(&self, alpha: usize, t: Time, config: &MachineConfig) -> f64 {
        self.busy_at(alpha, t) as f64 / config.procs(alpha) as f64
    }

    /// Fraction of time steps at which *every* type had at least one busy
    /// processor — a scalar measure of the interleaving quality the paper
    /// pursues (1.0 = perfectly interleaved, 0.0 = fully serialized by
    /// type). Returns 1.0 for an empty timeline.
    pub fn interleaving_index(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        let all_busy = (0..self.makespan as usize)
            .filter(|&t| self.busy.iter().all(|row| row[t] > 0))
            .count();
        all_busy as f64 / self.makespan as f64
    }

    /// One text sparkline per type (`.`, `▁▂▃▄▅▆▇█` by utilization level),
    /// bucketed to at most `max_width` columns.
    pub fn sparklines(&self, config: &MachineConfig, max_width: usize) -> String {
        const LEVELS: [char; 9] = ['.', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let mut out = String::new();
        let width = (self.makespan as usize).clamp(1, max_width.max(1));
        let scale = (self.makespan as usize).div_ceil(width).max(1);
        for (alpha, row) in self.busy.iter().enumerate() {
            out.push_str(&format!("type{alpha} |"));
            for bucket in row.chunks(scale) {
                let avg = bucket.iter().copied().sum::<u32>() as f64 / bucket.len() as f64;
                let u = avg / config.procs(alpha) as f64;
                let idx = ((u * 8.0).round() as usize).min(8);
                out.push(LEVELS[idx]);
            }
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, Mode, RunOptions};
    use crate::policy::FifoPolicy;
    use kdag::KDagBuilder;

    fn traced(job: &KDag, cfg: &MachineConfig) -> Trace {
        run(
            job,
            cfg,
            &mut FifoPolicy,
            Mode::NonPreemptive,
            &RunOptions::default().with_trace(),
        )
        .trace
        .expect("requested")
    }

    fn chain_job() -> (KDag, MachineConfig) {
        let mut b = KDagBuilder::new(2);
        let a = b.add_task(0, 2);
        let c = b.add_task(1, 3);
        b.add_edge(a, c).unwrap();
        (b.build().unwrap(), MachineConfig::uniform(2, 1))
    }

    #[test]
    fn busy_counts_match_the_schedule() {
        let (job, cfg) = chain_job();
        let tl = Timeline::of(&traced(&job, &cfg), &job, &cfg);
        assert_eq!(tl.makespan(), 5);
        // type 0 busy in [0,2), type 1 busy in [2,5)
        assert_eq!(tl.busy_at(0, 0), 1);
        assert_eq!(tl.busy_at(0, 2), 0);
        assert_eq!(tl.busy_at(1, 1), 0);
        assert_eq!(tl.busy_at(1, 4), 1);
        assert_eq!(tl.utilization_at(0, 0, &cfg), 1.0);
    }

    #[test]
    fn chain_has_zero_interleaving() {
        let (job, cfg) = chain_job();
        let tl = Timeline::of(&traced(&job, &cfg), &job, &cfg);
        // the two types never overlap on a chain
        assert_eq!(tl.interleaving_index(), 0.0);
    }

    #[test]
    fn parallel_types_have_full_interleaving() {
        let mut b = KDagBuilder::new(2);
        b.add_task(0, 4);
        b.add_task(1, 4);
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(2, 1);
        let tl = Timeline::of(&traced(&job, &cfg), &job, &cfg);
        assert_eq!(tl.interleaving_index(), 1.0);
    }

    #[test]
    fn sparklines_render_one_row_per_type() {
        let (job, cfg) = chain_job();
        let tl = Timeline::of(&traced(&job, &cfg), &job, &cfg);
        let text = tl.sparklines(&cfg, 40);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("type0 |"));
        assert!(text.contains('█'));
        assert!(text.contains('.'));
    }

    #[test]
    fn sparklines_respect_width_cap() {
        let (job, cfg) = chain_job();
        let tl = Timeline::of(&traced(&job, &cfg), &job, &cfg);
        let text = tl.sparklines(&cfg, 3);
        for line in text.lines() {
            let body: String = line.chars().skip_while(|&c| c != '|').collect();
            assert!(body.chars().count() <= 3 + 2, "row too wide: {line}");
        }
    }
}
