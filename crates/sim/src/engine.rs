//! The simulation engines: non-preemptive, preemptive (epoch-skipping),
//! and the literal per-quantum reference engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kdag::{KDag, TaskId, Work};

use crate::config::MachineConfig;
use crate::policy::{Assignments, EpochView, Policy};
use crate::state::JobState;
use crate::trace::{Segment, Trace};
use crate::Time;

/// Scheduling mode (paper §IV, last paragraph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// A task, once placed, runs to completion on its processor.
    NonPreemptive,
    /// The allocation is re-decided every quantum; tasks can be paused and
    /// migrated within their type's pool. Reallocation overhead is ignored,
    /// as in the paper.
    Preemptive,
}

/// Knobs for one engine run.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Record a full execution [`Trace`] (slower; off by default).
    pub record_trace: bool,
    /// Seed forwarded to [`Policy::init`] for stochastic policies.
    pub seed: u64,
    /// Preemptive re-decision cadence. `None` (default) re-decides at
    /// task-completion events only — exactly equivalent to per-quantum
    /// re-decisions for policies whose choices do not depend on remaining
    /// work (FIFO/KGreedy, DType, MaxDP, ShiftBT; property-tested), and a
    /// coarser cadence for those that do (LSpan, MQB). `Some(q)`
    /// re-decides at least every `q` time units — `Some(1)` is the
    /// paper's literal per-quantum scheduler. Ignored by the
    /// non-preemptive engine.
    pub quantum: Option<Work>,
}

impl RunOptions {
    /// Options with a seed and defaults otherwise.
    pub fn seeded(seed: u64) -> Self {
        RunOptions {
            seed,
            ..RunOptions::default()
        }
    }

    /// Enables trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Sets the preemptive re-decision quantum.
    pub fn with_quantum(mut self, q: Work) -> Self {
        assert!(q > 0, "quantum must be positive");
        self.quantum = Some(q);
        self
    }
}

/// Result of one engine run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Completion time `T(J)` of the job under the policy.
    pub makespan: Time,
    /// Number of decision epochs the policy was consulted at.
    pub epochs: u64,
    /// Per-type processor-busy time (for utilization accounting).
    pub busy_time: Vec<Time>,
    /// The execution trace, when [`RunOptions::record_trace`] was set.
    pub trace: Option<Trace>,
}

impl SimOutcome {
    /// Per-type utilization `busy_α / (P_α · makespan)`; all-1.0 for an
    /// empty job (degenerate but total).
    pub fn utilization(&self, config: &MachineConfig) -> Vec<f64> {
        (0..config.num_types())
            .map(|alpha| {
                if self.makespan == 0 {
                    1.0
                } else {
                    self.busy_time[alpha] as f64
                        / (config.procs(alpha) as f64 * self.makespan as f64)
                }
            })
            .collect()
    }
}

/// Runs `policy` on `job` over `config` in the given `mode`.
///
/// # Panics
/// * If `job.num_types() != config.num_types()`.
/// * If the policy makes an invalid selection (task not a candidate, wrong
///   type, over slot capacity, duplicate).
/// * If the policy deadlocks the system (assigns nothing while work
///   remains and processors are free).
pub fn run(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
) -> SimOutcome {
    assert_eq!(
        job.num_types(),
        config.num_types(),
        "job declared K={} but machine has K={}",
        job.num_types(),
        config.num_types()
    );
    policy.init(job, config, opts.seed);
    match mode {
        Mode::NonPreemptive => run_nonpreemptive(job, config, policy, opts),
        Mode::Preemptive => run_preemptive(job, config, policy, opts, opts.quantum),
    }
}

/// The literal per-quantum preemptive engine: the policy is consulted at
/// *every* unit time step, exactly as described in the paper. Slower by a
/// factor of the mean task work; kept as the reference implementation the
/// epoch-skipping engine is property-tested against.
pub fn run_per_step(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    opts: &RunOptions,
) -> SimOutcome {
    assert_eq!(job.num_types(), config.num_types());
    policy.init(job, config, opts.seed);
    run_preemptive(job, config, policy, opts, Some(1))
}

fn run_nonpreemptive(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    opts: &RunOptions,
) -> SimOutcome {
    let k = config.num_types();
    let mut state = JobState::new(job);
    let mut out = Assignments::default();
    let mut heap: BinaryHeap<Reverse<(Time, TaskId)>> = BinaryHeap::new();
    let mut busy = vec![0usize; k];
    let mut busy_time = vec![0u64; k];
    let mut epochs = 0u64;

    // Free-processor index stacks (stable proc ids for the trace).
    let mut free_procs: Vec<Vec<u32>> = (0..k)
        .map(|a| (0..config.procs(a) as u32).rev().collect())
        .collect();
    let mut proc_of: Vec<u32> = vec![0; job.num_tasks()];
    let mut segments: Vec<Segment> = Vec::new();

    let mut now: Time = 0;
    let mut slots = vec![0usize; k];

    if state.all_done(job) {
        return SimOutcome {
            makespan: 0,
            epochs: 0,
            busy_time,
            trace: opts.record_trace.then(|| Trace::new(Vec::new(), 0)),
        };
    }

    loop {
        // Decision epoch at `now`.
        let mut has_slot_and_work = false;
        for alpha in 0..k {
            slots[alpha] = config.procs(alpha) - busy[alpha];
            if slots[alpha] > 0 && !state.queues()[alpha].is_empty() {
                has_slot_and_work = true;
            }
        }
        if has_slot_and_work {
            epochs += 1;
            out.reset(k);
            let view = EpochView {
                time: now,
                job,
                config,
                queues: state.queues(),
                queue_work: state.queue_work(),
                slots: &slots,
                preemptive: false,
            };
            policy.assign(&view, &mut out);
            for alpha in 0..k {
                let chosen = out.chosen(alpha);
                assert!(
                    chosen.len() <= slots[alpha],
                    "policy over-assigned type {alpha}: {} > {} slots",
                    chosen.len(),
                    slots[alpha]
                );
                // Copy the slice out to end the borrow of `out`.
                for i in 0..chosen.len() {
                    let v = out.chosen(alpha)[i];
                    assert_eq!(
                        job.rtype(v),
                        alpha,
                        "policy put task {v} (type {}) on type-{alpha} processors",
                        job.rtype(v)
                    );
                    let rem = state.start(job, v); // panics if not ready / dup
                    busy[alpha] += 1;
                    busy_time[alpha] += rem;
                    let p = free_procs[alpha].pop().expect("slot accounting");
                    proc_of[v.index()] = p;
                    heap.push(Reverse((now + rem, v)));
                    if opts.record_trace {
                        segments.push(Segment {
                            task: v,
                            rtype: alpha,
                            proc: p,
                            start: now,
                            end: now + rem,
                        });
                    }
                }
            }
        }

        if heap.is_empty() {
            assert!(
                state.all_done(job),
                "deadlock: no running tasks but {} tasks incomplete",
                job.num_tasks() - state.done_count()
            );
            break;
        }

        // Advance to the next completion time; drain all events there.
        let Reverse((t, first)) = heap.pop().expect("checked non-empty");
        now = t;
        finish(
            job,
            config,
            &mut state,
            &mut busy,
            &mut free_procs,
            &proc_of,
            first,
        );
        while let Some(&Reverse((t2, _))) = heap.peek() {
            if t2 != now {
                break;
            }
            let Reverse((_, v)) = heap.pop().expect("peeked");
            finish(
                job,
                config,
                &mut state,
                &mut busy,
                &mut free_procs,
                &proc_of,
                v,
            );
        }

        if state.all_done(job) {
            break;
        }
    }

    SimOutcome {
        makespan: now,
        epochs,
        busy_time,
        trace: opts
            .record_trace
            .then(|| Trace::new(std::mem::take(&mut segments), now)),
    }
}

fn finish(
    job: &KDag,
    _config: &MachineConfig,
    state: &mut JobState,
    busy: &mut [usize],
    free_procs: &mut [Vec<u32>],
    proc_of: &[u32],
    v: TaskId,
) {
    let alpha = job.rtype(v);
    busy[alpha] -= 1;
    free_procs[alpha].push(proc_of[v.index()]);
    state.complete(job, v);
}

fn run_preemptive(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    opts: &RunOptions,
    quantum: Option<Work>,
) -> SimOutcome {
    let k = config.num_types();
    let mut state = JobState::new(job);
    let mut out = Assignments::default();
    let mut busy_time = vec![0u64; k];
    let mut epochs = 0u64;
    let mut now: Time = 0;
    let slots: Vec<usize> = (0..k).map(|a| config.procs(a)).collect();

    // Stable processor assignment for traces: remember each task's last
    // processor and prefer it while it remains chosen.
    let mut last_proc: Vec<Option<u32>> = vec![None; job.num_tasks()];
    let mut segments: Vec<Segment> = Vec::new();

    // Duplicate detection stamps, one slot per task.
    let mut stamp = vec![0u64; job.num_tasks()];
    let mut epoch_id = 0u64;

    while !state.all_done(job) {
        epoch_id += 1;
        epochs += 1;
        out.reset(k);
        let view = EpochView {
            time: now,
            job,
            config,
            queues: state.queues(),
            queue_work: state.queue_work(),
            slots: &slots,
            preemptive: true,
        };
        policy.assign(&view, &mut out);

        // Validate and find the time to the next completion among chosen.
        let mut min_rem: Option<Work> = None;
        let mut total_chosen = 0usize;
        for (alpha, &slot_count) in slots.iter().enumerate() {
            let chosen = out.chosen(alpha);
            assert!(
                chosen.len() <= slot_count,
                "policy over-assigned type {alpha}"
            );
            for &v in chosen {
                assert_eq!(job.rtype(v), alpha, "type mismatch for task {v}");
                assert_ne!(stamp[v.index()], epoch_id, "task {v} chosen twice");
                stamp[v.index()] = epoch_id;
                let rem = state
                    .remaining(job, v)
                    .unwrap_or_else(|| panic!("task {v} is not a candidate"));
                assert!(rem > 0, "task {v} already finished");
                min_rem = Some(min_rem.map_or(rem, |m| m.min(rem)));
                total_chosen += 1;
            }
        }
        assert!(
            total_chosen > 0,
            "deadlock: policy assigned nothing with {} tasks incomplete",
            job.num_tasks() - state.done_count()
        );

        let dt = match quantum {
            Some(q) => q.min(min_rem.expect("chosen non-empty")),
            None => min_rem.expect("chosen non-empty"),
        };

        // Record trace segments with stable-ish processor ids.
        if opts.record_trace {
            for alpha in 0..k {
                let mut used = vec![false; config.procs(alpha)];
                // First pass: keep previous processors where possible.
                let chosen: Vec<TaskId> = out.chosen(alpha).to_vec();
                let mut needs: Vec<TaskId> = Vec::new();
                for &v in &chosen {
                    match last_proc[v.index()] {
                        Some(p) if !used[p as usize] => used[p as usize] = true,
                        _ => needs.push(v),
                    }
                }
                let mut next_free = 0usize;
                for v in needs {
                    while used[next_free] {
                        next_free += 1;
                    }
                    used[next_free] = true;
                    last_proc[v.index()] = Some(next_free as u32);
                }
                for &v in &chosen {
                    segments.push(Segment {
                        task: v,
                        rtype: alpha,
                        proc: last_proc[v.index()].expect("assigned above"),
                        start: now,
                        end: now + dt,
                    });
                }
            }
        }

        // Advance: progress every chosen task by dt, completing the ones
        // that hit zero (which releases children at time now + dt).
        now += dt;
        for (alpha, bt) in busy_time.iter_mut().enumerate() {
            *bt += out.chosen(alpha).len() as u64 * dt;
            for i in 0..out.chosen(alpha).len() {
                let v = out.chosen(alpha)[i];
                if state.progress(job, v, dt) == 0 {
                    state.complete(job, v);
                    last_proc[v.index()] = None;
                }
            }
        }
    }

    if opts.record_trace {
        crate::trace::coalesce(&mut segments);
    }
    SimOutcome {
        makespan: now,
        epochs,
        busy_time,
        trace: opts
            .record_trace
            .then(|| Trace::new(std::mem::take(&mut segments), now)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FifoPolicy;
    use kdag::KDagBuilder;

    fn opts_trace() -> RunOptions {
        RunOptions {
            record_trace: true,
            seed: 0,
            quantum: None,
        }
    }

    fn chain_job() -> KDag {
        // 2-type chain: (0,w2) -> (1,w3) -> (0,w1)
        let mut b = KDagBuilder::new(2);
        let a = b.add_task(0, 2);
        let m = b.add_task(1, 3);
        let z = b.add_task(0, 1);
        b.add_edge(a, m).unwrap();
        b.add_edge(m, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn chain_runs_serially_regardless_of_processors() {
        let job = chain_job();
        for p in 1..4 {
            let cfg = MachineConfig::uniform(2, p);
            let out = run(
                &job,
                &cfg,
                &mut FifoPolicy,
                Mode::NonPreemptive,
                &RunOptions::default(),
            );
            assert_eq!(out.makespan, 6);
        }
    }

    #[test]
    fn independent_tasks_fill_processors() {
        // 6 unit tasks of type 0 on 2 processors -> makespan 3.
        let mut b = KDagBuilder::new(1);
        for _ in 0..6 {
            b.add_task(0, 1);
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 2);
        let out = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
        assert_eq!(out.makespan, 3);
        assert_eq!(out.busy_time, vec![6]);
        assert_eq!(out.utilization(&cfg), vec![1.0]);
    }

    #[test]
    fn empty_job_completes_instantly() {
        let job = KDagBuilder::new(2).build().unwrap();
        let cfg = MachineConfig::uniform(2, 1);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let out = run(&job, &cfg, &mut FifoPolicy, mode, &RunOptions::default());
            assert_eq!(out.makespan, 0);
            assert_eq!(out.epochs, 0);
        }
    }

    #[test]
    fn preemptive_matches_nonpreemptive_on_chain() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 1);
        let np = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
        let pe = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::Preemptive,
            &RunOptions::default(),
        );
        assert_eq!(np.makespan, pe.makespan);
    }

    #[test]
    fn per_step_engine_agrees_with_epoch_engine() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 1);
        let fast = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::Preemptive,
            &RunOptions::default(),
        );
        let slow = run_per_step(&job, &cfg, &mut FifoPolicy, &RunOptions::default());
        assert_eq!(fast.makespan, slow.makespan);
        assert_eq!(fast.busy_time, slow.busy_time);
        // the per-step engine pays one epoch per time unit
        assert!(slow.epochs >= fast.epochs);
    }

    #[test]
    fn traces_are_recorded_and_valid() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 2);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let out = run(&job, &cfg, &mut FifoPolicy, mode, &opts_trace());
            let trace = out.trace.expect("trace requested");
            crate::trace::validate(&trace, &job, &cfg).unwrap();
            assert_eq!(trace.makespan(), out.makespan);
        }
    }

    #[test]
    fn makespan_never_beats_lower_bound() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 1);
        let lb = kdag::metrics::lower_bound(&job, cfg.procs_per_type());
        let out = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
        assert!(out.makespan >= lb);
    }

    #[test]
    #[should_panic(expected = "job declared K=2 but machine has K=1")]
    fn mismatched_k_panics() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(1, 1);
        run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
    }

    /// A hostile policy that assigns a wrong-type task.
    struct WrongType;
    impl crate::policy::Policy for WrongType {
        fn name(&self) -> &str {
            "WrongType"
        }
        fn init(&mut self, _: &KDag, _: &MachineConfig, _: u64) {}
        fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
            // put a type-0 candidate on type-1 processors
            if let Some(rt) = view.queues[0].first() {
                out.push(1, rt.id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn engine_rejects_wrong_type_assignment() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 1);
        run(
            &job,
            &cfg,
            &mut WrongType,
            Mode::Preemptive,
            &RunOptions::default(),
        );
    }

    /// A policy that refuses to schedule anything.
    struct Lazy;
    impl crate::policy::Policy for Lazy {
        fn name(&self) -> &str {
            "Lazy"
        }
        fn init(&mut self, _: &KDag, _: &MachineConfig, _: u64) {}
        fn assign(&mut self, _: &EpochView<'_>, _: &mut Assignments) {}
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn engine_detects_deadlock_nonpreemptive() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 1);
        run(
            &job,
            &cfg,
            &mut Lazy,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn engine_detects_deadlock_preemptive() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 1);
        run(
            &job,
            &cfg,
            &mut Lazy,
            Mode::Preemptive,
            &RunOptions::default(),
        );
    }

    /// Duplicate selection of the same task in one epoch.
    struct Duper;
    impl crate::policy::Policy for Duper {
        fn name(&self) -> &str {
            "Duper"
        }
        fn init(&mut self, _: &KDag, _: &MachineConfig, _: u64) {}
        fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
            if let Some(rt) = view.queues[0].first() {
                out.push(0, rt.id);
                out.push(0, rt.id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "chosen twice")]
    fn engine_rejects_duplicates_preemptive() {
        // Need ≥ 2 slots so the over-assignment check doesn't fire first.
        let mut b = KDagBuilder::new(1);
        b.add_task(0, 5);
        b.add_task(0, 5);
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 2);
        run(
            &job,
            &cfg,
            &mut Duper,
            Mode::Preemptive,
            &RunOptions::default(),
        );
    }

    #[test]
    fn busy_time_equals_total_work_when_all_complete() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 3);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let out = run(&job, &cfg, &mut FifoPolicy, mode, &RunOptions::default());
            assert_eq!(out.busy_time.iter().sum::<u64>(), job.total_work());
        }
    }
}
