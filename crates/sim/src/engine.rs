//! The simulation engine: one unified epoch/event loop serving both the
//! non-preemptive and preemptive modes.
//!
//! Every iteration runs the same three shared phases — compute per-type
//! slots, consult the policy on an [`EpochView`](crate::policy::EpochView), validate its selection
//! (slot capacity, task type, duplicate stamps) — and then branches on the
//! mode only for dispatch and clock advance:
//!
//! * **Non-preemptive**: started tasks occupy a processor until done; the
//!   clock jumps to the next completion event (a min-heap of end times) and
//!   all same-time completions drain before the next epoch.
//! * **Preemptive**: the whole allocation is re-decided each epoch; the
//!   clock advances by the smallest chosen remaining work (or the quantum,
//!   if one is set) and every chosen task progresses by that amount.
//!
//! State transitions go through the indexed [`JobState`](crate::state::JobState) (O(1) amortized
//! per operation); the pre-indexed linear-scan implementation survives as
//! [`crate::reference`] and the two are property-tested to produce
//! bit-identical schedules. Each run also collects a
//! [`RunStats`] (epochs, assign wall time,
//! transition counts, peak queue depth), surfaced on [`SimOutcome::stats`].

use std::sync::Arc;
use std::time::Instant;

use kdag::precompute::Artifacts;
use kdag::{KDag, Work};

use crate::config::MachineConfig;
use crate::instrument::RunStats;
use crate::policy::Policy;
use crate::session::{self, DriveCtx, InterJobPolicy, SessionJob};
use crate::trace::Trace;
use crate::workspace::Workspace;
use crate::Time;

/// Scheduling mode (paper §IV, last paragraph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// A task, once placed, runs to completion on its processor.
    NonPreemptive,
    /// The allocation is re-decided every quantum; tasks can be paused and
    /// migrated within their type's pool. Reallocation overhead is ignored,
    /// as in the paper.
    Preemptive,
}

/// Knobs for one engine run.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Record a full execution [`Trace`] (slower; off by default).
    pub record_trace: bool,
    /// Seed forwarded to [`Policy::init`] for stochastic policies.
    pub seed: u64,
    /// Preemptive re-decision cadence. `None` (default) re-decides at
    /// task-completion events only — exactly equivalent to per-quantum
    /// re-decisions for policies whose choices do not depend on remaining
    /// work (FIFO/KGreedy, DType, MaxDP, ShiftBT; property-tested), and a
    /// coarser cadence for those that do (LSpan, MQB). `Some(q)`
    /// re-decides at least every `q` time units — `Some(1)` is the
    /// paper's literal per-quantum scheduler. Ignored by the
    /// non-preemptive engine.
    pub quantum: Option<Work>,
    /// Observability channels to record (utilization timelines, latency
    /// histograms, event trace). Everything off by default; recording is
    /// observe-only (bit-identical schedules, property-tested) and
    /// allocation-free in the warm epoch loop. The payload is returned on
    /// [`SimOutcome::obs`].
    pub observe: fhs_obs::ObsConfig,
}

impl RunOptions {
    /// Options with a seed and defaults otherwise.
    pub fn seeded(seed: u64) -> Self {
        RunOptions {
            seed,
            ..RunOptions::default()
        }
    }

    /// Enables trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Sets the preemptive re-decision quantum.
    pub fn with_quantum(mut self, q: Work) -> Self {
        assert!(q > 0, "quantum must be positive");
        self.quantum = Some(q);
        self
    }

    /// Enables the given observability channels for the run.
    pub fn with_observe(mut self, cfg: fhs_obs::ObsConfig) -> Self {
        self.observe = cfg;
        self
    }
}

/// Result of one engine run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Completion time `T(J)` of the job under the policy.
    pub makespan: Time,
    /// Number of decision epochs the policy was consulted at.
    pub epochs: u64,
    /// Per-type processor-busy time (for utilization accounting).
    pub busy_time: Vec<Time>,
    /// The execution trace, when [`RunOptions::record_trace`] was set.
    pub trace: Option<Trace>,
    /// Per-run instrumentation counters (always collected).
    pub stats: RunStats,
    /// Observability payload (utilization report, histograms, events),
    /// when any [`RunOptions::observe`] channel was enabled.
    pub obs: Option<Box<fhs_obs::RunObs>>,
}

impl SimOutcome {
    /// Per-type utilization `busy_α / (P_α · makespan)`; all-1.0 for an
    /// empty job (degenerate but total).
    pub fn utilization(&self, config: &MachineConfig) -> Vec<f64> {
        (0..config.num_types())
            .map(|alpha| {
                if self.makespan == 0 {
                    1.0
                } else {
                    self.busy_time[alpha] as f64
                        / (config.procs(alpha) as f64 * self.makespan as f64)
                }
            })
            .collect()
    }
}

/// Runs `policy` on `job` over `config` in the given `mode`.
///
/// # Panics
/// * If `job.num_types() != config.num_types()`.
/// * If the policy makes an invalid selection (task not a candidate, wrong
///   type, over slot capacity, duplicate).
/// * If the policy deadlocks the system (assigns nothing while work
///   remains and processors are free).
pub fn run(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
) -> SimOutcome {
    run_in(&mut Workspace::new(), job, config, policy, mode, opts)
}

/// As [`run`], but executes inside a caller-owned [`Workspace`]: every
/// buffer the engine needs is `clear()`-and-reused instead of reallocated,
/// so steady-state runs on a warm workspace allocate ~nothing in the epoch
/// loop. The outcome is **bit-for-bit** the outcome of a cold [`run`] with
/// the same arguments, regardless of what ran on the workspace before
/// (property-tested across differently-shaped instances).
///
/// [`crate::policy::Policy::reset_in`] is invoked on `policy` before its
/// `init`, letting the policy clear or re-home per-run scratch.
///
/// # Panics
/// Same conditions as [`run`].
pub fn run_in(
    ws: &mut Workspace,
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
) -> SimOutcome {
    assert_eq!(
        job.num_types(),
        config.num_types(),
        "job declared K={} but machine has K={}",
        job.num_types(),
        config.num_types()
    );
    let wall = Instant::now();
    policy.reset_in(ws);
    policy.init(job, config, opts.seed);
    let mut out = run_engine(ws, job, config, policy, mode, opts, opts.quantum);
    out.stats.engine_nanos = wall.elapsed().as_nanos() as u64;
    out
}

/// As [`run`], but initializes the policy through
/// [`Policy::init_with_artifacts`] with a shared precompute bundle for
/// `job`. With correct `init_with_artifacts` implementations (bit-identical
/// state to a cold `init`) the outcome is bit-for-bit the same as [`run`];
/// the win is that `artifacts` can be computed once per sampled instance
/// and shared across every `(algorithm, mode)` cell of a sweep.
///
/// # Panics
/// Same conditions as [`run`].
pub fn run_with_artifacts(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
    artifacts: &Arc<Artifacts>,
) -> SimOutcome {
    run_in_with_artifacts(
        &mut Workspace::new(),
        job,
        config,
        policy,
        mode,
        opts,
        artifacts,
    )
}

/// [`run_with_artifacts`] inside a caller-owned [`Workspace`] — the
/// steady-state sweep path, combining shared per-instance analyses with
/// zero-allocation engine reuse. Bit-for-bit equal to [`run`].
///
/// # Panics
/// Same conditions as [`run`].
#[allow(clippy::too_many_arguments)]
pub fn run_in_with_artifacts(
    ws: &mut Workspace,
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
    artifacts: &Arc<Artifacts>,
) -> SimOutcome {
    assert_eq!(
        job.num_types(),
        config.num_types(),
        "job declared K={} but machine has K={}",
        job.num_types(),
        config.num_types()
    );
    let wall = Instant::now();
    policy.reset_in(ws);
    policy.init_with_artifacts(job, config, opts.seed, artifacts);
    let mut out = run_engine(ws, job, config, policy, mode, opts, opts.quantum);
    out.stats.engine_nanos = wall.elapsed().as_nanos() as u64;
    out
}

/// The literal per-quantum preemptive scheduler: the policy is consulted at
/// *every* unit time step, exactly as described in the paper. Slower by a
/// factor of the mean task work; equivalent to
/// [`run`] with [`RunOptions::with_quantum`]`(1)`.
pub fn run_per_step(
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    opts: &RunOptions,
) -> SimOutcome {
    assert_eq!(job.num_types(), config.num_types());
    let wall = Instant::now();
    policy.init(job, config, opts.seed);
    let mut out = run_engine(
        &mut Workspace::new(),
        job,
        config,
        policy,
        Mode::Preemptive,
        opts,
        Some(1),
    );
    out.stats.engine_nanos = wall.elapsed().as_nanos() as u64;
    out
}

/// The single-job engine entry: arms the workspace and recorder, then runs
/// a **one-job session** — the unified epoch/event loop lives in
/// [`session::drive`] and is shared verbatim with the multi-job
/// [`crate::session::Session`]. The single job rides in the workspace's
/// embedded [`JobRt`](crate::workspace::JobRt) under heap slot 0 (so event
/// ordering is exactly the historical `(time, task)` key) with no stop
/// horizon, which keeps this path bit-identical to the pre-session engine
/// (pinned by the goldens and the workspace/session equivalence proptests)
/// and allocation-free on a warm workspace (the session job array is on
/// the stack).
fn run_engine(
    ws: &mut Workspace,
    job: &KDag,
    config: &MachineConfig,
    policy: &mut dyn Policy,
    mode: Mode,
    opts: &RunOptions,
    quantum: Option<Work>,
) -> SimOutcome {
    let preemptive = mode == Mode::Preemptive;
    let reused = ws.begin_run(job, config, preemptive);
    let mut stats = RunStats::default();
    if reused {
        stats.workspace_reuses = 1;
    } else {
        stats.workspace_cold_inits = 1;
    }
    // Arm the recorder before the allocation probe below: all observability
    // storage is sized here (and retained across runs), so the metered
    // epoch loop records without allocating. With observe off this is a
    // no-op and every recorder call in the loop is an early return.
    ws.obs
        .begin_run(opts.observe, config.procs_per_type(), reused);
    if ws.obs.events_on() {
        if reused {
            ws.obs.workspace_reuse(ws.runs());
        }
        // `policy.reset_in`/`init` already ran in the caller; record the
        // init instant retroactively at t = 0.
        ws.obs.policy_init(false);
        // `begin_run` released the roots (in id order) before the recorder
        // was armed; emit their Release events here.
        for v in job.roots() {
            ws.obs.release(0, 0, v.index() as u32, job.rtype(v));
        }
    }
    let mut last_epoch_t: Option<Instant> = None;
    let mut now: Time = 0;
    // With a counting allocator registered, meter the whole loop below —
    // in steady state (warm workspace + warm policy) the delta is ~0.
    let alloc_at_entry = crate::instrument::alloc_probe();

    {
        let done = ws.rt.state.all_done(job);
        let mut jobs = [SessionJob {
            job,
            rt: &mut ws.rt,
            policy,
            slot: 0,
            done,
        }];
        let mut cx = DriveCtx {
            mach: &mut ws.mach,
            obs: &mut ws.obs,
            config,
            preemptive,
            quantum,
            record_trace: opts.record_trace,
            inter: InterJobPolicy::Fifo,
            now: &mut now,
            stats: &mut stats,
            last_epoch_t: &mut last_epoch_t,
            telemetry: None,
        };
        session::drive(&mut cx, &mut jobs, None);
    }

    if let Some(at_entry) = alloc_at_entry {
        stats.epoch_bytes = crate::instrument::alloc_probe()
            .unwrap_or(at_entry)
            .saturating_sub(at_entry);
    }

    // --- shared outcome assembly (past the probe: extraction may clone). ---
    ws.obs.run_end(now, ws.mach.epoch);
    let obs = ws.obs.take_run(now);
    if preemptive && opts.record_trace {
        crate::trace::coalesce(&mut ws.mach.segments);
    }
    stats.transitions = ws.rt.state.transition_counts();
    if let Some(sel) = policy.take_selection_stats() {
        stats.selection = sel;
    }
    SimOutcome {
        makespan: now,
        epochs: stats.epochs,
        busy_time: ws.mach.busy_time.clone(),
        trace: opts
            .record_trace
            .then(|| Trace::new(std::mem::take(&mut ws.mach.segments), now)),
        stats,
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Assignments, EpochView, FifoPolicy};
    use kdag::KDagBuilder;

    fn opts_trace() -> RunOptions {
        RunOptions::default().with_trace()
    }

    fn chain_job() -> KDag {
        // 2-type chain: (0,w2) -> (1,w3) -> (0,w1)
        let mut b = KDagBuilder::new(2);
        let a = b.add_task(0, 2);
        let m = b.add_task(1, 3);
        let z = b.add_task(0, 1);
        b.add_edge(a, m).unwrap();
        b.add_edge(m, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn chain_runs_serially_regardless_of_processors() {
        let job = chain_job();
        for p in 1..4 {
            let cfg = MachineConfig::uniform(2, p);
            let out = run(
                &job,
                &cfg,
                &mut FifoPolicy,
                Mode::NonPreemptive,
                &RunOptions::default(),
            );
            assert_eq!(out.makespan, 6);
        }
    }

    #[test]
    fn independent_tasks_fill_processors() {
        // 6 unit tasks of type 0 on 2 processors -> makespan 3.
        let mut b = KDagBuilder::new(1);
        for _ in 0..6 {
            b.add_task(0, 1);
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 2);
        let out = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
        assert_eq!(out.makespan, 3);
        assert_eq!(out.busy_time, vec![6]);
        assert_eq!(out.utilization(&cfg), vec![1.0]);
    }

    #[test]
    fn empty_job_completes_instantly() {
        let job = KDagBuilder::new(2).build().unwrap();
        let cfg = MachineConfig::uniform(2, 1);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let out = run(&job, &cfg, &mut FifoPolicy, mode, &RunOptions::default());
            assert_eq!(out.makespan, 0);
            assert_eq!(out.epochs, 0);
        }
    }

    #[test]
    fn preemptive_matches_nonpreemptive_on_chain() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 1);
        let np = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
        let pe = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::Preemptive,
            &RunOptions::default(),
        );
        assert_eq!(np.makespan, pe.makespan);
    }

    #[test]
    fn per_step_engine_agrees_with_epoch_engine() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 1);
        let fast = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::Preemptive,
            &RunOptions::default(),
        );
        let slow = run_per_step(&job, &cfg, &mut FifoPolicy, &RunOptions::default());
        assert_eq!(fast.makespan, slow.makespan);
        assert_eq!(fast.busy_time, slow.busy_time);
        // the per-step engine pays one epoch per time unit
        assert!(slow.epochs >= fast.epochs);
    }

    #[test]
    fn traces_are_recorded_and_valid() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 2);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let out = run(&job, &cfg, &mut FifoPolicy, mode, &opts_trace());
            let trace = out.trace.expect("trace requested");
            crate::trace::validate(&trace, &job, &cfg).unwrap();
            assert_eq!(trace.makespan(), out.makespan);
        }
    }

    #[test]
    fn makespan_never_beats_lower_bound() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 1);
        let lb = kdag::metrics::lower_bound(&job, cfg.procs_per_type());
        let out = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
        assert!(out.makespan >= lb);
    }

    #[test]
    fn run_stats_count_transitions_and_epochs() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 1);
        let np = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
        assert_eq!(np.stats.epochs, np.epochs);
        assert_eq!(np.stats.transitions.releases, 3);
        assert_eq!(np.stats.transitions.starts, 3);
        assert_eq!(np.stats.transitions.completions, 3);
        assert_eq!(np.stats.transitions.progress_updates, 0);
        assert_eq!(np.stats.tasks_assigned, 3);
        assert_eq!(np.stats.transitions.peak_queue_depth, 1);

        let pe = run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::Preemptive,
            &RunOptions::default(),
        );
        assert_eq!(pe.stats.transitions.starts, 0);
        assert_eq!(pe.stats.transitions.completions, 3);
        // one progress update per chosen task per epoch; the chain is
        // serial, so every epoch progresses exactly one task
        assert_eq!(
            pe.stats.transitions.progress_updates,
            pe.stats.tasks_assigned
        );
        assert!(pe.stats.engine_nanos > 0);
    }

    #[test]
    #[should_panic(expected = "job declared K=2 but machine has K=1")]
    fn mismatched_k_panics() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(1, 1);
        run(
            &job,
            &cfg,
            &mut FifoPolicy,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
    }

    /// A hostile policy that assigns a wrong-type task.
    struct WrongType;
    impl crate::policy::Policy for WrongType {
        fn name(&self) -> &str {
            "WrongType"
        }
        fn init(&mut self, _: &KDag, _: &MachineConfig, _: u64) {}
        fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
            // put a type-0 candidate on type-1 processors
            if let Some(rt) = view.queues[0].first() {
                out.push(1, rt.id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn engine_rejects_wrong_type_assignment() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 1);
        run(
            &job,
            &cfg,
            &mut WrongType,
            Mode::Preemptive,
            &RunOptions::default(),
        );
    }

    /// A policy that refuses to schedule anything.
    struct Lazy;
    impl crate::policy::Policy for Lazy {
        fn name(&self) -> &str {
            "Lazy"
        }
        fn init(&mut self, _: &KDag, _: &MachineConfig, _: u64) {}
        fn assign(&mut self, _: &EpochView<'_>, _: &mut Assignments) {}
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn engine_detects_deadlock_nonpreemptive() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 1);
        run(
            &job,
            &cfg,
            &mut Lazy,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn engine_detects_deadlock_preemptive() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 1);
        run(
            &job,
            &cfg,
            &mut Lazy,
            Mode::Preemptive,
            &RunOptions::default(),
        );
    }

    /// Duplicate selection of the same task in one epoch.
    struct Duper;
    impl crate::policy::Policy for Duper {
        fn name(&self) -> &str {
            "Duper"
        }
        fn init(&mut self, _: &KDag, _: &MachineConfig, _: u64) {}
        fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
            if let Some(rt) = view.queues[0].first() {
                out.push(0, rt.id);
                out.push(0, rt.id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "chosen twice")]
    fn engine_rejects_duplicates_preemptive() {
        // Need ≥ 2 slots so the over-assignment check doesn't fire first.
        let mut b = KDagBuilder::new(1);
        b.add_task(0, 5);
        b.add_task(0, 5);
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 2);
        run(
            &job,
            &cfg,
            &mut Duper,
            Mode::Preemptive,
            &RunOptions::default(),
        );
    }

    #[test]
    #[should_panic(expected = "chosen twice")]
    fn engine_rejects_duplicates_nonpreemptive() {
        // The shared epoch-stamp validation now catches duplicates in both
        // modes before any state transition.
        let mut b = KDagBuilder::new(1);
        b.add_task(0, 5);
        b.add_task(0, 5);
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 2);
        run(
            &job,
            &cfg,
            &mut Duper,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
    }

    #[test]
    fn reused_workspace_matches_cold_run_bitwise() {
        // One workspace hosts runs of different shapes, modes and sizes in
        // sequence; each must reproduce its cold run exactly. (The full
        // cross-product lives in the workspace_equivalence proptest.)
        let chain = chain_job();
        let wide = {
            let mut b = KDagBuilder::new(1);
            for w in [5, 1, 3, 2, 4, 1] {
                b.add_task(0, w);
            }
            b.build().unwrap()
        };
        let cfg2 = MachineConfig::uniform(2, 2);
        let cfg1 = MachineConfig::uniform(1, 2);
        let mut ws = Workspace::new();
        let runs: [(&KDag, &MachineConfig, Mode); 4] = [
            (&chain, &cfg2, Mode::NonPreemptive),
            (&wide, &cfg1, Mode::Preemptive),
            (&chain, &cfg2, Mode::Preemptive),
            (&wide, &cfg1, Mode::NonPreemptive),
        ];
        for (i, (job, cfg, mode)) in runs.into_iter().enumerate() {
            let cold = run(job, cfg, &mut FifoPolicy, mode, &opts_trace());
            let warm = run_in(&mut ws, job, cfg, &mut FifoPolicy, mode, &opts_trace());
            assert_eq!(warm.makespan, cold.makespan, "run {i}");
            assert_eq!(warm.busy_time, cold.busy_time, "run {i}");
            assert_eq!(warm.epochs, cold.epochs, "run {i}");
            assert_eq!(
                warm.trace.as_ref().unwrap().segments(),
                cold.trace.as_ref().unwrap().segments(),
                "run {i}"
            );
            if i == 0 {
                assert_eq!(warm.stats.workspace_cold_inits, 1);
                assert_eq!(warm.stats.workspace_reuses, 0);
            } else {
                assert_eq!(warm.stats.workspace_reuses, 1, "run {i}");
                assert_eq!(warm.stats.workspace_cold_inits, 0, "run {i}");
            }
            // Cold entry points always report a throwaway workspace.
            assert_eq!(cold.stats.workspace_cold_inits, 1);
        }
        assert_eq!(ws.runs(), 4);
    }

    #[test]
    fn observed_run_matches_unobserved_and_accounts_time() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 2);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let plain = run(&job, &cfg, &mut FifoPolicy, mode, &RunOptions::default());
            assert!(plain.obs.is_none());
            let opts = RunOptions::default().with_observe(fhs_obs::ObsConfig::all());
            let seen = run(&job, &cfg, &mut FifoPolicy, mode, &opts);
            assert_eq!(seen.makespan, plain.makespan, "{mode:?}");
            assert_eq!(seen.busy_time, plain.busy_time, "{mode:?}");
            assert_eq!(seen.epochs, plain.epochs, "{mode:?}");
            let obs = seen.obs.expect("observe requested");
            let util = obs.util.as_ref().expect("utilization on");
            assert_eq!(util.makespan, plain.makespan);
            for (alpha, t) in util.per_type.iter().enumerate() {
                // The timeline's busy integral is exactly the engine's own
                // busy-time accounting, in both modes.
                assert_eq!(t.busy, plain.busy_time[alpha], "{mode:?} type {alpha}");
                assert_eq!(
                    t.busy + t.idle_active + t.idle_tail,
                    t.procs as u64 * util.makespan,
                    "{mode:?} type {alpha}"
                );
            }
            // Events: one run_begin, one run_end, a release/complete per
            // task; starts only in the non-preemptive engine.
            use fhs_obs::EventKind;
            let count = |k: EventKind| obs.events.iter().filter(|e| e.kind == k).count() as u64;
            assert_eq!(obs.events_dropped, 0);
            assert_eq!(count(EventKind::RunBegin), 1);
            assert_eq!(count(EventKind::RunEnd), 1);
            assert_eq!(count(EventKind::Release), 3);
            assert_eq!(count(EventKind::Complete), 3);
            if mode == Mode::NonPreemptive {
                assert_eq!(count(EventKind::Start), 3);
            }
            assert_eq!(count(EventKind::Epoch), plain.epochs);
            // Timestamps are monotonic.
            assert!(obs.events.windows(2).all(|w| w[0].t <= w[1].t));
            // Latency histograms saw every epoch's assign + k depth samples.
            assert_eq!(obs.assign_ns.count, plain.epochs);
            assert_eq!(obs.queue_depth.count, plain.epochs * 2);
            assert_eq!(obs.epoch_ns.count, plain.epochs.saturating_sub(1));
        }
    }

    #[test]
    fn busy_time_equals_total_work_when_all_complete() {
        let job = chain_job();
        let cfg = MachineConfig::uniform(2, 3);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let out = run(&job, &cfg, &mut FifoPolicy, mode, &RunOptions::default());
            assert_eq!(out.busy_time.iter().sum::<u64>(), job.total_work());
        }
    }
}
