//! # fhs-sim — discrete-time simulator for functionally heterogeneous systems
//!
//! Reimplements (in Rust) the discrete-time simulator the paper built in C#
//! (§V-A): `K` typed processor pools execute the tasks of a
//! [`kdag::KDag`]; a task of type `α` may only run on one of the `P_α`
//! processors of type `α`, and becomes *ready* once all its parents have
//! completed.
//!
//! A single unified epoch/event loop ([`engine::run`]) serves both
//! execution modes:
//!
//! * **Non-preemptive** ([`Mode::NonPreemptive`]): tasks are placed when a
//!   processor is idle and run to completion; the clock jumps between
//!   completion events.
//! * **Preemptive** ([`Mode::Preemptive`]): conceptually the scheduler
//!   re-decides the full processor assignment at every unit quantum; a task
//!   may be paused and later resumed on a different processor. By default
//!   the engine re-decides at completion events and advances the clock in
//!   between — exactly equivalent to per-quantum re-decisions for policies
//!   whose choices don't depend on candidates' *remaining* work (FIFO,
//!   DType, MaxDP, ShiftBT; property-tested), and a coarser preemption
//!   cadence for those that do (LSpan, MQB). Pass
//!   [`RunOptions::with_quantum`]`(1)` (or use [`engine::run_per_step`])
//!   for the paper's literal per-quantum scheduler.
//!
//! The run state keeps its candidates in indexed, arrival-ordered
//! [`ready_queue::ReadyQueue`]s: a dense task→slot position map plus
//! tombstoned removal makes every state transition O(1) amortized while
//! policies still observe exact FIFO (seq) order. The pre-indexed
//! linear-scan engines survive unchanged in [`mod@reference`] as a
//! property-test oracle and benchmark baseline, and every run collects an
//! [`instrument::RunStats`] (epochs, policy wall time, transition counts,
//! peak queue depth) on [`SimOutcome`].
//!
//! Scheduling behaviour is supplied through the [`Policy`] trait; the six
//! algorithms of the paper live in the `fhs-core` crate. The engines
//! optionally record a full [`trace::Trace`] which can be validated against
//! the model's rules ([`trace::validate`]) and rendered as an ASCII Gantt
//! chart ([`gantt`]).
//!
//! Beyond one job at a time: the [`session`] module hosts the **session
//! engine** — a persistent [`Session`] that admits seeded jobs from a
//! continuous arrival stream, schedules them all on the shared machine
//! (with an [`InterJobPolicy`] ordering jobs within each epoch), and
//! retires them as they drain, recording per-job response time, queueing
//! delay and slowdown. [`engine::run`] itself executes as a one-job
//! session over the same loop, bit-identical to the historical
//! single-job engine.
//!
//! ```
//! use kdag::KDagBuilder;
//! use fhs_sim::{engine, MachineConfig, Mode, RunOptions};
//! use fhs_sim::policy::FifoPolicy;
//!
//! let mut b = KDagBuilder::new(2);
//! let u = b.add_task(0, 2);
//! let v = b.add_task(1, 3);
//! b.add_edge(u, v).unwrap();
//! let job = b.build().unwrap();
//!
//! let cfg = MachineConfig::uniform(2, 1); // one processor of each type
//! let mut policy = FifoPolicy::default();
//! let out = engine::run(&job, &cfg, &mut policy, Mode::NonPreemptive,
//!                       &RunOptions::default());
//! assert_eq!(out.makespan, 5); // the two tasks form a chain
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod config;

pub mod engine;
pub mod gantt;
pub mod instrument;
pub mod metrics;
pub mod policy;
pub mod ready_queue;
pub mod reference;
pub mod session;
pub mod state;
pub mod svg;
pub mod telemetry;
pub mod timeline;
pub mod trace;
pub mod workspace;

pub use config::MachineConfig;
pub use engine::{Mode, RunOptions, SimOutcome};
// The observability layer (utilization timelines, histograms, event
// trace) lives in the dependency-free `fhs-obs` crate; re-export the
// handles engine callers need.
pub use fhs_obs::{HistSnapshot, ObsConfig, RunObs, UtilSummary, UtilizationReport};
pub use instrument::{RunStats, SelectionStats, TransitionCounts};
pub use policy::{Assignments, EpochView, Policy, ReadyTask};
pub use ready_queue::{QueueEvent, ReadyQueue};
pub use session::{
    InterJobPolicy, JobId, Session, SessionOptions, SessionOutcome, ALL_INTER_JOB_POLICIES,
};
pub use telemetry::{TelemetrySink, TelemetryTick};
pub use workspace::Workspace;

/// Simulator clock value, in discrete time units.
pub type Time = u64;
