//! Temporary review repro: nested maps on a 1-helper pool.

use fhs_par::Pool;

#[test]
fn nested_maps_on_small_pool() {
    let p: &'static Pool = Box::leak(Box::new(Pool::with_helpers(1)));
    for round in 0..50 {
        let out = p.map((0..8u64).collect(), move |i| {
            p.map((0..8u64).collect(), move |j| i * 8 + j)
                .iter()
                .sum::<u64>()
                + round
        });
        assert_eq!(out.len(), 8);
    }
}
