//! # fhs-par — persistent worker pool + scoped parallel map
//!
//! The experiment harness evaluates thousands of independent `(job,
//! policy)` instances per table cell; this crate fans that work across
//! cores. Two executors are provided:
//!
//! * [`pool()`] — a lazily-initialized **persistent** worker pool shared by
//!   the whole process. The sweep runner and the figure binaries call
//!   [`Pool::map`] many times per run; worker threads are spawned once and
//!   reused, so steady-state fan-out pays no thread-spawn cost.
//! * [`parallel_map`] / [`parallel_map_with`] — the scoped fallback for
//!   borrowing closures (no `'static` bound), spawning per call.
//!
//! Work distribution is pull-based and **chunked** in both: items are split
//! into contiguous chunks (plus per-item singleton chunks for the
//! unbalanced tail), workers pop the next chunk from a shared queue, map it
//! into a chunk-owned output buffer, and the caller stitches buffers back
//! into input order by chunk offset. No per-item channel sends, and no
//! per-slot result mutexes: a result is written exactly once, into a buffer
//! its worker owns. Uneven per-item cost (MQB instances are much more
//! expensive than KGreedy ones) still balances because idle workers keep
//! pulling.
//!
//! ```
//! let squares = fhs_par::parallel_map(0..100u64, |i| i * i);
//! assert_eq!(squares[99], 99 * 99);
//! let cubes = fhs_par::pool().map((0..10u64).collect(), |i| i * i * i);
//! assert_eq!(cubes[9], 729);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Number of worker threads used by [`parallel_map`] and sized into the
/// global [`pool()`]: the machine's available parallelism, floor 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Chunking shared by both executors.
// ---------------------------------------------------------------------------

/// Splits `items` into contiguous `(start_offset, chunk)` pieces for a team
/// of `team` workers: head chunks of roughly a quarter of a fair share
/// each, then one singleton chunk per item for the last `2 × team` items so
/// an expensive straggler can't serialize the tail. The layout depends only
/// on `(len, team)` — never on execution order — so stitched results are
/// deterministic.
fn make_chunks<T>(mut items: Vec<T>, team: usize) -> VecDeque<(usize, Vec<T>)> {
    let n = items.len();
    let team = team.max(1);
    let tail_len = n.min(team * 2);
    let head_len = n - tail_len;
    let chunk = (head_len / (team * 4)).max(1);
    let mut bounds: Vec<usize> = Vec::new();
    let mut s = 0usize;
    while s < head_len {
        bounds.push(s);
        s += chunk.min(head_len - s);
    }
    while s < n {
        bounds.push(s);
        s += 1;
    }
    let mut out = VecDeque::with_capacity(bounds.len());
    for &b in bounds.iter().rev() {
        let piece = items.split_off(b);
        out.push_front((b, piece));
    }
    out
}

fn pop_chunk<T>(chunks: &Mutex<VecDeque<(usize, Vec<T>)>>) -> Option<(usize, Vec<T>)> {
    chunks
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pop_front()
}

/// Reassembles chunk-owned output buffers into input order.
fn stitch<U>(n: usize, mut parts: Vec<(usize, Vec<U>)>) -> Vec<U> {
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, part) in parts {
        out.extend(part);
    }
    debug_assert_eq!(out.len(), n);
    out
}

// ---------------------------------------------------------------------------
// The persistent pool.
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent team of helper threads plus the calling thread.
///
/// The process-wide instance is obtained through [`pool()`]; explicit pools
/// (mainly for tests) come from [`Pool::with_helpers`]. The calling thread
/// always participates in [`Pool::map`], so a pool with zero helpers — the
/// single-core case — degenerates to a plain sequential map with no
/// synchronization at all, and re-entrant `map` calls from inside a job
/// cannot deadlock.
pub struct Pool {
    helpers: usize,
    /// Job injector; `None` when the pool has no helper threads.
    inject: Option<crossbeam::channel::Sender<Job>>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The process-wide persistent pool, spawned on first use with
/// [`default_workers`]`- 1` helper threads (the caller is the last team
/// member). All sweep/figure fan-out goes through this handle, so a full
/// experiment campaign spawns its threads exactly once.
pub fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool::with_helpers(default_workers().saturating_sub(1)))
}

impl Pool {
    /// Spawns a pool with exactly `helpers` persistent helper threads.
    /// Dropping the pool closes the injector and the helpers exit.
    pub fn with_helpers(helpers: usize) -> Pool {
        if helpers == 0 {
            return Pool {
                helpers,
                inject: None,
            };
        }
        let (tx, rx) = crossbeam::channel::bounded::<Job>(helpers * 2);
        for i in 0..helpers {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("fhs-pool-{i}"))
                .spawn(move || {
                    for job in rx.iter() {
                        // A panicking job must not kill the worker: the
                        // panic payload is forwarded to the caller through
                        // the job's own result channel; here we only keep
                        // the thread alive.
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                })
                .expect("spawn pool worker");
        }
        Pool {
            helpers,
            inject: Some(tx),
        }
    }

    /// Team size: helper threads plus the calling thread.
    pub fn workers(&self) -> usize {
        self.helpers + 1
    }

    /// Applies `f` to every item using the whole team, preserving input
    /// order. Panics in `f` propagate to the caller.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        self.map_with(self.workers(), items, f)
    }

    /// As [`Pool::map`] with the team capped at `max_workers` (caller
    /// included). A cap of 1 runs inline and sequentially.
    pub fn map_with<T, U, F>(&self, max_workers: usize, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let team = max_workers.max(1).min(self.workers()).min(n);
        let Some(inject) = (team > 1).then_some(self.inject.as_ref()).flatten() else {
            return items.into_iter().map(f).collect();
        };

        struct CallState<T, U, F> {
            chunks: Mutex<VecDeque<(usize, Vec<T>)>>,
            results: crossbeam::channel::Sender<(usize, std::thread::Result<Vec<U>>)>,
            f: F,
        }

        let chunks = make_chunks(items, team);
        let total_chunks = chunks.len();
        // Capacity for every chunk result: helper sends can never block, so
        // an unwinding caller cannot strand a helper mid-send.
        let (res_tx, res_rx) = crossbeam::channel::bounded(total_chunks);
        let state = Arc::new(CallState {
            chunks: Mutex::new(chunks),
            results: res_tx,
            f,
        });

        let helper_jobs = (team - 1).min(total_chunks);
        for _ in 0..helper_jobs {
            let st = Arc::clone(&state);
            let job: Job = Box::new(move || {
                while let Some((start, chunk)) = pop_chunk(&st.chunks) {
                    let mapped = catch_unwind(AssertUnwindSafe(|| {
                        chunk.into_iter().map(|t| (st.f)(t)).collect::<Vec<U>>()
                    }));
                    if st.results.send((start, mapped)).is_err() {
                        break; // caller is gone (unwound); stop early
                    }
                }
            });
            // Enqueueing a helper job is only an *offer* of parallelism —
            // the caller pops every chunk itself if nobody helps — so a
            // full injector (every helper saturated, possibly parked in
            // this very call stack when maps nest) must skip the offer,
            // never block: a blocking send here can deadlock two team
            // members against each other.
            if inject.try_send(job).is_err() {
                break;
            }
        }

        // The caller pulls chunks too: every chunk is popped exactly once,
        // and each helper-popped chunk produces exactly one result message.
        let mut parts: Vec<(usize, Vec<U>)> = Vec::with_capacity(total_chunks);
        let mut outstanding = total_chunks;
        while let Some((start, chunk)) = pop_chunk(&state.chunks) {
            outstanding -= 1;
            parts.push((start, chunk.into_iter().map(|t| (state.f)(t)).collect()));
        }
        for _ in 0..outstanding {
            let (start, mapped) = res_rx.recv().expect("helper result");
            match mapped {
                Ok(part) => parts.push((start, part)),
                Err(payload) => resume_unwind(payload),
            }
        }
        stitch(n, parts)
    }

    /// Maps every item to an accumulator value and folds them all into one,
    /// without materializing the per-item results: each worker folds the
    /// chunks it processes into chunk-local accumulators, and the caller
    /// merges those in **input order** (by chunk offset).
    ///
    /// `A::default()` must be an identity for `merge` and `merge` must be
    /// associative; then the result is exactly the sequential left fold of
    /// `f(item)` in input order, independent of team size and scheduling.
    /// (Commutativity is *not* required.) Panics in `f`/`merge` propagate.
    ///
    /// This is the cross-worker reduction path for mergeable metrics —
    /// `RunStats` totals and histogram snapshots — where a sweep wants one
    /// aggregate per cell, not a `Vec` of per-instance payloads.
    pub fn map_fold<T, A, F, M>(&self, items: Vec<T>, f: F, merge: M) -> A
    where
        T: Send + 'static,
        A: Default + Send + 'static,
        F: Fn(T) -> A + Send + Sync + 'static,
        M: Fn(&mut A, A) + Send + Sync + 'static,
    {
        self.map_fold_with(self.workers(), items, f, merge)
    }

    /// As [`Pool::map_fold`] with the team capped at `max_workers` (caller
    /// included). A cap of 1 folds inline and sequentially; the result is
    /// the same for every cap.
    pub fn map_fold_with<T, A, F, M>(&self, max_workers: usize, items: Vec<T>, f: F, merge: M) -> A
    where
        T: Send + 'static,
        A: Default + Send + 'static,
        F: Fn(T) -> A + Send + Sync + 'static,
        M: Fn(&mut A, A) + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return A::default();
        }
        let team = max_workers.max(1).min(self.workers()).min(n);
        let Some(inject) = (team > 1).then_some(self.inject.as_ref()).flatten() else {
            let mut acc = A::default();
            for t in items {
                merge(&mut acc, f(t));
            }
            return acc;
        };

        struct FoldState<T, A, F, M> {
            chunks: Mutex<VecDeque<(usize, Vec<T>)>>,
            results: crossbeam::channel::Sender<(usize, std::thread::Result<A>)>,
            f: F,
            merge: M,
        }

        let chunks = make_chunks(items, team);
        let total_chunks = chunks.len();
        let (res_tx, res_rx) = crossbeam::channel::bounded(total_chunks);
        let state = Arc::new(FoldState {
            chunks: Mutex::new(chunks),
            results: res_tx,
            f,
            merge,
        });

        let helper_jobs = (team - 1).min(total_chunks);
        for _ in 0..helper_jobs {
            let st = Arc::clone(&state);
            let job: Job = Box::new(move || {
                while let Some((start, chunk)) = pop_chunk(&st.chunks) {
                    let folded = catch_unwind(AssertUnwindSafe(|| {
                        let mut acc = A::default();
                        for t in chunk {
                            (st.merge)(&mut acc, (st.f)(t));
                        }
                        acc
                    }));
                    if st.results.send((start, folded)).is_err() {
                        break; // caller is gone (unwound); stop early
                    }
                }
            });
            // Offer, never block — see the matching comment in `map_with`.
            if inject.try_send(job).is_err() {
                break;
            }
        }

        let mut parts: Vec<(usize, A)> = Vec::with_capacity(total_chunks);
        let mut outstanding = total_chunks;
        while let Some((start, chunk)) = pop_chunk(&state.chunks) {
            outstanding -= 1;
            let mut acc = A::default();
            for t in chunk {
                (state.merge)(&mut acc, (state.f)(t));
            }
            parts.push((start, acc));
        }
        for _ in 0..outstanding {
            let (start, folded) = res_rx.recv().expect("helper result");
            match folded {
                Ok(a) => parts.push((start, a)),
                Err(payload) => resume_unwind(payload),
            }
        }
        // Merge chunk accumulators in input order: associativity alone
        // makes the result equal to the sequential fold.
        parts.sort_unstable_by_key(|&(start, _)| start);
        let mut acc = A::default();
        for (_, a) in parts {
            (state.merge)(&mut acc, a);
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// The scoped (borrowing) fallback.
// ---------------------------------------------------------------------------

/// Applies `f` to every item of `items` using up to [`default_workers`]
/// scoped threads, preserving input order in the output.
///
/// `f` runs on worker threads, so it must be `Sync` (shared by reference)
/// and item/result types must cross threads. Panics in `f` propagate.
/// Unlike [`Pool::map`] this spawns per call but accepts borrowing
/// closures; steady-state callers should prefer the [`pool()`].
pub fn parallel_map<I, T, U, F>(items: I, f: F) -> Vec<U>
where
    I: IntoIterator<Item = T>,
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    parallel_map_with(default_workers(), items, f)
}

/// [`parallel_map`] with an explicit worker count (1 runs inline, which is
/// also the degenerate path used by tests for determinism checks).
pub fn parallel_map_with<I, T, U, F>(workers: usize, items: I, f: F) -> Vec<U>
where
    I: IntoIterator<Item = T>,
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    // Single-worker runs stream the input straight through `f` — no
    // up-front collect, so lazy/expensive iterators are consumed one item
    // at a time exactly as a plain sequential map would.
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let items: Vec<T> = items.into_iter().collect();
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }

    // Pull-based chunked distribution: each scoped worker pops chunks and
    // maps them into buffers it owns; results are stitched by offset. No
    // per-slot locks and no per-item sends.
    let chunks = Mutex::new(make_chunks(items, workers));
    let chunks = &chunks;
    let f = &f;
    let parts: Vec<(usize, Vec<U>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut got: Vec<(usize, Vec<U>)> = Vec::new();
                    while let Some((start, chunk)) = pop_chunk(chunks) {
                        got.push((start, chunk.into_iter().map(f).collect()));
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    });
    stitch(n, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let out = parallel_map_with(4, 0..1000usize, |i| i * 2);
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_runs_inline() {
        let out = parallel_map_with(1, 0..10u32, |i| i + 1);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn single_worker_streams_without_collecting_first() {
        // With one worker, each item must be mapped as soon as it is
        // produced (lazy pipeline) rather than after an up-front collect of
        // the whole input. The producing iterator counts what it has
        // yielded; the mapper observes that count — under the streaming
        // path exactly one item is ever in flight.
        let produced = AtomicUsize::new(0);
        let items = (0..32usize).inspect(|_| {
            produced.fetch_add(1, Ordering::Relaxed);
        });
        let out = parallel_map_with(1, items, |i| {
            let seen = produced.load(Ordering::Relaxed);
            assert_eq!(
                seen,
                i + 1,
                "item {i} mapped after {seen} were produced: input was collected up front"
            );
            i
        });
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn zero_workers_behaves_like_one() {
        let out = parallel_map_with(0, 0..10u32, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let ids = parallel_map_with(4, 0..64u32, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            std::thread::current().id()
        });
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work on more than one thread");
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map_with(8, 0..500usize, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn matches_sequential_result_bitwise() {
        let seq = parallel_map_with(1, 0..256u64, |i| i.wrapping_mul(0x9E3779B97F4A7C15));
        let par = parallel_map_with(7, 0..256u64, |i| i.wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(seq, par);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn chunks_cover_every_index_in_order_once() {
        for n in [0usize, 1, 2, 7, 8, 9, 63, 64, 100, 1000] {
            for team in [1usize, 2, 3, 8] {
                let chunks = make_chunks((0..n).collect(), team);
                let mut seen = Vec::new();
                for (start, part) in &chunks {
                    assert_eq!(part[0], *start, "chunk start offset mismatch");
                    seen.extend(part.iter().copied());
                }
                assert_eq!(seen, (0..n).collect::<Vec<_>>());
                // The tail must be singleton chunks for straggler balance.
                let tail = n.min(team * 2);
                assert!(chunks.iter().rev().take(tail).all(|(_, p)| p.len() == 1));
            }
        }
    }

    #[test]
    fn pool_map_preserves_order_and_reuses_threads() {
        let p = Pool::with_helpers(3);
        assert_eq!(p.workers(), 4);
        for round in 0..3u64 {
            let out = p.map((0..300u64).collect(), move |i| i * 7 + round);
            assert_eq!(out, (0..300).map(|i| i * 7 + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_map_runs_on_multiple_threads() {
        let p = Pool::with_helpers(3);
        let ids = p.map((0..64u32).collect(), |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            std::thread::current().id()
        });
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work on more than one thread");
    }

    #[test]
    fn pool_with_zero_helpers_runs_sequentially() {
        let p = Pool::with_helpers(0);
        assert_eq!(p.workers(), 1);
        let out = p.map((0..10u32).collect(), |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_map_with_cap_one_is_sequential_and_identical() {
        let p = Pool::with_helpers(2);
        let seq = p.map_with(1, (0..128u64).collect(), |i| i.wrapping_mul(3));
        let par = p.map_with(3, (0..128u64).collect(), |i| i.wrapping_mul(3));
        assert_eq!(seq, par);
    }

    #[test]
    fn pool_processes_every_item_exactly_once() {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        COUNTER.store(0, Ordering::Relaxed);
        let p = Pool::with_helpers(3);
        let out = p.map((0..500usize).collect(), |i| {
            COUNTER.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(COUNTER.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn map_fold_equals_sequential_fold() {
        let p = Pool::with_helpers(3);
        let sum = p.map_fold((0..1000u64).collect(), |i| i * i, |a, b| *a += b);
        assert_eq!(sum, (0..1000u64).map(|i| i * i).sum::<u64>());
    }

    #[test]
    fn map_fold_is_order_exact_for_associative_merges() {
        // String concatenation is associative but NOT commutative: the
        // offset-ordered merge must still reproduce the sequential fold.
        let expect: String = (0..200u32).map(|i| format!("{i},")).collect();
        for helpers in [0, 1, 3, 7] {
            let p = Pool::with_helpers(helpers);
            let got = p.map_fold(
                (0..200u32).collect(),
                |i| format!("{i},"),
                |a: &mut String, b| a.push_str(&b),
            );
            assert_eq!(got, expect, "helpers = {helpers}");
        }
    }

    #[test]
    fn map_fold_empty_returns_identity() {
        let p = Pool::with_helpers(2);
        let acc: u64 = p.map_fold(Vec::<u64>::new(), |i| i, |a, b| *a += b);
        assert_eq!(acc, 0);
    }

    #[test]
    fn map_fold_with_is_cap_independent() {
        let p = Pool::with_helpers(3);
        let expect: String = (0..120u32).map(|i| format!("{i};")).collect();
        for cap in [1, 2, 4, 99] {
            let got = p.map_fold_with(
                cap,
                (0..120u32).collect(),
                |i| format!("{i};"),
                |a: &mut String, b| a.push_str(&b),
            );
            assert_eq!(got, expect, "cap = {cap}");
        }
    }

    #[test]
    fn global_pool_is_usable_and_stable() {
        let a = pool() as *const Pool;
        let out = pool().map((0..50u64).collect(), |i| i + 1);
        assert_eq!(out[49], 50);
        let b = pool() as *const Pool;
        assert_eq!(a, b, "pool() must return the same persistent instance");
    }

    #[test]
    fn reentrant_pool_map_does_not_deadlock() {
        // A job that itself fans out through the pool: the caller always
        // participates in the chunk drain, so nested maps make progress
        // even when every helper is busy.
        let out = pool().map((0..4u64).collect(), |i| {
            pool()
                .map((0..8u64).collect(), move |j| i * 8 + j)
                .iter()
                .sum::<u64>()
        });
        let expect: Vec<u64> = (0..4).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expect);
    }
}

#[cfg(test)]
mod panic_tests {
    use super::*;

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = parallel_map_with(4, 0..16u32, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "pool boom")]
    fn pool_panics_propagate() {
        let p = Pool::with_helpers(3);
        let _ = p.map((0..64u32).collect(), |i| {
            if i == 33 {
                panic!("pool boom");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "fold boom")]
    fn map_fold_panics_propagate() {
        let p = Pool::with_helpers(3);
        let _ = p.map_fold(
            (0..64u32).collect(),
            |i| {
                if i == 40 {
                    panic!("fold boom");
                }
                u64::from(i)
            },
            |a, b| *a += b,
        );
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let p = Pool::with_helpers(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.map((0..32u32).collect(), |i| {
                if i == 5 {
                    panic!("transient");
                }
                i
            })
        }));
        assert!(r.is_err());
        // The helpers must still be alive and serving.
        let out = p.map((0..32u32).collect(), |i| i * 2);
        assert_eq!(out[31], 62);
    }
}
