//! # fhs-par — a minimal scoped parallel-map executor
//!
//! The experiment harness evaluates thousands of independent `(job,
//! policy)` instances per table cell; this crate fans that work across
//! cores with a self-balancing worker pool built from `std::thread::scope`
//! and a crossbeam channel (no global thread-pool dependency, per the
//! project's offline-crate constraint).
//!
//! Work distribution is pull-based: workers take the next index from a
//! shared channel, so uneven per-item cost (MQB instances are much more
//! expensive than KGreedy ones) balances automatically.
//!
//! ```
//! let squares = fhs_par::parallel_map(0..100u64, |i| i * i);
//! assert_eq!(squares[99], 99 * 99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;

/// Number of worker threads used by [`parallel_map`]: the machine's
/// available parallelism, floor 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` using up to [`default_workers`]
/// threads, preserving input order in the output.
///
/// `f` runs on worker threads, so it must be `Sync` (shared by reference)
/// and item/result types must cross threads. Panics in `f` propagate.
pub fn parallel_map<I, T, U, F>(items: I, f: F) -> Vec<U>
where
    I: IntoIterator<Item = T>,
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    parallel_map_with(default_workers(), items, f)
}

/// [`parallel_map`] with an explicit worker count (1 runs inline, which is
/// also the degenerate path used by tests for determinism checks).
pub fn parallel_map_with<I, T, U, F>(workers: usize, items: I, f: F) -> Vec<U>
where
    I: IntoIterator<Item = T>,
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    // Single-worker runs stream the input straight through `f` — no
    // up-front collect, so lazy/expensive iterators are consumed one item
    // at a time exactly as a plain sequential map would.
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let items: Vec<T> = items.into_iter().collect();
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }

    // Pull-based distribution: each worker receives (index, item) pairs
    // and writes its result into the pre-sized slot table.
    let (tx, rx) = crossbeam::channel::bounded::<(usize, T)>(workers * 2);
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let f = &f;
    let slots_ref = &slots;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            scope.spawn(move || {
                for (i, item) in rx.iter() {
                    *slots_ref[i].lock() = Some(f(item));
                }
            });
        }
        drop(rx);
        for pair in items.into_iter().enumerate() {
            tx.send(pair).expect("workers outlive the feed loop");
        }
        drop(tx);
    });

    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let out = parallel_map_with(4, 0..1000usize, |i| i * 2);
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_runs_inline() {
        let out = parallel_map_with(1, 0..10u32, |i| i + 1);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn single_worker_streams_without_collecting_first() {
        // With one worker, each item must be mapped as soon as it is
        // produced (lazy pipeline) rather than after an up-front collect of
        // the whole input. The producing iterator counts what it has
        // yielded; the mapper observes that count — under the streaming
        // path exactly one item is ever in flight.
        let produced = AtomicUsize::new(0);
        let items = (0..32usize).inspect(|_| {
            produced.fetch_add(1, Ordering::Relaxed);
        });
        let out = parallel_map_with(1, items, |i| {
            let seen = produced.load(Ordering::Relaxed);
            assert_eq!(
                seen,
                i + 1,
                "item {i} mapped after {seen} were produced: input was collected up front"
            );
            i
        });
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn zero_workers_behaves_like_one() {
        let out = parallel_map_with(0, 0..10u32, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let ids = parallel_map_with(4, 0..64u32, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            std::thread::current().id()
        });
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work on more than one thread");
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map_with(8, 0..500usize, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn matches_sequential_result_bitwise() {
        let seq = parallel_map_with(1, 0..256u64, |i| i.wrapping_mul(0x9E3779B97F4A7C15));
        let par = parallel_map_with(7, 0..256u64, |i| i.wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(seq, par);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}

#[cfg(test)]
mod panic_tests {
    use super::*;

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = parallel_map_with(4, 0..16u32, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }
}
