//! # fhs-theory — closed-form results from the paper's §III
//!
//! * [`bounds::lemma1_expected_steps`] — Lemma 1: drawing without
//!   replacement from `n` balls of which `r` are red, the expected number
//!   of draws to collect every red ball is `r(n+1)/(r+1)`.
//! * [`bounds::theorem2_lower_bound`] — Theorem 2: no randomized online
//!   K-DAG scheduler beats `K + 1 − Σ_α 1/(P_α+1) − 1/(P_max+1)`
//!   competitiveness.
//! * [`bounds::kgreedy_upper_bound`] — the `(K+1)`-competitive guarantee
//!   of the online greedy algorithm.
//! * [`montecarlo`] — simulation cross-checks of Lemma 1 and of the
//!   adversarial construction's expected drain times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod montecarlo;
