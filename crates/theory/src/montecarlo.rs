//! Monte-Carlo cross-checks of the closed forms.

use rand::seq::SliceRandom;
use rand::Rng;

/// Simulates Lemma 1's experiment once: draws from `n` balls (of which `r`
/// red) without replacement and returns the number of draws needed to
/// collect every red ball. Returns 0 when `r == 0`.
pub fn draws_to_collect_reds<R: Rng>(n: u64, r: u64, rng: &mut R) -> u64 {
    assert!(r <= n);
    if r == 0 {
        return 0;
    }
    // Permute positions; the answer is the maximum position of a red ball.
    let mut balls: Vec<bool> = (0..n).map(|i| i < r).collect();
    balls.shuffle(rng);
    (balls
        .iter()
        .rposition(|&red| red)
        .expect("at least one red ball")
        + 1) as u64
}

/// Averages [`draws_to_collect_reds`] over `trials` runs.
pub fn estimate_expected_draws<R: Rng>(n: u64, r: u64, trials: u32, rng: &mut R) -> f64 {
    let total: u64 = (0..trials).map(|_| draws_to_collect_reds(n, r, rng)).sum();
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::lemma1_expected_steps;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_draw_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(draws_to_collect_reds(5, 0, &mut rng), 0);
        assert_eq!(draws_to_collect_reds(5, 5, &mut rng), 5);
        let d = draws_to_collect_reds(10, 1, &mut rng);
        assert!((1..=10).contains(&d));
    }

    #[test]
    fn monte_carlo_confirms_lemma1() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(n, r) in &[(20u64, 3u64), (50, 5), (12, 12), (30, 1)] {
            let estimate = estimate_expected_draws(n, r, 20_000, &mut rng);
            let exact = lemma1_expected_steps(n, r);
            let rel = (estimate - exact).abs() / exact;
            assert!(
                rel < 0.02,
                "n={n} r={r}: estimate {estimate} vs exact {exact}"
            );
        }
    }
}
