//! Closed-form bounds (paper §III).

/// Lemma 1: with `n` balls of which `r` are red, drawn one at a time
/// uniformly without replacement, the expected number of draws needed to
/// collect **all** red balls is `r(n+1)/(r+1)`.
///
/// # Panics
/// If `r > n`.
pub fn lemma1_expected_steps(n: u64, r: u64) -> f64 {
    assert!(r <= n, "cannot have more red balls than balls");
    if r == 0 {
        return 0.0;
    }
    r as f64 * (n as f64 + 1.0) / (r as f64 + 1.0)
}

/// Theorem 2: the competitive ratio of any randomized online algorithm for
/// K-DAG scheduling is at least
///
/// `K + 1 − Σ_α 1/(P_α + 1) − 1/(P_max + 1)`.
///
/// (The paper's abstract quotes the deterministic variant with `1/P_max`;
/// the theorem proved in §III carries `1/(P_max + 1)`. We implement the
/// theorem.)
///
/// # Panics
/// If `procs` is empty or contains a zero.
pub fn theorem2_lower_bound(procs: &[usize]) -> f64 {
    assert!(!procs.is_empty(), "need at least one type");
    assert!(procs.iter().all(|&p| p > 0), "pools must be non-empty");
    let k = procs.len() as f64;
    let sum: f64 = procs.iter().map(|&p| 1.0 / (p as f64 + 1.0)).sum();
    let pmax = *procs.iter().max().expect("non-empty") as f64;
    k + 1.0 - sum - 1.0 / (pmax + 1.0)
}

/// The deterministic online lower bound `K + 1 − 1/P_max` from the earlier
/// He/Sun/Hsu result the paper §III cites.
pub fn deterministic_lower_bound(procs: &[usize]) -> f64 {
    assert!(!procs.is_empty() && procs.iter().all(|&p| p > 0));
    let k = procs.len() as f64;
    let pmax = *procs.iter().max().expect("non-empty") as f64;
    k + 1.0 - 1.0 / pmax
}

/// KGreedy's guarantee: `(K+1)`-competitive completion time (paper §III,
/// "Performance Upper Bound").
pub fn kgreedy_upper_bound(k: usize) -> f64 {
    k as f64 + 1.0
}

/// The expected completion time the Theorem-2 analysis ascribes to *any*
/// online algorithm on the adversarial family:
///
/// `E[T] ≥ (K + 1 − Σ_α 1/(P_α+1)) · m·P_K − m·P_K/(P_K+1) − 1`.
pub fn adversarial_online_expected_makespan(procs: &[usize], m: u64) -> f64 {
    let sum: f64 = procs.iter().map(|&p| 1.0 / (p as f64 + 1.0)).sum();
    let k = procs.len() as f64;
    let pk = *procs.last().expect("non-empty") as f64;
    (k + 1.0 - sum) * (m as f64) * pk - (m as f64) * pk / (pk + 1.0) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_edge_cases() {
        assert_eq!(lemma1_expected_steps(10, 0), 0.0);
        // all balls red: must draw them all -> n·(n+1)/(n+1) = n
        assert_eq!(lemma1_expected_steps(7, 7), 7.0);
        // one red among n: expected position (n+1)/2
        assert_eq!(lemma1_expected_steps(9, 1), 5.0);
    }

    #[test]
    fn lemma1_is_monotone_in_r() {
        let mut prev = 0.0;
        for r in 1..=20 {
            let v = lemma1_expected_steps(20, r);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "more red balls")]
    fn lemma1_rejects_r_gt_n() {
        lemma1_expected_steps(3, 4);
    }

    #[test]
    fn theorem2_approaches_k_plus_one() {
        let b = theorem2_lower_bound(&[10_000; 5]);
        assert!(b > 5.99 && b < 6.0);
    }

    #[test]
    fn theorem2_hand_computed_small_case() {
        // K=2, P=[1,1]: 3 − 1/2 − 1/2 − 1/2 = 1.5
        assert!((theorem2_lower_bound(&[1, 1]) - 1.5).abs() < 1e-12);
        // K=4, P=[2,2,2,2]: 5 − 4/3 − 1/3 = 10/3
        assert!((theorem2_lower_bound(&[2; 4]) - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bound_hierarchy_holds() {
        // randomized LB ≤ deterministic LB ≤ KGreedy guarantee
        for procs in [vec![1usize, 2], vec![3, 3, 3], vec![1, 5, 10, 10]] {
            let rand_lb = theorem2_lower_bound(&procs);
            let det_lb = deterministic_lower_bound(&procs);
            let ub = kgreedy_upper_bound(procs.len());
            assert!(rand_lb <= det_lb + 1e-12, "{procs:?}");
            assert!(det_lb <= ub, "{procs:?}");
        }
    }

    #[test]
    fn adversarial_expected_makespan_dominates_optimum_for_large_m() {
        let procs = vec![2usize, 2, 3];
        let m = 100;
        let t_star = (procs.len() as f64 - 1.0) + (m as f64) * 3.0;
        let online = adversarial_online_expected_makespan(&procs, m);
        // the ratio approaches the Theorem-2 bound from below
        let ratio = online / t_star;
        let bound = theorem2_lower_bound(&procs);
        assert!(ratio > bound - 0.1, "ratio {ratio} vs bound {bound}");
        assert!(ratio < bound + 0.1);
    }
}

/// Lemma 1's full distribution: `Pr[Q = q]` where `Q` is the number of
/// draws needed to collect all `r` red balls among `n`. From the paper's
/// proof: `Pr[Q = r+i] = C(r+i−1, i) / C(n, r)` — the last red ball is at
/// position `r+i` and the `i` black balls before it may sit anywhere among
/// the first `r+i−1` positions.
///
/// Returns 0 outside the support `r ≤ q ≤ n` (and for `r = 0` the
/// distribution is a point mass at 0).
pub fn lemma1_pmf(n: u64, r: u64, q: u64) -> f64 {
    assert!(r <= n, "cannot have more red balls than balls");
    if r == 0 {
        return if q == 0 { 1.0 } else { 0.0 };
    }
    if q < r || q > n {
        return 0.0;
    }
    let i = q - r;
    // C(r+i−1, i) / C(n, r) computed in log space for robustness.
    (ln_choose(r + i - 1, i) - ln_choose(n, r)).exp()
}

/// `ln C(n, k)` via `ln Γ` (Stirling-free exact accumulation; n stays
/// small in our uses).
fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n);
    let k = k.min(n - k);
    let mut acc = 0.0f64;
    for j in 0..k {
        acc += ((n - j) as f64).ln() - ((j + 1) as f64).ln();
    }
    acc
}

#[cfg(test)]
mod pmf_tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for &(n, r) in &[(10u64, 3u64), (20, 1), (7, 7), (15, 6)] {
            let total: f64 = (0..=n).map(|q| lemma1_pmf(n, r, q)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} r={r}: total {total}");
        }
    }

    #[test]
    fn pmf_expectation_matches_lemma1() {
        for &(n, r) in &[(10u64, 3u64), (25, 5), (12, 12), (30, 1)] {
            let e: f64 = (0..=n).map(|q| q as f64 * lemma1_pmf(n, r, q)).sum();
            let exact = lemma1_expected_steps(n, r);
            assert!((e - exact).abs() < 1e-8, "n={n} r={r}: {e} vs {exact}");
        }
    }

    #[test]
    fn pmf_support_is_r_to_n() {
        assert_eq!(lemma1_pmf(10, 3, 2), 0.0);
        assert_eq!(lemma1_pmf(10, 3, 11), 0.0);
        assert!(lemma1_pmf(10, 3, 3) > 0.0);
        assert!(lemma1_pmf(10, 3, 10) > 0.0);
        // all red: point mass at n
        assert_eq!(lemma1_pmf(5, 5, 5), 1.0);
        // no red: point mass at 0
        assert_eq!(lemma1_pmf(5, 0, 0), 1.0);
        assert_eq!(lemma1_pmf(5, 0, 1), 0.0);
    }

    #[test]
    fn pmf_minimum_case_probability() {
        // Pr[Q = r] = 1/C(n, r): all reds drawn first.
        let p = lemma1_pmf(6, 2, 2);
        assert!((p - 1.0 / 15.0).abs() < 1e-12);
    }
}
