//! DType — different-type-first (paper §IV-B).
//!
//! When a type-`α` processor frees up, run the ready `α`-task with the
//! smallest *different-child distance* — the shortest edge-count to any
//! descendant of another type. Such tasks are the nearest ancestors of
//! other types' work, so finishing them earliest feeds the other resource
//! pools and promotes interleaving. Tasks with no different-type
//! descendant sort last.

use std::sync::Arc;

use fhs_sim::{Assignments, EpochView, MachineConfig, Policy};
use kdag::precompute::Artifacts;
use kdag::{distance, KDag};

use crate::ranked::Selector;

/// Different-type-first policy. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct DType {
    dist: Vec<f64>, // distance, or +inf when no different-type descendant
    selector: Selector,
}

impl Policy for DType {
    fn name(&self) -> &str {
        "DType"
    }

    fn init(&mut self, job: &KDag, _config: &MachineConfig, _seed: u64) {
        self.dist.clear();
        self.dist.extend(
            distance::different_child_distances(job)
                .into_iter()
                .map(|d| d.map_or(f64::INFINITY, f64::from)),
        );
    }

    fn init_with_artifacts(
        &mut self,
        _job: &KDag,
        _config: &MachineConfig,
        _seed: u64,
        artifacts: &Arc<Artifacts>,
    ) {
        self.dist.clear();
        self.dist.extend(
            artifacts
                .different_child()
                .iter()
                .map(|d| d.map_or(f64::INFINITY, f64::from)),
        );
    }

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        let dist = &self.dist;
        self.selector
            .assign_by_key(view, out, |_, rt| dist[rt.id.index()])
    }

    // Keys are fixed per task at init and ties break on (seq, id): the
    // pick depends only on queue membership/order and the slot counts.
    fn assign_stable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhs_sim::{engine, MachineConfig, Mode, RunOptions};
    use kdag::KDagBuilder;

    #[test]
    fn unlocks_other_types_first() {
        // Ready type-0 tasks: `feeder` leads to a type-1 task in 1 hop,
        // `chain` leads only to more type-0 work. One type-0 processor.
        let mut b = KDagBuilder::new(2);
        let chain = b.add_task(0, 1);
        let chain2 = b.add_task(0, 1);
        b.add_edge(chain, chain2).unwrap();
        let feeder = b.add_task(0, 1);
        let gpu = b.add_task(1, 3);
        b.add_edge(feeder, gpu).unwrap();
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 1]);
        let out = engine::run(
            &job,
            &cfg,
            &mut DType::default(),
            Mode::NonPreemptive,
            &RunOptions::seeded(0).with_trace(),
        );
        let tr = out.trace.unwrap();
        let first_type0 = tr
            .segments()
            .iter()
            .filter(|s| s.rtype == 0)
            .min_by_key(|s| s.start)
            .unwrap();
        assert_eq!(
            first_type0.task, feeder,
            "DType must start the type-1 feeder first"
        );
        // feeder at 0, gpu 1..4 overlaps chain work 1..3: makespan 4.
        assert_eq!(out.makespan, 4);
    }

    #[test]
    fn infinite_distance_tasks_run_last_but_do_run() {
        let mut b = KDagBuilder::new(2);
        b.add_task(0, 1); // isolated, no different-type descendant
        let f = b.add_task(0, 1);
        let g = b.add_task(1, 1);
        b.add_edge(f, g).unwrap();
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 1]);
        let out = engine::run(
            &job,
            &cfg,
            &mut DType::default(),
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
        assert_eq!(out.busy_time, vec![2, 1]);
        // f runs at 0 (distance 1 beats ∞), then isolated and g overlap
        // in 1..2: makespan 2. FIFO would have run isolated first for the
        // same makespan here, but the decision order is what we pin down.
        assert_eq!(out.makespan, 2);
    }
}
