//! MQB — Multi-Queue Balancing, the paper's contribution (§IV-A).
//!
//! MQB keeps one ready queue per resource type and transforms makespan
//! minimization into **utilization balancing**: keep every type's queue
//! fed so no processor pool starves.
//!
//! Two concepts drive it:
//!
//! 1. **Balance.** For queue snapshot `A`, the *x-utilization* of the
//!    `α`-queue is `r_α(A) = l_α(A) / P_α` (total ready work over
//!    processor count). The snapshot's *balance* is the vector of
//!    x-utilizations sorted ascending; snapshot `A` is better-balanced
//!    than `B` iff its sorted vector is lexicographically larger — i.e.
//!    its most-starved queue is fuller, ties broken by the next-most
//!    starved, and so on.
//! 2. **Descendant values** `d_α(v)` ([`kdag::descendants`]): the
//!    projected type-`α` workload unlocked downstream of `v`.
//!
//! When more than `P_α` `α`-tasks are ready, MQB repeatedly picks the
//! candidate whose projected queue state — its own work leaving the
//! `α`-queue, its descendant values joining every queue — has the best
//! balance, until all processors are assigned. When at most `P_α` are
//! ready it runs them all (their projections still update the working
//! state seen while filling the remaining types).
//!
//! The §V-G *approximated information* variants are selected through
//! [`InfoModel`]: one-step vs full lookahead, and precise vs
//! exponentially-distributed vs noisy descendant estimates.

use std::sync::Arc;

use fhs_sim::{Assignments, EpochView, MachineConfig, Policy, ReadyTask};
use kdag::precompute::Artifacts;
use kdag::{descendants::DescendantValues, KDag, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How much of the K-DAG's future MQB may look at (paper §V-G).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Lookahead {
    /// Full-depth descendant values (`MQB+All`).
    #[default]
    All,
    /// Immediate children only (`MQB+1Step`):
    /// `d_α(v) = Σ_{u ∈ children(v)} w_α(u) / pr(u)`.
    OneStep,
}

/// How accurate MQB's descendant estimates are (paper §V-G).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Accuracy {
    /// Exact values (`MQB+Pre`).
    #[default]
    Precise,
    /// Each value replaced by an exponentially-distributed random value
    /// whose mean is the true value (`MQB+Exp`).
    Exponential,
    /// Each value replaced by `true × U[0.5, 1.5] + U[0, w̄]` where `w̄`
    /// is the job's mean task work (`MQB+Noise`).
    Noisy,
}

/// Combined information model: lookahead depth × estimate accuracy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct InfoModel {
    /// Lookahead depth.
    pub lookahead: Lookahead,
    /// Estimate accuracy.
    pub accuracy: Accuracy,
}

impl InfoModel {
    /// The six §V-G variants in the paper's presentation order:
    /// All+Pre, All+Exp, All+Noise, 1Step+Pre, 1Step+Exp, 1Step+Noise.
    pub const ALL_VARIANTS: [InfoModel; 6] = [
        InfoModel {
            lookahead: Lookahead::All,
            accuracy: Accuracy::Precise,
        },
        InfoModel {
            lookahead: Lookahead::All,
            accuracy: Accuracy::Exponential,
        },
        InfoModel {
            lookahead: Lookahead::All,
            accuracy: Accuracy::Noisy,
        },
        InfoModel {
            lookahead: Lookahead::OneStep,
            accuracy: Accuracy::Precise,
        },
        InfoModel {
            lookahead: Lookahead::OneStep,
            accuracy: Accuracy::Exponential,
        },
        InfoModel {
            lookahead: Lookahead::OneStep,
            accuracy: Accuracy::Noisy,
        },
    ];

    /// The paper's label for this variant, e.g. `MQB+All+Pre`.
    pub fn label(&self) -> &'static str {
        match (self.lookahead, self.accuracy) {
            (Lookahead::All, Accuracy::Precise) => "MQB+All+Pre",
            (Lookahead::All, Accuracy::Exponential) => "MQB+All+Exp",
            (Lookahead::All, Accuracy::Noisy) => "MQB+All+Noise",
            (Lookahead::OneStep, Accuracy::Precise) => "MQB+1Step+Pre",
            (Lookahead::OneStep, Accuracy::Exponential) => "MQB+1Step+Exp",
            (Lookahead::OneStep, Accuracy::Noisy) => "MQB+1Step+Noise",
        }
    }
}

/// Ablation knob: how queue snapshots are compared (DESIGN.md §5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BalanceMetric {
    /// The paper's rule: sorted x-utilization vectors compared
    /// lexicographically.
    #[default]
    SortedLexicographic,
    /// Ablation: compare only the most-starved queue (the first element),
    /// ignoring the rest of the vector.
    MinOnly,
}

/// Ablation switches for MQB's selection rule; defaults reproduce the
/// paper's algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MqbTuning {
    /// Snapshot comparison rule.
    pub balance: BalanceMetric,
    /// Whether a candidate's own (remaining) work leaves its queue in the
    /// projection. The paper's text only says descendant values are
    /// *added*; removing the dispatched task from its ready queue is the
    /// literal queue semantics. On by default; the ablation bench
    /// measures how much it matters.
    pub subtract_own_work: bool,
}

impl Default for MqbTuning {
    fn default() -> Self {
        MqbTuning {
            balance: BalanceMetric::SortedLexicographic,
            subtract_own_work: true,
        }
    }
}

/// The Multi-Queue Balancing policy. See the module docs.
#[derive(Clone, Debug)]
pub struct Mqb {
    info: InfoModel,
    tuning: MqbTuning,
    k: usize,
    /// Perturbed per-type descendant values, row-major (`task × K`).
    d: Vec<f64>,
    /// Per-task total descendant value (tie-break key).
    d_total: Vec<f64>,
    // Scratch buffers, reused across epochs (and across runs when the
    // runner keeps policy values warm per worker; see `reset_in`).
    working: Vec<f64>,
    taken: Vec<bool>,
    snap: Vec<ReadyTask>,
    /// The candidates' descendant rows gathered contiguously
    /// (`candidate × K`) once per α-round: the per-pick evaluation streams
    /// these instead of striding through the full `d` matrix.
    erows: Vec<f64>,
    /// Projected x-utilization row of the candidate under evaluation.
    row: Vec<f64>,
    /// Projected row of the best candidate so far this pick.
    best_row: Vec<f64>,
    /// Ascending-sorted balance vector of the candidate (built only on
    /// min-ties; see `assign`).
    cand_sorted: Vec<f64>,
    /// Ascending-sorted balance vector of the current best (built lazily).
    best_sorted: Vec<f64>,
}

impl Default for Mqb {
    fn default() -> Self {
        Mqb::new(InfoModel::default())
    }
}

impl Mqb {
    /// Creates MQB with the given information model.
    pub fn new(info: InfoModel) -> Self {
        Mqb::with_tuning(info, MqbTuning::default())
    }

    /// Creates MQB with explicit ablation switches (benches only; the
    /// defaults are the paper's algorithm).
    pub fn with_tuning(info: InfoModel, tuning: MqbTuning) -> Self {
        Mqb {
            info,
            tuning,
            k: 0,
            d: Vec::new(),
            d_total: Vec::new(),
            working: Vec::new(),
            taken: Vec::new(),
            snap: Vec::new(),
            erows: Vec::new(),
            row: Vec::new(),
            best_row: Vec::new(),
            cand_sorted: Vec::new(),
            best_sorted: Vec::new(),
        }
    }

    /// The active information model.
    pub fn info(&self) -> InfoModel {
        self.info
    }

    /// The (possibly perturbed) per-type descendant row MQB is using for
    /// task `v`; populated by [`Policy::init`]. Exposed for inspection in
    /// tests and ablations.
    #[inline]
    pub fn d_row(&self, v: TaskId) -> &[f64] {
        &self.d[v.index() * self.k..(v.index() + 1) * self.k]
    }

    /// Projects `rt` being scheduled: its work leaves its queue, its
    /// descendant values are promised to every queue.
    fn apply_projection(&mut self, alpha: usize, rt: &ReadyTask) {
        self.working[alpha] -= rt.remaining as f64;
        let row_start = rt.id.index() * self.k;
        for (beta, w) in self.working.iter_mut().enumerate() {
            *w += self.d[row_start + beta];
        }
    }

    /// Shared tail of both init paths: takes the (raw) descendant matrix,
    /// applies the information-model perturbation, and derives the per-task
    /// totals. The perturbation consumes the seeded RNG in exactly the same
    /// sequence regardless of where `d` came from, so artifact-backed and
    /// cold initializations are bit-identical.
    /// Replaces the descendant matrix in place, retaining the allocation
    /// of a warm (worker-persistent) policy value.
    fn set_d_from(&mut self, values: &[f64]) {
        self.d.clear();
        self.d.extend_from_slice(values);
    }

    fn finish_init(&mut self, job: &KDag, seed: u64) {
        self.k = job.num_types();

        match self.info.accuracy {
            Accuracy::Precise => {}
            Accuracy::Exponential => {
                let mut rng = StdRng::seed_from_u64(seed);
                for v in &mut self.d {
                    if *v > 0.0 {
                        // Inverse-CDF exponential with mean *v.
                        let u: f64 = rng.gen_range(0.0..1.0);
                        *v = -*v * (1.0 - u).ln();
                    }
                }
            }
            Accuracy::Noisy => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mean_work = if job.num_tasks() == 0 {
                    0.0
                } else {
                    job.total_work() as f64 / job.num_tasks() as f64
                };
                for v in &mut self.d {
                    let mult: f64 = rng.gen_range(0.5..1.5);
                    let add: f64 = if mean_work > 0.0 {
                        rng.gen_range(0.0..mean_work)
                    } else {
                        0.0
                    };
                    *v = *v * mult + add;
                }
            }
        }

        self.d_total.clear();
        self.d_total.extend(
            (0..job.num_tasks()).map(|i| self.d[i * self.k..(i + 1) * self.k].iter().sum::<f64>()),
        );
    }
}

/// Lexicographic comparison of sorted balance vectors; `Greater` means
/// better balanced (paper §IV-A: `R_A > R_B` iff there is a position `j`
/// with `r_{πA(j)} > r_{πB(j)}` and equality before it).
pub fn cmp_balance(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// One-step descendant values: type-`α` work of immediate children only,
/// split across their parents.
fn one_step_descendants(job: &KDag) -> Vec<f64> {
    let k = job.num_types();
    let mut d = vec![0.0f64; job.num_tasks() * k];
    for v in job.tasks() {
        let row = v.index() * k;
        for &u in job.children(v) {
            let pr = job.num_parents(u) as f64;
            d[row + job.rtype(u)] += job.work(u) as f64 / pr;
        }
    }
    d
}

impl Policy for Mqb {
    fn name(&self) -> &str {
        // The plain name for the default model; experiments use
        // `InfoModel::label` for the §V-G variants.
        match (self.info.lookahead, self.info.accuracy) {
            (Lookahead::All, Accuracy::Precise) => "MQB",
            _ => self.info.label(),
        }
    }

    fn init(&mut self, job: &KDag, _config: &MachineConfig, seed: u64) {
        match self.info.lookahead {
            Lookahead::All => {
                let dv = DescendantValues::compute(job);
                self.set_d_from(dv.values());
            }
            Lookahead::OneStep => self.d = one_step_descendants(job),
        }
        self.finish_init(job, seed);
    }

    fn init_with_artifacts(
        &mut self,
        job: &KDag,
        _config: &MachineConfig,
        seed: u64,
        artifacts: &Arc<Artifacts>,
    ) {
        match self.info.lookahead {
            // The artifact values are bit-identical to a cold
            // `DescendantValues::compute` (same sweep, same order).
            Lookahead::All => self.set_d_from(artifacts.descendants().values()),
            // One-step lookahead is not part of the bundle (it's a plain
            // O(|V|+|E|) pass with no topo sort) — compute it as `init` does.
            Lookahead::OneStep => self.d = one_step_descendants(job),
        }
        self.finish_init(job, seed);
    }

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        let k = self.k;
        debug_assert_eq!(k, view.config.num_types());
        let procs = view.config.procs_per_type();

        // Working queue-work vector, updated as selections are made.
        self.working.clear();
        self.working
            .extend(view.queue_work.iter().map(|&w| w as f64));

        for alpha in 0..k {
            let queue = &view.queues[alpha];
            let slots = view.slots[alpha];
            if slots == 0 || queue.is_empty() {
                continue;
            }
            // Repeated random access below: snapshot the live queue once.
            queue.collect_into(&mut self.snap);
            if self.snap.len() <= slots {
                // Run them all; still project their effect for the types
                // not yet processed in this epoch.
                for qi in 0..self.snap.len() {
                    let rt = self.snap[qi];
                    out.push(alpha, rt.id);
                    self.apply_projection(alpha, &rt);
                }
                continue;
            }

            let m = self.snap.len();
            self.taken.clear();
            self.taken.resize(m, false);

            // Fused selection fast path. Gather the candidates' descendant
            // rows contiguously once (a pure copy, so every value is
            // bit-identical to indexing `d` directly), then evaluate each
            // pick by streaming over `erows`: a candidate's projected row
            // is recomputed fresh from the current working vector — the
            // exact computation the naive algorithm performs — and the
            // lexicographic comparison short-circuits on the sorted
            // vectors' *first* element (the minimum), which decides almost
            // every duel. Full ascending sorts are built only on bitwise
            // min-ties. This removes the per-pick cache-repair sweep (an
            // O(m·K log K) re-sort whenever a projection dirties several
            // working entries, i.e. always for dense descendant rows).
            self.erows.clear();
            for qi in 0..m {
                let row_start = self.snap[qi].id.index() * k;
                self.erows
                    .extend_from_slice(&self.d[row_start..row_start + k]);
            }
            let min_only = matches!(self.tuning.balance, BalanceMetric::MinOnly);
            let subtract_own = self.tuning.subtract_own_work;
            self.row.clear();
            self.row.resize(k, 0.0);
            self.best_row.clear();
            self.best_row.resize(k, 0.0);

            for _ in 0..slots {
                let mut best_qi: Option<usize> = None;
                let mut best_min = 0.0f64;
                let mut best_sorted_valid = false;
                for qi in 0..m {
                    if self.taken[qi] {
                        continue;
                    }
                    let rt = self.snap[qi];
                    // The candidate's projected x-utilization row: working
                    // value plus its descendant promise, minus its own work
                    // leaving its queue, over the processor count. The
                    // floating-point operation order here is load-bearing —
                    // it reproduces the naive per-pick evaluation bit for
                    // bit.
                    let ebase = qi * k;
                    for (beta, &p) in procs.iter().enumerate() {
                        let mut l = self.working[beta] + self.erows[ebase + beta];
                        if beta == alpha && subtract_own {
                            l -= rt.remaining as f64;
                        }
                        self.row[beta] = l / p as f64;
                    }
                    let mut mn = self.row[0];
                    for &x in &self.row[1..] {
                        if x.total_cmp(&mn).is_lt() {
                            mn = x;
                        }
                    }

                    // `true` once this candidate's full sorted vector has
                    // been materialized (only happens on min-ties).
                    let mut cand_sorted_built = false;
                    let better = match best_qi {
                        None => true,
                        Some(bqi) => match mn.total_cmp(&best_min) {
                            std::cmp::Ordering::Less => false,
                            std::cmp::Ordering::Greater => true,
                            std::cmp::Ordering::Equal => {
                                // Sorted-lex vectors agree at position 0
                                // (total_cmp equality is bitwise). Compare
                                // the rest — or go straight to the
                                // tie-break under the MinOnly ablation.
                                let rest = if min_only {
                                    std::cmp::Ordering::Equal
                                } else {
                                    if !best_sorted_valid {
                                        self.best_sorted.clear();
                                        self.best_sorted.extend_from_slice(&self.best_row);
                                        self.best_sorted.sort_unstable_by(f64::total_cmp);
                                        best_sorted_valid = true;
                                    }
                                    self.cand_sorted.clear();
                                    self.cand_sorted.extend_from_slice(&self.row);
                                    self.cand_sorted.sort_unstable_by(f64::total_cmp);
                                    cand_sorted_built = true;
                                    cmp_balance(&self.cand_sorted, &self.best_sorted)
                                };
                                match rest {
                                    std::cmp::Ordering::Greater => true,
                                    std::cmp::Ordering::Less => false,
                                    std::cmp::Ordering::Equal => {
                                        // Tie-break: larger total descendant
                                        // value, then earlier arrival.
                                        let brt = self.snap[bqi];
                                        let (dt_c, dt_b) = (
                                            self.d_total[rt.id.index()],
                                            self.d_total[brt.id.index()],
                                        );
                                        match dt_c.total_cmp(&dt_b) {
                                            std::cmp::Ordering::Greater => true,
                                            std::cmp::Ordering::Less => false,
                                            std::cmp::Ordering::Equal => rt.seq < brt.seq,
                                        }
                                    }
                                }
                            }
                        },
                    };
                    if better {
                        best_qi = Some(qi);
                        best_min = mn;
                        std::mem::swap(&mut self.best_row, &mut self.row);
                        if cand_sorted_built {
                            std::mem::swap(&mut self.best_sorted, &mut self.cand_sorted);
                            best_sorted_valid = true;
                        } else {
                            best_sorted_valid = false;
                        }
                    }
                }
                let bqi = best_qi.expect("queue longer than slots");
                self.taken[bqi] = true;
                let rt = self.snap[bqi];
                out.push(alpha, rt.id);
                self.apply_projection(alpha, &rt);
            }
        }
    }

    fn reset_in(&mut self, _workspace: &mut fhs_sim::Workspace) {
        // The selection scratch is sized inside `assign` and `init`
        // rebuilds `d`/`d_total`, so nothing *must* be cleared — this
        // override just drops stale candidate data eagerly so a policy
        // kept warm across runs by the pooled runner never carries
        // task ids from a previous instance. Capacity is retained.
        self.working.clear();
        self.taken.clear();
        self.snap.clear();
        self.erows.clear();
        self.row.clear();
        self.best_row.clear();
        self.cand_sorted.clear();
        self.best_sorted.clear();
    }

    fn detach_job(&mut self) {
        // Session retirement: drop this job's perturbed descendant tables
        // and any candidate scratch eagerly (task ids and values are
        // meaningless for the next job; `attach_job` rebuilds them).
        // Capacity is retained for the recycle pool.
        self.d.clear();
        self.d_total.clear();
        self.working.clear();
        self.taken.clear();
        self.snap.clear();
        self.erows.clear();
        self.row.clear();
        self.best_row.clear();
        self.cand_sorted.clear();
        self.best_sorted.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhs_sim::{engine, metrics, MachineConfig, Mode, RunOptions};
    use kdag::KDagBuilder;

    #[test]
    fn cmp_balance_is_lexicographic_on_sorted_vectors() {
        use std::cmp::Ordering::*;
        assert_eq!(cmp_balance(&[1.0, 5.0], &[0.5, 9.0]), Greater);
        assert_eq!(cmp_balance(&[1.0, 5.0], &[1.0, 6.0]), Less);
        assert_eq!(cmp_balance(&[1.0, 5.0], &[1.0, 5.0]), Equal);
    }

    #[test]
    fn picks_the_task_that_feeds_the_starved_queue() {
        // Two ready type-0 tasks on one type-0 processor:
        //  * `feeds1` unlocks heavy type-1 work,
        //  * `feeds0` unlocks more type-0 work.
        // The type-1 queue is empty (starved), so MQB must pick `feeds1`.
        let mut b = KDagBuilder::new(2);
        let feeds0 = b.add_task(0, 1);
        let c0 = b.add_task(0, 5);
        b.add_edge(feeds0, c0).unwrap();
        let feeds1 = b.add_task(0, 1);
        let c1 = b.add_task(1, 5);
        b.add_edge(feeds1, c1).unwrap();
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 1]);
        let out = engine::run(
            &job,
            &cfg,
            &mut Mqb::default(),
            Mode::NonPreemptive,
            &RunOptions::seeded(0).with_trace(),
        );
        let tr = out.trace.unwrap();
        let first = tr.segments().iter().min_by_key(|s| s.start).unwrap();
        assert_eq!(first.task, feeds1, "MQB must feed the starved type-1 pool");
        // feeds1@0, c1 runs 1..6 while feeds0@1 and c0 2..7: makespan 7.
        assert_eq!(out.makespan, 7);
    }

    #[test]
    fn one_step_descendants_see_only_children() {
        // chain: v -> a(type1,w2) -> b(type1,w8)
        let mut b = KDagBuilder::new(2);
        let v = b.add_task(0, 1);
        let a = b.add_task(1, 2);
        let c = b.add_task(1, 8);
        b.add_edge(v, a).unwrap();
        b.add_edge(a, c).unwrap();
        let job = b.build().unwrap();
        let d1 = one_step_descendants(&job);
        assert_eq!(d1[v.index() * 2 + 1], 2.0); // only the child, not the grandchild
        let mut full = Mqb::default();
        full.init(&job, &MachineConfig::uniform(2, 1), 0);
        assert_eq!(full.d_row(v)[1], 10.0); // full lookahead sees both
    }

    #[test]
    fn noisy_variants_are_seed_deterministic() {
        let job = kdag::examples::figure1();
        let cfg = MachineConfig::uniform(3, 1);
        for acc in [Accuracy::Exponential, Accuracy::Noisy] {
            let info = InfoModel {
                lookahead: Lookahead::All,
                accuracy: acc,
            };
            let mut a = Mqb::new(info);
            let mut b = Mqb::new(info);
            a.init(&job, &cfg, 42);
            b.init(&job, &cfg, 42);
            assert_eq!(a.d, b.d, "same seed must give same perturbation");
            let mut c = Mqb::new(info);
            c.init(&job, &cfg, 43);
            assert_ne!(a.d, c.d, "different seeds must differ");
        }
    }

    #[test]
    fn all_variants_complete_and_beat_nothing_illegal() {
        let job = kdag::examples::figure1();
        let cfg = MachineConfig::uniform(3, 2);
        for info in InfoModel::ALL_VARIANTS {
            let mut p = Mqb::new(info);
            for mode in [Mode::NonPreemptive, Mode::Preemptive] {
                let r = metrics::evaluate(&job, &cfg, &mut p, mode, 7);
                assert!(r.ratio >= 1.0, "{} ratio {}", info.label(), r.ratio);
            }
        }
    }

    #[test]
    fn labels_are_the_papers() {
        let labels: Vec<&str> = InfoModel::ALL_VARIANTS.iter().map(|i| i.label()).collect();
        assert_eq!(
            labels,
            vec![
                "MQB+All+Pre",
                "MQB+All+Exp",
                "MQB+All+Noise",
                "MQB+1Step+Pre",
                "MQB+1Step+Exp",
                "MQB+1Step+Noise"
            ]
        );
        use fhs_sim::Policy as _;
        assert_eq!(Mqb::default().name(), "MQB");
        assert_eq!(
            Mqb::new(InfoModel {
                lookahead: Lookahead::OneStep,
                accuracy: Accuracy::Noisy
            })
            .name(),
            "MQB+1Step+Noise"
        );
    }

    #[test]
    fn respects_slot_limits_with_large_queues() {
        let mut b = KDagBuilder::new(2);
        for i in 0..20 {
            b.add_task(i % 2, 1 + (i as u64 % 3));
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![2, 3]);
        let out = engine::run(
            &job,
            &cfg,
            &mut Mqb::default(),
            Mode::NonPreemptive,
            &RunOptions::seeded(0).with_trace(),
        );
        fhs_sim::trace::validate(&out.trace.unwrap(), &job, &cfg).unwrap();
    }
}
