//! MQB — Multi-Queue Balancing, the paper's contribution (§IV-A).
//!
//! MQB keeps one ready queue per resource type and transforms makespan
//! minimization into **utilization balancing**: keep every type's queue
//! fed so no processor pool starves.
//!
//! Two concepts drive it:
//!
//! 1. **Balance.** For queue snapshot `A`, the *x-utilization* of the
//!    `α`-queue is `r_α(A) = l_α(A) / P_α` (total ready work over
//!    processor count). The snapshot's *balance* is the vector of
//!    x-utilizations sorted ascending; snapshot `A` is better-balanced
//!    than `B` iff its sorted vector is lexicographically larger — i.e.
//!    its most-starved queue is fuller, ties broken by the next-most
//!    starved, and so on.
//! 2. **Descendant values** `d_α(v)` ([`kdag::descendants`]): the
//!    projected type-`α` workload unlocked downstream of `v`.
//!
//! When more than `P_α` `α`-tasks are ready, MQB repeatedly picks the
//! candidate whose projected queue state — its own work leaving the
//! `α`-queue, its descendant values joining every queue — has the best
//! balance, until all processors are assigned. When at most `P_α` are
//! ready it runs them all (their projections still update the working
//! state seen while filling the remaining types).
//!
//! The §V-G *approximated information* variants are selected through
//! [`InfoModel`]: one-step vs full lookahead, and precise vs
//! exponentially-distributed vs noisy descendant estimates.

use std::sync::Arc;

use fhs_sim::{Assignments, EpochView, MachineConfig, Policy, ReadyTask};
use kdag::precompute::Artifacts;
use kdag::{descendants::DescendantValues, KDag, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How much of the K-DAG's future MQB may look at (paper §V-G).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Lookahead {
    /// Full-depth descendant values (`MQB+All`).
    #[default]
    All,
    /// Immediate children only (`MQB+1Step`):
    /// `d_α(v) = Σ_{u ∈ children(v)} w_α(u) / pr(u)`.
    OneStep,
}

/// How accurate MQB's descendant estimates are (paper §V-G).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Accuracy {
    /// Exact values (`MQB+Pre`).
    #[default]
    Precise,
    /// Each value replaced by an exponentially-distributed random value
    /// whose mean is the true value (`MQB+Exp`).
    Exponential,
    /// Each value replaced by `true × U[0.5, 1.5] + U[0, w̄]` where `w̄`
    /// is the job's mean task work (`MQB+Noise`).
    Noisy,
}

/// Combined information model: lookahead depth × estimate accuracy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct InfoModel {
    /// Lookahead depth.
    pub lookahead: Lookahead,
    /// Estimate accuracy.
    pub accuracy: Accuracy,
}

impl InfoModel {
    /// The six §V-G variants in the paper's presentation order:
    /// All+Pre, All+Exp, All+Noise, 1Step+Pre, 1Step+Exp, 1Step+Noise.
    pub const ALL_VARIANTS: [InfoModel; 6] = [
        InfoModel {
            lookahead: Lookahead::All,
            accuracy: Accuracy::Precise,
        },
        InfoModel {
            lookahead: Lookahead::All,
            accuracy: Accuracy::Exponential,
        },
        InfoModel {
            lookahead: Lookahead::All,
            accuracy: Accuracy::Noisy,
        },
        InfoModel {
            lookahead: Lookahead::OneStep,
            accuracy: Accuracy::Precise,
        },
        InfoModel {
            lookahead: Lookahead::OneStep,
            accuracy: Accuracy::Exponential,
        },
        InfoModel {
            lookahead: Lookahead::OneStep,
            accuracy: Accuracy::Noisy,
        },
    ];

    /// The paper's label for this variant, e.g. `MQB+All+Pre`.
    pub fn label(&self) -> &'static str {
        match (self.lookahead, self.accuracy) {
            (Lookahead::All, Accuracy::Precise) => "MQB+All+Pre",
            (Lookahead::All, Accuracy::Exponential) => "MQB+All+Exp",
            (Lookahead::All, Accuracy::Noisy) => "MQB+All+Noise",
            (Lookahead::OneStep, Accuracy::Precise) => "MQB+1Step+Pre",
            (Lookahead::OneStep, Accuracy::Exponential) => "MQB+1Step+Exp",
            (Lookahead::OneStep, Accuracy::Noisy) => "MQB+1Step+Noise",
        }
    }
}

/// Ablation knob: how queue snapshots are compared (DESIGN.md §5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BalanceMetric {
    /// The paper's rule: sorted x-utilization vectors compared
    /// lexicographically.
    #[default]
    SortedLexicographic,
    /// Ablation: compare only the most-starved queue (the first element),
    /// ignoring the rest of the vector.
    MinOnly,
}

/// Ablation switches for MQB's selection rule; defaults reproduce the
/// paper's algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MqbTuning {
    /// Snapshot comparison rule.
    pub balance: BalanceMetric,
    /// Whether a candidate's own (remaining) work leaves its queue in the
    /// projection. The paper's text only says descendant values are
    /// *added*; removing the dispatched task from its ready queue is the
    /// literal queue semantics. On by default; the ablation bench
    /// measures how much it matters.
    pub subtract_own_work: bool,
}

impl Default for MqbTuning {
    fn default() -> Self {
        MqbTuning {
            balance: BalanceMetric::SortedLexicographic,
            subtract_own_work: true,
        }
    }
}

/// The Multi-Queue Balancing policy. See the module docs.
#[derive(Clone, Debug)]
pub struct Mqb {
    info: InfoModel,
    tuning: MqbTuning,
    k: usize,
    /// Perturbed per-type descendant values, row-major (`task × K`).
    d: Vec<f64>,
    /// Per-task total descendant value (tie-break key).
    d_total: Vec<f64>,
    // Scratch buffers, reused across epochs.
    working: Vec<f64>,
    taken: Vec<bool>,
    snap: Vec<ReadyTask>,
    /// Per-candidate projected x-utilization rows (`candidate × K`),
    /// cached across the picks of one α-round and repaired incrementally.
    rows: Vec<f64>,
    /// Sorted copy of each row in `rows` — the balance vectors compared by
    /// [`cmp_balance`].
    sorted: Vec<f64>,
    /// Bit patterns of `working` before the latest projection; entries
    /// whose bits are unchanged need no row update.
    prev_bits: Vec<u64>,
}

impl Default for Mqb {
    fn default() -> Self {
        Mqb::new(InfoModel::default())
    }
}

impl Mqb {
    /// Creates MQB with the given information model.
    pub fn new(info: InfoModel) -> Self {
        Mqb::with_tuning(info, MqbTuning::default())
    }

    /// Creates MQB with explicit ablation switches (benches only; the
    /// defaults are the paper's algorithm).
    pub fn with_tuning(info: InfoModel, tuning: MqbTuning) -> Self {
        Mqb {
            info,
            tuning,
            k: 0,
            d: Vec::new(),
            d_total: Vec::new(),
            working: Vec::new(),
            taken: Vec::new(),
            snap: Vec::new(),
            rows: Vec::new(),
            sorted: Vec::new(),
            prev_bits: Vec::new(),
        }
    }

    /// The active information model.
    pub fn info(&self) -> InfoModel {
        self.info
    }

    /// The (possibly perturbed) per-type descendant row MQB is using for
    /// task `v`; populated by [`Policy::init`]. Exposed for inspection in
    /// tests and ablations.
    #[inline]
    pub fn d_row(&self, v: TaskId) -> &[f64] {
        &self.d[v.index() * self.k..(v.index() + 1) * self.k]
    }

    /// Projects `rt` being scheduled: its work leaves its queue, its
    /// descendant values are promised to every queue.
    fn apply_projection(&mut self, alpha: usize, rt: &ReadyTask) {
        self.working[alpha] -= rt.remaining as f64;
        let row_start = rt.id.index() * self.k;
        for (beta, w) in self.working.iter_mut().enumerate() {
            *w += self.d[row_start + beta];
        }
    }

    /// The candidate's projected x-utilization of queue `beta`: the working
    /// value, plus the candidate's descendant promise, minus its own work
    /// leaving its queue, over the processor count. The floating-point
    /// operation order here is load-bearing — the incremental row repair in
    /// [`Policy::assign`] recomputes single entries with this exact
    /// sequence, so cached and fresh values are bit-identical.
    #[inline]
    fn projected_value(&self, alpha: usize, rt: &ReadyTask, procs: &[usize], beta: usize) -> f64 {
        let row_start = rt.id.index() * self.k;
        let mut l = self.working[beta] + self.d[row_start + beta];
        if beta == alpha && self.tuning.subtract_own_work {
            l -= rt.remaining as f64;
        }
        l / procs[beta] as f64
    }

    /// Shared tail of both init paths: takes the (raw) descendant matrix,
    /// applies the information-model perturbation, and derives the per-task
    /// totals. The perturbation consumes the seeded RNG in exactly the same
    /// sequence regardless of where `d` came from, so artifact-backed and
    /// cold initializations are bit-identical.
    fn finish_init(&mut self, job: &KDag, seed: u64, d: Vec<f64>) {
        self.k = job.num_types();
        self.d = d;

        match self.info.accuracy {
            Accuracy::Precise => {}
            Accuracy::Exponential => {
                let mut rng = StdRng::seed_from_u64(seed);
                for v in &mut self.d {
                    if *v > 0.0 {
                        // Inverse-CDF exponential with mean *v.
                        let u: f64 = rng.gen_range(0.0..1.0);
                        *v = -*v * (1.0 - u).ln();
                    }
                }
            }
            Accuracy::Noisy => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mean_work = if job.num_tasks() == 0 {
                    0.0
                } else {
                    job.total_work() as f64 / job.num_tasks() as f64
                };
                for v in &mut self.d {
                    let mult: f64 = rng.gen_range(0.5..1.5);
                    let add: f64 = if mean_work > 0.0 {
                        rng.gen_range(0.0..mean_work)
                    } else {
                        0.0
                    };
                    *v = *v * mult + add;
                }
            }
        }

        self.d_total = (0..job.num_tasks())
            .map(|i| self.d[i * self.k..(i + 1) * self.k].iter().sum())
            .collect();
    }
}

/// Repairs a sorted (by [`f64::total_cmp`]) slice after exactly one element
/// changed from `old` to `new`: slides the element to its new position
/// instead of re-sorting. `old` must be present in `s` (bitwise).
fn repair_sorted(s: &mut [f64], old: f64, new: f64) {
    use std::cmp::Ordering::{Greater, Less};
    // total_cmp is equal iff the bit patterns are equal, so the first
    // not-less element is (a duplicate of) `old`.
    let mut i = s.partition_point(|x| x.total_cmp(&old) == Less);
    debug_assert!(i < s.len() && s[i].to_bits() == old.to_bits());
    if new.total_cmp(&old) == Greater {
        while i + 1 < s.len() && s[i + 1].total_cmp(&new) == Less {
            s[i] = s[i + 1];
            i += 1;
        }
    } else {
        while i > 0 && s[i - 1].total_cmp(&new) == Greater {
            s[i] = s[i - 1];
            i -= 1;
        }
    }
    s[i] = new;
}

/// Lexicographic comparison of sorted balance vectors; `Greater` means
/// better balanced (paper §IV-A: `R_A > R_B` iff there is a position `j`
/// with `r_{πA(j)} > r_{πB(j)}` and equality before it).
pub fn cmp_balance(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// One-step descendant values: type-`α` work of immediate children only,
/// split across their parents.
fn one_step_descendants(job: &KDag) -> Vec<f64> {
    let k = job.num_types();
    let mut d = vec![0.0f64; job.num_tasks() * k];
    for v in job.tasks() {
        let row = v.index() * k;
        for &u in job.children(v) {
            let pr = job.num_parents(u) as f64;
            d[row + job.rtype(u)] += job.work(u) as f64 / pr;
        }
    }
    d
}

impl Policy for Mqb {
    fn name(&self) -> &str {
        // The plain name for the default model; experiments use
        // `InfoModel::label` for the §V-G variants.
        match (self.info.lookahead, self.info.accuracy) {
            (Lookahead::All, Accuracy::Precise) => "MQB",
            _ => self.info.label(),
        }
    }

    fn init(&mut self, job: &KDag, _config: &MachineConfig, seed: u64) {
        let d = match self.info.lookahead {
            Lookahead::All => DescendantValues::compute(job).values().to_vec(),
            Lookahead::OneStep => one_step_descendants(job),
        };
        self.finish_init(job, seed, d);
    }

    fn init_with_artifacts(
        &mut self,
        job: &KDag,
        _config: &MachineConfig,
        seed: u64,
        artifacts: &Arc<Artifacts>,
    ) {
        let d = match self.info.lookahead {
            // The artifact values are bit-identical to a cold
            // `DescendantValues::compute` (same sweep, same order).
            Lookahead::All => artifacts.descendants().values().to_vec(),
            // One-step lookahead is not part of the bundle (it's a plain
            // O(|V|+|E|) pass with no topo sort) — compute it as `init` does.
            Lookahead::OneStep => one_step_descendants(job),
        };
        self.finish_init(job, seed, d);
    }

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        let k = self.k;
        debug_assert_eq!(k, view.config.num_types());
        let procs = view.config.procs_per_type();

        // Working queue-work vector, updated as selections are made.
        self.working.clear();
        self.working
            .extend(view.queue_work.iter().map(|&w| w as f64));

        for alpha in 0..k {
            let queue = &view.queues[alpha];
            let slots = view.slots[alpha];
            if slots == 0 || queue.is_empty() {
                continue;
            }
            // Repeated random access below: snapshot the live queue once.
            queue.collect_into(&mut self.snap);
            if self.snap.len() <= slots {
                // Run them all; still project their effect for the types
                // not yet processed in this epoch.
                for qi in 0..self.snap.len() {
                    let rt = self.snap[qi];
                    out.push(alpha, rt.id);
                    self.apply_projection(alpha, &rt);
                }
                continue;
            }

            let m = self.snap.len();
            self.taken.clear();
            self.taken.resize(m, false);

            // Fast path: compute every candidate's projected row and its
            // sorted balance vector once, then repair only the entries
            // whose `working[β]` actually changed bits after each pick —
            // instead of rebuilding and re-sorting all rows per pick.
            self.rows.clear();
            for qi in 0..m {
                let rt = self.snap[qi];
                for beta in 0..k {
                    let val = self.projected_value(alpha, &rt, procs, beta);
                    self.rows.push(val);
                }
            }
            self.sorted.clear();
            self.sorted.extend_from_slice(&self.rows);
            for qi in 0..m {
                self.sorted[qi * k..(qi + 1) * k].sort_unstable_by(f64::total_cmp);
            }
            // Under the MinOnly ablation only the most-starved entry of
            // each (sorted) vector is compared.
            let cmp_len = match self.tuning.balance {
                BalanceMetric::SortedLexicographic => k,
                BalanceMetric::MinOnly => 1,
            };

            for _ in 0..slots {
                let mut best_qi: Option<usize> = None;
                for qi in 0..m {
                    if self.taken[qi] {
                        continue;
                    }
                    let rt = self.snap[qi];
                    let better = match best_qi {
                        None => true,
                        Some(bqi) => {
                            let brt = self.snap[bqi];
                            let cand = &self.sorted[qi * k..qi * k + cmp_len];
                            let best = &self.sorted[bqi * k..bqi * k + cmp_len];
                            match cmp_balance(cand, best) {
                                std::cmp::Ordering::Greater => true,
                                std::cmp::Ordering::Less => false,
                                std::cmp::Ordering::Equal => {
                                    // Tie-break: larger total descendant
                                    // value, then earlier arrival.
                                    let (dt_c, dt_b) =
                                        (self.d_total[rt.id.index()], self.d_total[brt.id.index()]);
                                    match dt_c.total_cmp(&dt_b) {
                                        std::cmp::Ordering::Greater => true,
                                        std::cmp::Ordering::Less => false,
                                        std::cmp::Ordering::Equal => rt.seq < brt.seq,
                                    }
                                }
                            }
                        }
                    };
                    if better {
                        best_qi = Some(qi);
                    }
                }
                let bqi = best_qi.expect("queue longer than slots");
                self.taken[bqi] = true;
                let rt = self.snap[bqi];
                out.push(alpha, rt.id);

                self.prev_bits.clear();
                self.prev_bits
                    .extend(self.working.iter().map(|w| w.to_bits()));
                self.apply_projection(alpha, &rt);

                // Repair the untaken candidates' cached rows: recompute
                // only entries whose working value changed bits, with the
                // exact op order of `projected_value` — unchanged inputs
                // reproduce unchanged outputs bit for bit, so skipping
                // them is behavior-preserving.
                for qi in 0..m {
                    if self.taken[qi] {
                        continue;
                    }
                    let crt = self.snap[qi];
                    let base = qi * k;
                    let mut n_changed = 0usize;
                    let mut single_old = 0.0f64;
                    let mut single_new = 0.0f64;
                    for beta in 0..k {
                        if self.working[beta].to_bits() == self.prev_bits[beta] {
                            continue;
                        }
                        let val = self.projected_value(alpha, &crt, procs, beta);
                        if val.to_bits() != self.rows[base + beta].to_bits() {
                            n_changed += 1;
                            single_old = self.rows[base + beta];
                            single_new = val;
                            self.rows[base + beta] = val;
                        }
                    }
                    if n_changed == 1 {
                        // Typically the pick only moved the candidate's own
                        // type: slide one element instead of re-sorting.
                        repair_sorted(&mut self.sorted[base..base + k], single_old, single_new);
                    } else if n_changed > 1 {
                        self.sorted[base..base + k].copy_from_slice(&self.rows[base..base + k]);
                        self.sorted[base..base + k].sort_unstable_by(f64::total_cmp);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhs_sim::{engine, metrics, MachineConfig, Mode, RunOptions};
    use kdag::KDagBuilder;

    #[test]
    fn cmp_balance_is_lexicographic_on_sorted_vectors() {
        use std::cmp::Ordering::*;
        assert_eq!(cmp_balance(&[1.0, 5.0], &[0.5, 9.0]), Greater);
        assert_eq!(cmp_balance(&[1.0, 5.0], &[1.0, 6.0]), Less);
        assert_eq!(cmp_balance(&[1.0, 5.0], &[1.0, 5.0]), Equal);
    }

    #[test]
    fn picks_the_task_that_feeds_the_starved_queue() {
        // Two ready type-0 tasks on one type-0 processor:
        //  * `feeds1` unlocks heavy type-1 work,
        //  * `feeds0` unlocks more type-0 work.
        // The type-1 queue is empty (starved), so MQB must pick `feeds1`.
        let mut b = KDagBuilder::new(2);
        let feeds0 = b.add_task(0, 1);
        let c0 = b.add_task(0, 5);
        b.add_edge(feeds0, c0).unwrap();
        let feeds1 = b.add_task(0, 1);
        let c1 = b.add_task(1, 5);
        b.add_edge(feeds1, c1).unwrap();
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 1]);
        let out = engine::run(
            &job,
            &cfg,
            &mut Mqb::default(),
            Mode::NonPreemptive,
            &RunOptions {
                record_trace: true,
                seed: 0,
                quantum: None,
            },
        );
        let tr = out.trace.unwrap();
        let first = tr.segments().iter().min_by_key(|s| s.start).unwrap();
        assert_eq!(first.task, feeds1, "MQB must feed the starved type-1 pool");
        // feeds1@0, c1 runs 1..6 while feeds0@1 and c0 2..7: makespan 7.
        assert_eq!(out.makespan, 7);
    }

    #[test]
    fn one_step_descendants_see_only_children() {
        // chain: v -> a(type1,w2) -> b(type1,w8)
        let mut b = KDagBuilder::new(2);
        let v = b.add_task(0, 1);
        let a = b.add_task(1, 2);
        let c = b.add_task(1, 8);
        b.add_edge(v, a).unwrap();
        b.add_edge(a, c).unwrap();
        let job = b.build().unwrap();
        let d1 = one_step_descendants(&job);
        assert_eq!(d1[v.index() * 2 + 1], 2.0); // only the child, not the grandchild
        let mut full = Mqb::default();
        full.init(&job, &MachineConfig::uniform(2, 1), 0);
        assert_eq!(full.d_row(v)[1], 10.0); // full lookahead sees both
    }

    #[test]
    fn noisy_variants_are_seed_deterministic() {
        let job = kdag::examples::figure1();
        let cfg = MachineConfig::uniform(3, 1);
        for acc in [Accuracy::Exponential, Accuracy::Noisy] {
            let info = InfoModel {
                lookahead: Lookahead::All,
                accuracy: acc,
            };
            let mut a = Mqb::new(info);
            let mut b = Mqb::new(info);
            a.init(&job, &cfg, 42);
            b.init(&job, &cfg, 42);
            assert_eq!(a.d, b.d, "same seed must give same perturbation");
            let mut c = Mqb::new(info);
            c.init(&job, &cfg, 43);
            assert_ne!(a.d, c.d, "different seeds must differ");
        }
    }

    #[test]
    fn all_variants_complete_and_beat_nothing_illegal() {
        let job = kdag::examples::figure1();
        let cfg = MachineConfig::uniform(3, 2);
        for info in InfoModel::ALL_VARIANTS {
            let mut p = Mqb::new(info);
            for mode in [Mode::NonPreemptive, Mode::Preemptive] {
                let r = metrics::evaluate(&job, &cfg, &mut p, mode, 7);
                assert!(r.ratio >= 1.0, "{} ratio {}", info.label(), r.ratio);
            }
        }
    }

    #[test]
    fn labels_are_the_papers() {
        let labels: Vec<&str> = InfoModel::ALL_VARIANTS.iter().map(|i| i.label()).collect();
        assert_eq!(
            labels,
            vec![
                "MQB+All+Pre",
                "MQB+All+Exp",
                "MQB+All+Noise",
                "MQB+1Step+Pre",
                "MQB+1Step+Exp",
                "MQB+1Step+Noise"
            ]
        );
        use fhs_sim::Policy as _;
        assert_eq!(Mqb::default().name(), "MQB");
        assert_eq!(
            Mqb::new(InfoModel {
                lookahead: Lookahead::OneStep,
                accuracy: Accuracy::Noisy
            })
            .name(),
            "MQB+1Step+Noise"
        );
    }

    #[test]
    fn respects_slot_limits_with_large_queues() {
        let mut b = KDagBuilder::new(2);
        for i in 0..20 {
            b.add_task(i % 2, 1 + (i as u64 % 3));
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![2, 3]);
        let out = engine::run(
            &job,
            &cfg,
            &mut Mqb::default(),
            Mode::NonPreemptive,
            &RunOptions {
                record_trace: true,
                seed: 0,
                quantum: None,
            },
        );
        fhs_sim::trace::validate(&out.trace.unwrap(), &job, &cfg).unwrap();
    }
}
