//! MQB — Multi-Queue Balancing, the paper's contribution (§IV-A).
//!
//! MQB keeps one ready queue per resource type and transforms makespan
//! minimization into **utilization balancing**: keep every type's queue
//! fed so no processor pool starves.
//!
//! Two concepts drive it:
//!
//! 1. **Balance.** For queue snapshot `A`, the *x-utilization* of the
//!    `α`-queue is `r_α(A) = l_α(A) / P_α` (total ready work over
//!    processor count). The snapshot's *balance* is the vector of
//!    x-utilizations sorted ascending; snapshot `A` is better-balanced
//!    than `B` iff its sorted vector is lexicographically larger — i.e.
//!    its most-starved queue is fuller, ties broken by the next-most
//!    starved, and so on.
//! 2. **Descendant values** `d_α(v)` ([`kdag::descendants`]): the
//!    projected type-`α` workload unlocked downstream of `v`.
//!
//! When more than `P_α` `α`-tasks are ready, MQB repeatedly picks the
//! candidate whose projected queue state — its own work leaving the
//! `α`-queue, its descendant values joining every queue — has the best
//! balance, until all processors are assigned. When at most `P_α` are
//! ready it runs them all (their projections still update the working
//! state seen while filling the remaining types).
//!
//! The §V-G *approximated information* variants are selected through
//! [`InfoModel`]: one-step vs full lookahead, and precise vs
//! exponentially-distributed vs noisy descendant estimates.

use std::collections::HashMap;
use std::sync::Arc;

use fhs_sim::{
    Assignments, EpochView, MachineConfig, Policy, QueueEvent, ReadyTask, SelectionStats,
};
use kdag::precompute::Artifacts;
use kdag::{descendants::DescendantValues, KDag, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sentinel for "no task / no group / not linked" in the index's u32 links.
const NONE: u32 = u32::MAX;

/// Contested rounds with at most this many candidates use the flat full
/// scan instead of the dominance-pruned index: below this size the scan's
/// streaming loop beats the index walk, and the small-queue regime is where
/// almost all *jobs* (not picks) live. Above it the index path takes over.
/// Both paths select bit-identical tasks (see DESIGN.md §14), so the
/// crossover is purely a performance knob.
const INDEX_CROSSOVER: usize = 64;

/// How much of the K-DAG's future MQB may look at (paper §V-G).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Lookahead {
    /// Full-depth descendant values (`MQB+All`).
    #[default]
    All,
    /// Immediate children only (`MQB+1Step`):
    /// `d_α(v) = Σ_{u ∈ children(v)} w_α(u) / pr(u)`.
    OneStep,
}

/// How accurate MQB's descendant estimates are (paper §V-G).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Accuracy {
    /// Exact values (`MQB+Pre`).
    #[default]
    Precise,
    /// Each value replaced by an exponentially-distributed random value
    /// whose mean is the true value (`MQB+Exp`).
    Exponential,
    /// Each value replaced by `true × U[0.5, 1.5] + U[0, w̄]` where `w̄`
    /// is the job's mean task work (`MQB+Noise`).
    Noisy,
}

/// Combined information model: lookahead depth × estimate accuracy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct InfoModel {
    /// Lookahead depth.
    pub lookahead: Lookahead,
    /// Estimate accuracy.
    pub accuracy: Accuracy,
}

impl InfoModel {
    /// The six §V-G variants in the paper's presentation order:
    /// All+Pre, All+Exp, All+Noise, 1Step+Pre, 1Step+Exp, 1Step+Noise.
    pub const ALL_VARIANTS: [InfoModel; 6] = [
        InfoModel {
            lookahead: Lookahead::All,
            accuracy: Accuracy::Precise,
        },
        InfoModel {
            lookahead: Lookahead::All,
            accuracy: Accuracy::Exponential,
        },
        InfoModel {
            lookahead: Lookahead::All,
            accuracy: Accuracy::Noisy,
        },
        InfoModel {
            lookahead: Lookahead::OneStep,
            accuracy: Accuracy::Precise,
        },
        InfoModel {
            lookahead: Lookahead::OneStep,
            accuracy: Accuracy::Exponential,
        },
        InfoModel {
            lookahead: Lookahead::OneStep,
            accuracy: Accuracy::Noisy,
        },
    ];

    /// The paper's label for this variant, e.g. `MQB+All+Pre`.
    pub fn label(&self) -> &'static str {
        match (self.lookahead, self.accuracy) {
            (Lookahead::All, Accuracy::Precise) => "MQB+All+Pre",
            (Lookahead::All, Accuracy::Exponential) => "MQB+All+Exp",
            (Lookahead::All, Accuracy::Noisy) => "MQB+All+Noise",
            (Lookahead::OneStep, Accuracy::Precise) => "MQB+1Step+Pre",
            (Lookahead::OneStep, Accuracy::Exponential) => "MQB+1Step+Exp",
            (Lookahead::OneStep, Accuracy::Noisy) => "MQB+1Step+Noise",
        }
    }
}

/// Ablation knob: how queue snapshots are compared (DESIGN.md §5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BalanceMetric {
    /// The paper's rule: sorted x-utilization vectors compared
    /// lexicographically.
    #[default]
    SortedLexicographic,
    /// Ablation: compare only the most-starved queue (the first element),
    /// ignoring the rest of the vector.
    MinOnly,
}

/// Ablation switches for MQB's selection rule; defaults reproduce the
/// paper's algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MqbTuning {
    /// Snapshot comparison rule.
    pub balance: BalanceMetric,
    /// Whether a candidate's own (remaining) work leaves its queue in the
    /// projection. The paper's text only says descendant values are
    /// *added*; removing the dispatched task from its ready queue is the
    /// literal queue semantics. On by default; the ablation bench
    /// measures how much it matters.
    pub subtract_own_work: bool,
    /// Bounded-candidate approximation (`MQB-Approx`): when set, each
    /// contested pick evaluates at most this many candidates — the top-`c`
    /// untaken by the cheap priority (total descendant value descending,
    /// then arrival) — instead of the exact dominance-pruned selection.
    /// `None` (the default) is the exact algorithm.
    pub max_candidates: Option<usize>,
}

impl Default for MqbTuning {
    fn default() -> Self {
        MqbTuning {
            balance: BalanceMetric::SortedLexicographic,
            subtract_own_work: true,
            max_candidates: None,
        }
    }
}

/// One candidate-equivalence group of the incremental index: all queued
/// candidates of one type with a bitwise-identical descendant row
/// (`class`) and the same dominance remaining-work key (`rem_key`). Such
/// candidates produce bitwise-identical projected rows at every working
/// state, so only the group's earliest-arrived member (`head`) can ever
/// win a pick; groups, not members, are what the dominance frontier
/// relates (DESIGN.md §14).
#[derive(Clone, Debug, Default)]
struct Group {
    /// Row-class id (index into `Mqb::class_rep`).
    class: u32,
    /// Remaining work when `subtract_own_work` is on, 0 otherwise (then
    /// the projected row doesn't depend on remaining work at all).
    rem_key: u64,
    /// Earliest-arrived member (task index); the group's only possible
    /// winner.
    head: u32,
    /// Latest-arrived member: fast path for seq-ascending insertion.
    tail: u32,
    /// Member count.
    len: u32,
    /// A live group whose key dominates this one (`NONE` when this group
    /// is on the frontier). The witness's existence is what proves this
    /// group can be pruned; it is *not* required to be on the frontier
    /// itself — chains of witnesses end at a frontier group by induction.
    witness: u32,
    /// Intrusive list of groups this one witnesses.
    child_head: u32,
    /// Sibling links within the witness's child list.
    sib_prev: u32,
    /// See `sib_prev`.
    sib_next: u32,
    /// Position in `TypeIndex::frontier` (`NONE` when dominated).
    frontier_pos: u32,
}

/// Per-type incremental selection index: the groups of one ready queue and
/// their dominance frontier. Maintained by queue-journal diffs between
/// epochs; rebuilt from a queue snapshot on attach or journal
/// discontinuity.
#[derive(Clone, Debug, Default)]
struct TypeIndex {
    /// Group slab; freed ids are recycled through `free`.
    groups: Vec<Group>,
    /// Free list into `groups`.
    free: Vec<u32>,
    /// Groups with no known dominator — the only groups whose heads a pick
    /// must evaluate. (A superset of the true Pareto frontier: a group
    /// placed before its would-be dominator stays until a later sweep
    /// demotes it, which costs evaluations but never correctness.)
    frontier: Vec<u32>,
    /// `(class, rem_key)` → group id. Never iterated, so the std
    /// HashMap's nondeterministic order can't leak into selection.
    map: HashMap<(u32, u64), u32>,
    /// Live member (queued candidate) count across all groups; checked
    /// against the queue length as a rebuild trigger for hand-built views.
    live: usize,
}

impl TypeIndex {
    fn clear(&mut self) {
        self.groups.clear();
        self.free.clear();
        self.frontier.clear();
        self.map.clear();
        self.live = 0;
    }
}

/// Split-borrow view over one type's index plus the policy-wide member
/// arrays and (immutable) descendant tables: the index operations need all
/// of these at once while `Mqb::assign` concurrently mutates disjoint
/// scratch fields (`working`, `row`, …).
struct IndexCtx<'a> {
    k: usize,
    subtract_own: bool,
    d: &'a [f64],
    d_total: &'a [f64],
    row_class: &'a [u32],
    class_rep: &'a [u32],
    ix: &'a mut TypeIndex,
    m_group: &'a mut [u32],
    m_prev: &'a mut [u32],
    m_next: &'a mut [u32],
    m_seq: &'a mut [u64],
    m_rem: &'a mut [u64],
}

impl IndexCtx<'_> {
    /// `true` iff group `f`'s key dominates group `g`'s: every descendant-
    /// row entry at least as large, remaining-work key no larger, and total
    /// descendant value **strictly** larger. Because IEEE add/subtract/
    /// divide-by-positive are monotone, the first two conditions force
    /// `f`'s projected row ≥ `g`'s pointwise at *every* working state —
    /// `f`'s head then beats every member of `g` on the min and sorted-lex
    /// keys, and the strict `d_total` settles any full bitwise row tie
    /// before the seq tie-break could go the wrong way. State-free and
    /// member-free: a domination, once established, holds for the groups'
    /// whole lifetime.
    fn dominates(&self, f: u32, g: u32) -> bool {
        let gf = &self.ix.groups[f as usize];
        let gg = &self.ix.groups[g as usize];
        if gf.rem_key > gg.rem_key {
            return false;
        }
        let rf = self.class_rep[gf.class as usize] as usize;
        let rg = self.class_rep[gg.class as usize] as usize;
        if self.d_total[rf] <= self.d_total[rg] {
            return false;
        }
        let ef = &self.d[rf * self.k..rf * self.k + self.k];
        let eg = &self.d[rg * self.k..rg * self.k + self.k];
        ef.iter().zip(eg).all(|(x, y)| x >= y)
    }

    fn new_group(&mut self, class: u32, rem_key: u64) -> u32 {
        let gid = match self.ix.free.pop() {
            Some(g) => g,
            None => {
                self.ix.groups.push(Group::default());
                (self.ix.groups.len() - 1) as u32
            }
        };
        self.ix.groups[gid as usize] = Group {
            class,
            rem_key,
            head: NONE,
            tail: NONE,
            len: 0,
            witness: NONE,
            child_head: NONE,
            sib_prev: NONE,
            sib_next: NONE,
            frontier_pos: NONE,
        };
        // Keep `capacity ≥ 2 × len` so hashbrown's tombstone handling can
        // always rehash in place instead of resizing: insert/remove churn
        // then never allocates once the table has ratcheted to twice the
        // live-group peak, which makes warm reruns allocation-free (the
        // alloc-regression contract) instead of depending on where growth
        // triggers land relative to retained capacity.
        let need = 2 * (self.ix.map.len() + 1);
        if self.ix.map.capacity() < need {
            self.ix.map.reserve(need - self.ix.map.len());
        }
        self.ix.map.insert((class, rem_key), gid);
        gid
    }

    /// Inserts queued candidate `t` into its group (creating and placing
    /// the group if its key is new), keeping the member list seq-ordered.
    fn insert_member(&mut self, t: usize, seq: u64, rem: u64) {
        debug_assert_eq!(self.m_group[t], NONE, "task {t} inserted twice");
        self.m_seq[t] = seq;
        self.m_rem[t] = rem;
        let class = self.row_class[t];
        let rem_key = if self.subtract_own { rem } else { 0 };
        let (gid, fresh) = match self.ix.map.get(&(class, rem_key)) {
            Some(&g) => (g, false),
            None => (self.new_group(class, rem_key), true),
        };
        let g = &self.ix.groups[gid as usize];
        if g.len == 0 {
            self.ix.groups[gid as usize].head = t as u32;
            self.ix.groups[gid as usize].tail = t as u32;
            self.m_prev[t] = NONE;
            self.m_next[t] = NONE;
        } else if seq >= self.m_seq[g.tail as usize] {
            // Releases and rebuilds arrive seq-ascending: tail append.
            let tail = g.tail as usize;
            self.m_prev[t] = tail as u32;
            self.m_next[t] = NONE;
            self.m_next[tail] = t as u32;
            self.ix.groups[gid as usize].tail = t as u32;
        } else {
            // Round-end reinsertion of a picked head (or a regrouped
            // update): walk to the first member arriving after us.
            let mut c = g.head as usize;
            while self.m_seq[c] < seq {
                c = self.m_next[c] as usize;
            }
            let p = self.m_prev[c];
            self.m_prev[t] = p;
            self.m_next[t] = c as u32;
            self.m_prev[c] = t as u32;
            if p == NONE {
                self.ix.groups[gid as usize].head = t as u32;
            } else {
                self.m_next[p as usize] = t as u32;
            }
        }
        self.ix.groups[gid as usize].len += 1;
        self.m_group[t] = gid;
        self.ix.live += 1;
        if fresh {
            self.place_group(gid);
        }
    }

    /// Removes queued candidate `t` from its group; a group left empty
    /// dies (and its witnessed children are re-homed).
    fn remove_member(&mut self, t: usize) {
        let gid = self.m_group[t];
        debug_assert_ne!(gid, NONE, "task {t} not in the index");
        self.m_group[t] = NONE;
        let (p, n) = (self.m_prev[t], self.m_next[t]);
        if p == NONE {
            self.ix.groups[gid as usize].head = n;
        } else {
            self.m_next[p as usize] = n;
        }
        if n == NONE {
            self.ix.groups[gid as usize].tail = p;
        } else {
            self.m_prev[n as usize] = p;
        }
        self.ix.groups[gid as usize].len -= 1;
        self.ix.live -= 1;
        if self.ix.groups[gid as usize].len == 0 {
            self.remove_group(gid);
        }
    }

    fn attach_child(&mut self, w: u32, c: u32) {
        let old_head = self.ix.groups[w as usize].child_head;
        {
            let gc = &mut self.ix.groups[c as usize];
            gc.witness = w;
            gc.frontier_pos = NONE;
            gc.sib_prev = NONE;
            gc.sib_next = old_head;
        }
        if old_head != NONE {
            self.ix.groups[old_head as usize].sib_prev = c;
        }
        self.ix.groups[w as usize].child_head = c;
    }

    fn detach_child(&mut self, c: u32) {
        let (w, sp, sn) = {
            let gc = &self.ix.groups[c as usize];
            (gc.witness, gc.sib_prev, gc.sib_next)
        };
        if sp == NONE {
            self.ix.groups[w as usize].child_head = sn;
        } else {
            self.ix.groups[sp as usize].sib_next = sn;
        }
        if sn != NONE {
            self.ix.groups[sn as usize].sib_prev = sp;
        }
        let gc = &mut self.ix.groups[c as usize];
        gc.witness = NONE;
        gc.sib_prev = NONE;
        gc.sib_next = NONE;
    }

    fn frontier_swap_remove(&mut self, pos: usize) {
        self.ix.frontier.swap_remove(pos);
        if pos < self.ix.frontier.len() {
            let moved = self.ix.frontier[pos];
            self.ix.groups[moved as usize].frontier_pos = pos as u32;
        }
    }

    /// Places a detached group: under the first frontier dominator found,
    /// else onto the frontier — demoting any frontier groups the newcomer
    /// dominates (they keep their own children; a demoted group's witness
    /// chain stays valid because every witness stays live).
    fn place_group(&mut self, gid: u32) {
        for pos in 0..self.ix.frontier.len() {
            let f = self.ix.frontier[pos];
            if self.dominates(f, gid) {
                // Transitivity: dominated by `f` means `gid` cannot
                // dominate anything `f` doesn't already — no sweep needed.
                self.attach_child(f, gid);
                return;
            }
        }
        self.ix.groups[gid as usize].frontier_pos = self.ix.frontier.len() as u32;
        self.ix.frontier.push(gid);
        let mut i = 0;
        while i < self.ix.frontier.len() {
            let f = self.ix.frontier[i];
            if f != gid && self.dominates(gid, f) {
                self.frontier_swap_remove(i);
                self.attach_child(gid, f);
            } else {
                i += 1;
            }
        }
    }

    /// Retires an empty group. Frontier death re-places each witnessed
    /// child from scratch; interior death splices the children to the dead
    /// group's own witness (valid by transitivity through the dead group's
    /// frozen keys).
    fn remove_group(&mut self, gid: u32) {
        let (class, rem_key, fpos, witness, mut c) = {
            let g = &self.ix.groups[gid as usize];
            (g.class, g.rem_key, g.frontier_pos, g.witness, g.child_head)
        };
        self.ix.map.remove(&(class, rem_key));
        if fpos != NONE {
            self.frontier_swap_remove(fpos as usize);
            while c != NONE {
                let next = self.ix.groups[c as usize].sib_next;
                {
                    let gc = &mut self.ix.groups[c as usize];
                    gc.witness = NONE;
                    gc.sib_prev = NONE;
                    gc.sib_next = NONE;
                }
                self.place_group(c);
                c = next;
            }
        } else {
            self.detach_child(gid);
            while c != NONE {
                let next = self.ix.groups[c as usize].sib_next;
                self.attach_child(witness, c);
                c = next;
            }
        }
        self.ix.groups[gid as usize].child_head = NONE;
        self.ix.free.push(gid);
    }
}

/// The Multi-Queue Balancing policy. See the module docs.
#[derive(Clone, Debug)]
pub struct Mqb {
    info: InfoModel,
    tuning: MqbTuning,
    k: usize,
    /// Perturbed per-type descendant values, row-major (`task × K`).
    d: Vec<f64>,
    /// Per-task total descendant value (tie-break key).
    d_total: Vec<f64>,
    // Scratch buffers, reused across epochs (and across runs when the
    // runner keeps policy values warm per worker; see `reset_in`).
    working: Vec<f64>,
    taken: Vec<bool>,
    snap: Vec<ReadyTask>,
    /// The candidates' descendant rows gathered contiguously
    /// (`candidate × K`) once per α-round: the per-pick evaluation streams
    /// these instead of striding through the full `d` matrix.
    erows: Vec<f64>,
    /// Projected x-utilization row of the candidate under evaluation.
    row: Vec<f64>,
    /// Projected row of the best candidate so far this pick.
    best_row: Vec<f64>,
    /// Ascending-sorted balance vector of the candidate (built only on
    /// min-ties; see `assign`).
    cand_sorted: Vec<f64>,
    /// Ascending-sorted balance vector of the current best (built lazily).
    best_sorted: Vec<f64>,
    // --- Incremental dominance-pruned index (DESIGN.md §14). ---
    /// Row-class of each task: tasks with bitwise-identical descendant
    /// rows share a class.
    row_class: Vec<u32>,
    /// One representative task per class (for reading the class's row and
    /// `d_total` — identical bits for every member by construction).
    class_rep: Vec<u32>,
    /// Task-index scratch for the class-table sort.
    class_scratch: Vec<u32>,
    /// Per-type index over the queued candidates.
    idx: Vec<TypeIndex>,
    /// Member state, task-indexed: owning group (`NONE` = not queued),
    /// seq-ordered intrusive list links, and the queue entry's seq /
    /// remaining (mirrors of the journal, so picks don't re-touch queues).
    m_group: Vec<u32>,
    m_prev: Vec<u32>,
    m_next: Vec<u32>,
    m_seq: Vec<u64>,
    m_rem: Vec<u64>,
    /// Per-type journal cursor `(journal_gen, offset)` — how far into each
    /// queue's change-journal the index has replayed.
    cursor: Vec<(u64, usize)>,
    /// Forces a cold index rebuild from the queues at the next `assign`
    /// (set on init/attach/reset; cleared by the rebuild).
    need_rebuild: bool,
    /// Selection-work counters, harvested via
    /// [`Policy::take_selection_stats`].
    sel: SelectionStats,
    /// Tasks picked this round (preemptive indexed path: they stay queued,
    /// so they re-enter the index at round end).
    picked: Vec<u32>,
    /// Candidate order for the bounded-candidate approximation.
    approx_order: Vec<u32>,
    /// Packed `(priority key, snapshot index)` scratch for ranking the
    /// approximation's candidates: the key embeds the total-descendant
    /// bits (descending) and the arrival seq so the partial selection
    /// compares plain integers instead of chasing two indirections per
    /// comparison.
    approx_keys: Vec<(u128, u32)>,
    /// Window-local group id of each window position: positions with the
    /// same `(row class, dominance remaining-work key)` — bitwise-identical
    /// projected rows at every working state — share a group, mirroring
    /// the exact index's grouping (DESIGN.md §14) for one α-round.
    approx_group: Vec<u32>,
    /// Next window position in the same group (`NONE` at each group's
    /// tail); members chain in window order, i.e. seq-ascending.
    approx_next: Vec<u32>,
    /// Each group's live head: its earliest untaken window position
    /// (`NONE` once the group is exhausted). Only live heads duel.
    approx_live: Vec<u32>,
    /// Each group's dominating group (`NONE` on the frontier): a group
    /// whose key pointwise-dominates this one's, so its live head beats
    /// every member of this group in every duel of the round.
    approx_gdom: Vec<u32>,
    /// The frontier reps' window positions — the only candidates a new
    /// group must be checked against when building `approx_gdom`.
    approx_front: Vec<u32>,
    /// Window positions taken so far this round, kept sorted; each pick
    /// derives the scan horizon (the `cap`-th untaken position) from it.
    approx_taken_pos: Vec<u32>,
    /// Head of each group's dominated-children list (`NONE` when none):
    /// the groups holding this one as their dominance witness, re-homed
    /// in O(children) when the witness group exhausts.
    approx_kid_head: Vec<u32>,
    /// Sibling link of the children lists (each group has at most one
    /// dominance parent, so one link per group suffices).
    approx_kid_next: Vec<u32>,
    /// Scratch worklist for draining a dead witness's children.
    approx_orphans: Vec<u32>,
}

impl Default for Mqb {
    fn default() -> Self {
        Mqb::new(InfoModel::default())
    }
}

impl Mqb {
    /// Creates MQB with the given information model.
    pub fn new(info: InfoModel) -> Self {
        Mqb::with_tuning(info, MqbTuning::default())
    }

    /// Creates MQB with explicit ablation switches (benches only; the
    /// defaults are the paper's algorithm).
    pub fn with_tuning(info: InfoModel, tuning: MqbTuning) -> Self {
        Mqb {
            info,
            tuning,
            k: 0,
            d: Vec::new(),
            d_total: Vec::new(),
            working: Vec::new(),
            taken: Vec::new(),
            snap: Vec::new(),
            erows: Vec::new(),
            row: Vec::new(),
            best_row: Vec::new(),
            cand_sorted: Vec::new(),
            best_sorted: Vec::new(),
            row_class: Vec::new(),
            class_rep: Vec::new(),
            class_scratch: Vec::new(),
            idx: Vec::new(),
            m_group: Vec::new(),
            m_prev: Vec::new(),
            m_next: Vec::new(),
            m_seq: Vec::new(),
            m_rem: Vec::new(),
            cursor: Vec::new(),
            need_rebuild: true,
            sel: SelectionStats::default(),
            picked: Vec::new(),
            approx_order: Vec::new(),
            approx_keys: Vec::new(),
            approx_group: Vec::new(),
            approx_next: Vec::new(),
            approx_live: Vec::new(),
            approx_gdom: Vec::new(),
            approx_front: Vec::new(),
            approx_taken_pos: Vec::new(),
            approx_kid_head: Vec::new(),
            approx_kid_next: Vec::new(),
            approx_orphans: Vec::new(),
        }
    }

    /// The active information model.
    pub fn info(&self) -> InfoModel {
        self.info
    }

    /// The (possibly perturbed) per-type descendant row MQB is using for
    /// task `v`; populated by [`Policy::init`]. Exposed for inspection in
    /// tests and ablations.
    #[inline]
    pub fn d_row(&self, v: TaskId) -> &[f64] {
        &self.d[v.index() * self.k..(v.index() + 1) * self.k]
    }

    /// Projects `rt` being scheduled: its work leaves its queue, its
    /// descendant values are promised to every queue.
    fn apply_projection(&mut self, alpha: usize, rt: &ReadyTask) {
        self.working[alpha] -= rt.remaining as f64;
        let row_start = rt.id.index() * self.k;
        for (beta, w) in self.working.iter_mut().enumerate() {
            *w += self.d[row_start + beta];
        }
    }

    /// Shared tail of both init paths: takes the (raw) descendant matrix,
    /// applies the information-model perturbation, and derives the per-task
    /// totals. The perturbation consumes the seeded RNG in exactly the same
    /// sequence regardless of where `d` came from, so artifact-backed and
    /// cold initializations are bit-identical.
    /// Replaces the descendant matrix in place, retaining the allocation
    /// of a warm (worker-persistent) policy value.
    fn set_d_from(&mut self, values: &[f64]) {
        self.d.clear();
        self.d.extend_from_slice(values);
    }

    fn finish_init(&mut self, job: &KDag, seed: u64) {
        self.k = job.num_types();

        match self.info.accuracy {
            Accuracy::Precise => {}
            Accuracy::Exponential => {
                let mut rng = StdRng::seed_from_u64(seed);
                for v in &mut self.d {
                    if *v > 0.0 {
                        // Inverse-CDF exponential with mean *v.
                        let u: f64 = rng.gen_range(0.0..1.0);
                        *v = -*v * (1.0 - u).ln();
                    }
                }
            }
            Accuracy::Noisy => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mean_work = if job.num_tasks() == 0 {
                    0.0
                } else {
                    job.total_work() as f64 / job.num_tasks() as f64
                };
                for v in &mut self.d {
                    let mult: f64 = rng.gen_range(0.5..1.5);
                    let add: f64 = if mean_work > 0.0 {
                        rng.gen_range(0.0..mean_work)
                    } else {
                        0.0
                    };
                    *v = *v * mult + add;
                }
            }
        }

        self.d_total.clear();
        self.d_total.extend(
            (0..job.num_tasks()).map(|i| self.d[i * self.k..(i + 1) * self.k].iter().sum::<f64>()),
        );

        // Class table for the incremental index: tasks with bitwise-
        // identical descendant rows share a class (and therefore identical
        // projected rows at every working state — the grouping the index's
        // dominance frontier is built over).
        let n = job.num_tasks();
        let k = self.k;
        let d = &self.d;
        let row_bits = |t: u32| {
            d[t as usize * k..t as usize * k + k]
                .iter()
                .map(|x| x.to_bits())
        };
        self.class_scratch.clear();
        self.class_scratch.extend(0..n as u32);
        self.class_scratch
            .sort_unstable_by(|&a, &b| row_bits(a).cmp(row_bits(b)));
        self.row_class.clear();
        self.row_class.resize(n, 0);
        self.class_rep.clear();
        let mut prev: Option<u32> = None;
        for &t in &self.class_scratch {
            if prev.is_none_or(|p| !row_bits(p).eq(row_bits(t))) {
                self.class_rep.push(t);
            }
            self.row_class[t as usize] = (self.class_rep.len() - 1) as u32;
            prev = Some(t);
        }

        self.need_rebuild = true;
        self.sel = SelectionStats::default();
    }

    /// Brings the incremental index up to date with this epoch's queues:
    /// replays each queue's change-journal from the remembered cursor, or
    /// rebuilds cold from queue snapshots when the policy was (re)attached
    /// or the journal doesn't account for the queues (hand-built views).
    fn sync_index(&mut self, view: &EpochView<'_>) {
        let k = self.k;
        if !self.need_rebuild {
            let subtract_own = self.tuning.subtract_own_work;
            for alpha in 0..k {
                let q = &view.queues[alpha];
                let (gen, off) = self.cursor[alpha];
                let start = if q.journal_gen() == gen { off } else { 0 };
                let events = &q.journal()[start..];
                if !events.is_empty() {
                    self.sel.diff_events += events.len() as u64;
                    let mut cx = IndexCtx {
                        k,
                        subtract_own,
                        d: &self.d,
                        d_total: &self.d_total,
                        row_class: &self.row_class,
                        class_rep: &self.class_rep,
                        ix: &mut self.idx[alpha],
                        m_group: &mut self.m_group,
                        m_prev: &mut self.m_prev,
                        m_next: &mut self.m_next,
                        m_seq: &mut self.m_seq,
                        m_rem: &mut self.m_rem,
                    };
                    for ev in events {
                        match *ev {
                            QueueEvent::Pushed(rt) => {
                                cx.insert_member(rt.id.index(), rt.seq, rt.remaining);
                            }
                            QueueEvent::Removed(id) => {
                                // Skip-if-absent: picks on the indexed path
                                // already removed their member.
                                let t = id.index();
                                if cx.m_group[t] != NONE {
                                    cx.remove_member(t);
                                }
                            }
                            QueueEvent::Updated { id, remaining } => {
                                let t = id.index();
                                if cx.m_group[t] == NONE {
                                    continue;
                                }
                                if subtract_own {
                                    // Remaining work is part of the group
                                    // key: regroup under the new value.
                                    let seq = cx.m_seq[t];
                                    cx.remove_member(t);
                                    cx.insert_member(t, seq, remaining);
                                } else {
                                    cx.m_rem[t] = remaining;
                                }
                            }
                        }
                    }
                }
                self.cursor[alpha] = (q.journal_gen(), q.journal().len());
            }
            // Defense-in-depth: a view whose queues the journal doesn't
            // explain (hand-built in tests) forces a cold rebuild.
            if (0..k).any(|a| self.idx[a].live != view.queues[a].len()) {
                self.need_rebuild = true;
            }
        }
        if self.need_rebuild {
            self.rebuild_index(view);
            self.need_rebuild = false;
        }
    }

    /// Cold rebuild: resets the member arrays and every type's index, then
    /// reinserts all queued candidates from the view's queues.
    fn rebuild_index(&mut self, view: &EpochView<'_>) {
        self.sel.cold_snapshots += 1;
        let k = self.k;
        let n = view.job.num_tasks();
        self.m_group.clear();
        self.m_group.resize(n, NONE);
        self.m_prev.clear();
        self.m_prev.resize(n, NONE);
        self.m_next.clear();
        self.m_next.resize(n, NONE);
        self.m_seq.clear();
        self.m_seq.resize(n, 0);
        self.m_rem.clear();
        self.m_rem.resize(n, 0);
        for ix in &mut self.idx {
            ix.clear();
        }
        // Never shrink `idx`/`cursor`: truncating would drop warm capacity
        // (the alloc-regression contract covers machine-shape hopping).
        if self.idx.len() < k {
            self.idx.resize_with(k, TypeIndex::default);
        }
        if self.cursor.len() < k {
            self.cursor.resize(k, (0, 0));
        }
        for alpha in 0..k {
            let q = &view.queues[alpha];
            {
                let mut cx = IndexCtx {
                    k,
                    subtract_own: self.tuning.subtract_own_work,
                    d: &self.d,
                    d_total: &self.d_total,
                    row_class: &self.row_class,
                    class_rep: &self.class_rep,
                    ix: &mut self.idx[alpha],
                    m_group: &mut self.m_group,
                    m_prev: &mut self.m_prev,
                    m_next: &mut self.m_next,
                    m_seq: &mut self.m_seq,
                    m_rem: &mut self.m_rem,
                };
                for rt in q.iter() {
                    cx.insert_member(rt.id.index(), rt.seq, rt.remaining);
                }
            }
            self.cursor[alpha] = (q.journal_gen(), q.journal().len());
        }
    }
}

/// Lexicographic comparison of sorted balance vectors; `Greater` means
/// better balanced (paper §IV-A: `R_A > R_B` iff there is a position `j`
/// with `r_{πA(j)} > r_{πB(j)}` and equality before it).
pub fn cmp_balance(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// Scratch for one pick's selection ladder: the incumbent's projected row,
/// the lazily built ascending sorts, and the incumbent's tie-break keys.
/// Shared by the flat scan, the indexed path, and the approximation so a
/// single comparison sequence decides every duel — the paths are
/// bit-identical by construction, not by parallel maintenance.
struct Duel<'a> {
    row: &'a mut Vec<f64>,
    best_row: &'a mut Vec<f64>,
    cand_sorted: &'a mut Vec<f64>,
    best_sorted: &'a mut Vec<f64>,
    best_sorted_valid: bool,
    min_only: bool,
    best_min: f64,
    best_dt: f64,
    best_seq: u64,
    /// Winner so far (caller-defined identifier); `NONE` before the first
    /// challenger.
    best: u32,
}

impl<'a> Duel<'a> {
    fn new(
        row: &'a mut Vec<f64>,
        best_row: &'a mut Vec<f64>,
        cand_sorted: &'a mut Vec<f64>,
        best_sorted: &'a mut Vec<f64>,
        min_only: bool,
    ) -> Duel<'a> {
        Duel {
            row,
            best_row,
            cand_sorted,
            best_sorted,
            best_sorted_valid: false,
            min_only,
            best_min: 0.0,
            best_dt: 0.0,
            best_seq: 0,
            best: NONE,
        }
    }

    /// Challenges the incumbent with the candidate whose projected row is
    /// currently in `self.row` (its minimum pre-computed as `mn`), with
    /// tie-break keys `dt` (total descendant value) and `seq`. On a win the
    /// candidate (identified by `who`) becomes the incumbent. The
    /// comparison sequence — min via `total_cmp`, sorted-lex on bitwise
    /// min-ties (skipped under MinOnly), then larger `d_total`, then
    /// earlier arrival — is exactly the naive algorithm's.
    fn challenge(&mut self, who: u32, mn: f64, dt: f64, seq: u64) {
        let mut cand_sorted_built = false;
        let better = if self.best == NONE {
            true
        } else {
            match mn.total_cmp(&self.best_min) {
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => {
                    // Sorted-lex vectors agree at position 0 (total_cmp
                    // equality is bitwise). Compare the rest — or go
                    // straight to the tie-break under the MinOnly ablation.
                    let rest = if self.min_only {
                        std::cmp::Ordering::Equal
                    } else {
                        if !self.best_sorted_valid {
                            self.best_sorted.clear();
                            self.best_sorted.extend_from_slice(self.best_row);
                            self.best_sorted.sort_unstable_by(f64::total_cmp);
                            self.best_sorted_valid = true;
                        }
                        self.cand_sorted.clear();
                        self.cand_sorted.extend_from_slice(self.row);
                        self.cand_sorted.sort_unstable_by(f64::total_cmp);
                        cand_sorted_built = true;
                        cmp_balance(self.cand_sorted, self.best_sorted)
                    };
                    match rest {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Less => false,
                        std::cmp::Ordering::Equal => {
                            // Tie-break: larger total descendant value,
                            // then earlier arrival.
                            match dt.total_cmp(&self.best_dt) {
                                std::cmp::Ordering::Greater => true,
                                std::cmp::Ordering::Less => false,
                                std::cmp::Ordering::Equal => seq < self.best_seq,
                            }
                        }
                    }
                }
            }
        };
        if better {
            self.best = who;
            self.best_min = mn;
            self.best_dt = dt;
            self.best_seq = seq;
            std::mem::swap(self.best_row, self.row);
            if cand_sorted_built {
                std::mem::swap(self.best_sorted, self.cand_sorted);
                self.best_sorted_valid = true;
            } else {
                self.best_sorted_valid = false;
            }
        }
    }
}

/// One-step descendant values: type-`α` work of immediate children only,
/// split across their parents.
fn one_step_descendants(job: &KDag) -> Vec<f64> {
    let k = job.num_types();
    let mut d = vec![0.0f64; job.num_tasks() * k];
    for v in job.tasks() {
        let row = v.index() * k;
        for &u in job.children(v) {
            let pr = job.num_parents(u) as f64;
            d[row + job.rtype(u)] += job.work(u) as f64 / pr;
        }
    }
    d
}

impl Mqb {
    /// Contested round, flat path: evaluates every untaken candidate per
    /// pick. Exact, and fastest below [`INDEX_CROSSOVER`].
    ///
    /// Gather the candidates' descendant rows contiguously once (a pure
    /// copy, so every value is bit-identical to indexing `d` directly),
    /// then evaluate each pick by streaming over `erows`: a candidate's
    /// projected row is recomputed fresh from the current working vector —
    /// the exact computation the naive algorithm performs — and the
    /// lexicographic comparison short-circuits on the sorted vectors'
    /// *first* element (the minimum), which decides almost every duel.
    /// Full ascending sorts are built only on bitwise min-ties.
    fn assign_flat(
        &mut self,
        view: &EpochView<'_>,
        alpha: usize,
        slots: usize,
        out: &mut Assignments,
    ) {
        let k = self.k;
        let procs = view.config.procs_per_type();
        view.queues[alpha].collect_into(&mut self.snap);
        let m = self.snap.len();
        self.taken.clear();
        self.taken.resize(m, false);
        self.erows.clear();
        for qi in 0..m {
            let row_start = self.snap[qi].id.index() * k;
            self.erows
                .extend_from_slice(&self.d[row_start..row_start + k]);
        }
        let min_only = matches!(self.tuning.balance, BalanceMetric::MinOnly);
        let subtract_own = self.tuning.subtract_own_work;
        self.row.clear();
        self.row.resize(k, 0.0);
        self.best_row.clear();
        self.best_row.resize(k, 0.0);

        for _ in 0..slots {
            let mut duel = Duel::new(
                &mut self.row,
                &mut self.best_row,
                &mut self.cand_sorted,
                &mut self.best_sorted,
                min_only,
            );
            let mut evaluated = 0u64;
            for qi in 0..m {
                if self.taken[qi] {
                    continue;
                }
                let rt = self.snap[qi];
                evaluated += 1;
                // The candidate's projected x-utilization row: working
                // value plus its descendant promise, minus its own work
                // leaving its queue, over the processor count. The
                // floating-point operation order here is load-bearing —
                // it reproduces the naive per-pick evaluation bit for
                // bit (and the indexed path reproduces it in turn).
                let ebase = qi * k;
                for (beta, &p) in procs.iter().enumerate() {
                    let mut l = self.working[beta] + self.erows[ebase + beta];
                    if beta == alpha && subtract_own {
                        l -= rt.remaining as f64;
                    }
                    duel.row[beta] = l / p as f64;
                }
                let mut mn = duel.row[0];
                for &x in &duel.row[1..] {
                    if x.total_cmp(&mn).is_lt() {
                        mn = x;
                    }
                }
                duel.challenge(qi as u32, mn, self.d_total[rt.id.index()], rt.seq);
            }
            assert_ne!(duel.best, NONE, "queue longer than slots");
            let bqi = duel.best as usize;
            self.taken[bqi] = true;
            let rt = self.snap[bqi];
            out.push(alpha, rt.id);
            self.sel.candidates_evaluated += evaluated;
            self.apply_projection(alpha, &rt);
        }
    }

    /// Contested round, indexed path: evaluates only the dominance-frontier
    /// group heads — provably the only candidates that can win the pick
    /// (DESIGN.md §14) — with the same ladder as the flat scan, so the
    /// chosen task is bit-identical. Picks update the index directly (the
    /// queue itself is untouched until the engine acts on the choices).
    fn assign_indexed(
        &mut self,
        view: &EpochView<'_>,
        alpha: usize,
        slots: usize,
        out: &mut Assignments,
    ) {
        let k = self.k;
        let procs = view.config.procs_per_type();
        let min_only = matches!(self.tuning.balance, BalanceMetric::MinOnly);
        let subtract_own = self.tuning.subtract_own_work;
        self.row.clear();
        self.row.resize(k, 0.0);
        self.best_row.clear();
        self.best_row.resize(k, 0.0);
        self.picked.clear();
        let mut cx = IndexCtx {
            k,
            subtract_own,
            d: &self.d,
            d_total: &self.d_total,
            row_class: &self.row_class,
            class_rep: &self.class_rep,
            ix: &mut self.idx[alpha],
            m_group: &mut self.m_group,
            m_prev: &mut self.m_prev,
            m_next: &mut self.m_next,
            m_seq: &mut self.m_seq,
            m_rem: &mut self.m_rem,
        };

        for _ in 0..slots {
            let mut duel = Duel::new(
                &mut self.row,
                &mut self.best_row,
                &mut self.cand_sorted,
                &mut self.best_sorted,
                min_only,
            );
            let mut evaluated = 0u64;
            for fi in 0..cx.ix.frontier.len() {
                let head = cx.ix.groups[cx.ix.frontier[fi] as usize].head as usize;
                let rem = cx.m_rem[head];
                evaluated += 1;
                // Same fp operation order as the flat scan — load-bearing.
                let ebase = head * k;
                for (beta, &p) in procs.iter().enumerate() {
                    let mut l = self.working[beta] + cx.d[ebase + beta];
                    if beta == alpha && subtract_own {
                        l -= rem as f64;
                    }
                    duel.row[beta] = l / p as f64;
                }
                let mut mn = duel.row[0];
                for &x in &duel.row[1..] {
                    if x.total_cmp(&mn).is_lt() {
                        mn = x;
                    }
                }
                duel.challenge(head as u32, mn, cx.d_total[head], cx.m_seq[head]);
            }
            assert_ne!(duel.best, NONE, "queue longer than slots");
            let t = duel.best as usize;
            out.push(alpha, TaskId::from_index(t));
            self.sel.candidates_evaluated += evaluated;
            self.sel.candidates_pruned += cx.ix.live as u64 - evaluated;
            // The projection, inlined (`apply_projection` would re-borrow
            // all of `self` while `cx` holds the index).
            self.working[alpha] -= cx.m_rem[t] as f64;
            let row_start = t * k;
            for (beta, w) in self.working.iter_mut().enumerate() {
                *w += cx.d[row_start + beta];
            }
            if view.preemptive {
                self.picked.push(t as u32);
            }
            cx.remove_member(t);
        }
        // Preemptive picks stay queued (the engine progresses rather than
        // starts them): they re-enter the index for the next epoch. Their
        // queue entries are untouched, so seq/rem mirrors are still valid.
        for i in 0..self.picked.len() {
            let t = self.picked[i] as usize;
            let (seq, rem) = (cx.m_seq[t], cx.m_rem[t]);
            cx.insert_member(t, seq, rem);
        }
    }

    /// Contested round, bounded-candidate approximation (`MQB-Approx`):
    /// ranks the round's candidates once by the cheap priority — total
    /// descendant value descending, then arrival — and evaluates at most
    /// `cap` untaken candidates per pick with the exact selection ladder.
    fn assign_approx(
        &mut self,
        view: &EpochView<'_>,
        alpha: usize,
        slots: usize,
        cap: usize,
        out: &mut Assignments,
    ) {
        let k = self.k;
        let cap = cap.max(1);
        let procs = view.config.procs_per_type();
        view.queues[alpha].collect_into(&mut self.snap);
        let m = self.snap.len();
        self.taken.clear();
        self.taken.resize(m, false);
        // Only the first `cap + slots - 1` candidates in priority order are
        // ever reachable: pick `i` stops after `cap` untaken evaluations,
        // and the `i` tasks taken before it all sit in that same prefix.
        // So a partial selection of the prefix — instead of a full sort of
        // the round's whole queue — is pick- and counter-identical, and
        // the expanded descendant rows need mirroring only for the prefix.
        // At Huge scale the queue dwarfs `cap + slots` by two orders of
        // magnitude; the full sort/mirror was what made the "approximation"
        // slower than the exact index.
        //
        // The ranking key is packed into one integer per candidate so the
        // selection compares values in place of a `snap`/`d_total` pointer
        // chase per comparison (the chase dominated the round cost at the
        // Large rung, where the queue is hundreds long but `cap + slots`
        // already covers a sixth of it). `to_bits` with the sign-fold
        // reproduces `f64::total_cmp` exactly, complemented for descending
        // total descendant value; the arrival seq in the low bits breaks
        // ties ascending, and is unique per queued entry, so the packed
        // order is bitwise the comparator's.
        let l = m.min(cap + slots - 1);
        self.approx_keys.clear();
        self.approx_keys
            .extend(self.snap.iter().enumerate().map(|(qi, rt)| {
                let b = self.d_total[rt.id.index()].to_bits();
                let asc = if b >> 63 == 1 { !b } else { b | (1 << 63) };
                ((!asc as u128) << 64 | rt.seq as u128, qi as u32)
            }));
        if l > 0 && l < m {
            self.approx_keys.select_nth_unstable(l - 1);
        }
        self.approx_keys[..l].sort_unstable();
        self.approx_order.clear();
        self.approx_order
            .extend(self.approx_keys[..l].iter().map(|&(_, qi)| qi));
        self.erows.clear();
        for oi in 0..l {
            let row_start = self.snap[self.approx_order[oi] as usize].id.index() * k;
            self.erows
                .extend_from_slice(&self.d[row_start..row_start + k]);
        }
        let min_only = matches!(self.tuning.balance, BalanceMetric::MinOnly);
        let subtract_own = self.tuning.subtract_own_work;
        // Window-local reconstruction of the exact index's pruning
        // structure (DESIGN.md §14), built once per α-round from the
        // state-free relations and consulted by every pick of the round.
        //
        // Grouping: window positions with the same `(row class, dominance
        // remaining-work key)` project bitwise-identical rows at every
        // working state, and the duel's final seq tie-break always favors
        // the earliest untaken member — the group's *live head* — so only
        // live heads ever duel. Groups are found exactly (same-group
        // members interleave with other rem-variants of their class in the
        // seq-ordered window) by sorting the positions on a packed key,
        // reusing the ranking scratch.
        //
        // Group dominance: a group whose rep has a pointwise-`≥`
        // descendant row, no larger remaining work, and strictly larger
        // total descendant value projects a `≥` row at every working
        // state, with the strict `d_total` settling full ties before seq
        // — so its live head strictly beats every member of the dominated
        // group in every duel, for as long as the dominating group has an
        // untaken member in the window. Checked against the running
        // frontier (the undominated reps), which stays small on layered
        // workloads.
        self.approx_keys.clear();
        self.approx_keys.extend((0..l).map(|j| {
            let rt = &self.snap[self.approx_order[j] as usize];
            let rem_key = if subtract_own { rt.remaining } else { 0 };
            (
                ((self.row_class[rt.id.index()] as u128) << 64) | rem_key as u128,
                j as u32,
            )
        }));
        self.approx_keys.sort_unstable();
        self.approx_group.clear();
        self.approx_group.resize(l, 0);
        self.approx_next.clear();
        self.approx_next.resize(l, NONE);
        self.approx_live.clear();
        self.approx_gdom.clear();
        let mut cur = NONE;
        for i in 0..l {
            let pos = self.approx_keys[i].1 as usize;
            if i > 0 && self.approx_keys[i].0 == self.approx_keys[i - 1].0 {
                // Members of a run sort pos-ascending, i.e. seq-ascending.
                self.approx_next[self.approx_keys[i - 1].1 as usize] = pos as u32;
            } else {
                cur = self.approx_live.len() as u32;
                self.approx_live.push(pos as u32);
                self.approx_gdom.push(NONE);
            }
            self.approx_group[pos] = cur;
        }
        let num_groups = self.approx_live.len();
        self.approx_kid_head.clear();
        self.approx_kid_head.resize(num_groups, NONE);
        self.approx_kid_next.clear();
        self.approx_kid_next.resize(num_groups, NONE);
        self.approx_front.clear();
        for j in 0..l {
            let g = self.approx_group[j] as usize;
            if self.approx_live[g] as usize != j {
                continue; // not its group's rep
            }
            let rtj = &self.snap[self.approx_order[j] as usize];
            let dtj = self.d_total[rtj.id.index()];
            let ej = &self.erows[j * k..j * k + k];
            let mut dom = NONE;
            for &i in &self.approx_front {
                let rti = &self.snap[self.approx_order[i as usize] as usize];
                if subtract_own && rti.remaining > rtj.remaining {
                    continue;
                }
                if self.d_total[rti.id.index()] <= dtj {
                    continue;
                }
                let ei = &self.erows[i as usize * k..i as usize * k + k];
                if ei.iter().zip(ej).all(|(x, y)| x >= y) {
                    dom = self.approx_group[i as usize];
                    break;
                }
            }
            if dom == NONE {
                self.approx_front.push(j as u32);
            } else {
                self.approx_gdom[g] = dom;
                self.approx_kid_next[g] = self.approx_kid_head[dom as usize];
                self.approx_kid_head[dom as usize] = g as u32;
            }
        }
        self.row.clear();
        self.row.resize(k, 0.0);
        self.best_row.clear();
        self.best_row.resize(k, 0.0);

        // Per pick, the bounded scan reaches exactly the first `cap`
        // untaken window positions, and each reachable candidate is
        // either a live undominated head or beaten by one at a strictly
        // earlier position (a dominating group's members all have
        // strictly larger `d_total`, so they all rank earlier; a group's
        // live head is its earliest untaken member; a dead witness
        // chain's replacement comes from the front, again earlier). The
        // duel winner is the max of a strict total order — `seq` is
        // unique, so there are no full ties — making challenge order
        // immaterial: dueling just the live front heads inside the scan
        // horizon is pick-identical to scanning the whole window, and
        // the evaluation counters collapse to closed form (the scan
        // always evaluates `min(cap, untaken positions in window)`).
        //
        // The horizon — the window position of the `cap`-th untaken
        // entry — follows from the sorted positions taken so far: each
        // taken position at or before it shifts it one right.
        let mut left = m as u64;
        self.approx_taken_pos.clear();
        for _ in 0..slots {
            let mut cutoff = cap - 1;
            for &t in &self.approx_taken_pos {
                if t as usize <= cutoff {
                    cutoff += 1;
                } else {
                    break;
                }
            }
            let cutoff = cutoff.min(l - 1);
            let mut duel = Duel::new(
                &mut self.row,
                &mut self.best_row,
                &mut self.cand_sorted,
                &mut self.best_sorted,
                min_only,
            );
            let mut best_oi = 0usize;
            // The front is compacted in place as it is walked: a group
            // with no live member left is dead for the rest of the
            // round, so its entry is dropped — the walk stays
            // proportional to the *live* undominated groups even as
            // orphans keep joining the front over the round.
            let mut w = 0usize;
            let mut fi = 0usize;
            while fi < self.approx_front.len() {
                let fpos = self.approx_front[fi];
                fi += 1;
                let fg = self.approx_group[fpos as usize] as usize;
                let lp = self.approx_live[fg];
                if lp == NONE {
                    continue;
                }
                self.approx_front[w] = fpos;
                w += 1;
                if lp as usize > cutoff {
                    continue;
                }
                let oi = lp as usize;
                let qi = self.approx_order[oi] as usize;
                let rt = self.snap[qi];
                // Rows are mirrored in prefix (priority) order, not
                // snapshot order.
                let ebase = oi * k;
                for (beta, &p) in procs.iter().enumerate() {
                    let mut load = self.working[beta] + self.erows[ebase + beta];
                    if beta == alpha && subtract_own {
                        load -= rt.remaining as f64;
                    }
                    duel.row[beta] = load / p as f64;
                }
                let mut mn = duel.row[0];
                for &x in &duel.row[1..] {
                    if x.total_cmp(&mn).is_lt() {
                        mn = x;
                    }
                }
                duel.challenge(qi as u32, mn, self.d_total[rt.id.index()], rt.seq);
                if duel.best == qi as u32 {
                    best_oi = oi;
                }
            }
            self.approx_front.truncate(w);
            assert_ne!(duel.best, NONE, "queue longer than slots");
            let bqi = duel.best as usize;
            self.taken[bqi] = true;
            let evaluated = (cap as u64).min((l - self.approx_taken_pos.len()) as u64);
            let ins = self
                .approx_taken_pos
                .partition_point(|&t| (t as usize) < best_oi);
            self.approx_taken_pos.insert(ins, best_oi as u32);
            // The winner was its group's live head; the next member (if
            // any) steps up, untaken by construction — only live heads
            // are ever picked.
            let bg = self.approx_group[best_oi] as usize;
            self.approx_live[bg] = self.approx_next[best_oi];
            if self.approx_live[bg] == NONE {
                // The group is exhausted: re-home its dominated children
                // now (the exact index re-parents orphans on group death
                // the same way). Each child hunts for a live replacement
                // witness on the front, and joins the front itself when
                // no live front group dominates it — from the next pick
                // on its live head duels like any other front head. A
                // child that exhausted while beaten passes its own
                // children up instead (defensive; beaten groups are
                // never picked from, so it shouldn't occur).
                self.approx_orphans.clear();
                let mut kid = self.approx_kid_head[bg];
                self.approx_kid_head[bg] = NONE;
                while kid != NONE {
                    self.approx_orphans.push(kid);
                    kid = self.approx_kid_next[kid as usize];
                }
                while let Some(gi) = self.approx_orphans.pop() {
                    let g = gi as usize;
                    self.approx_kid_next[g] = NONE;
                    if self.approx_live[g] == NONE {
                        let mut kid = self.approx_kid_head[g];
                        self.approx_kid_head[g] = NONE;
                        while kid != NONE {
                            self.approx_orphans.push(kid);
                            kid = self.approx_kid_next[kid as usize];
                        }
                        continue;
                    }
                    let oj = self.approx_live[g] as usize;
                    let rtj = self.snap[self.approx_order[oj] as usize];
                    let dtj = self.d_total[rtj.id.index()];
                    let ej = &self.erows[oj * k..oj * k + k];
                    let mut dom = NONE;
                    for &i in &self.approx_front {
                        let fg = self.approx_group[i as usize] as usize;
                        if self.approx_live[fg] == NONE {
                            continue;
                        }
                        let rti = &self.snap[self.approx_order[i as usize] as usize];
                        if subtract_own && rti.remaining > rtj.remaining {
                            continue;
                        }
                        if self.d_total[rti.id.index()] <= dtj {
                            continue;
                        }
                        let ei = &self.erows[i as usize * k..i as usize * k + k];
                        if ei.iter().zip(ej).all(|(x, y)| x >= y) {
                            dom = fg as u32;
                            break;
                        }
                    }
                    self.approx_gdom[g] = dom;
                    if dom == NONE {
                        self.approx_front.push(oj as u32);
                    } else {
                        self.approx_kid_next[g] = self.approx_kid_head[dom as usize];
                        self.approx_kid_head[dom as usize] = gi;
                    }
                }
            }
            let rt = self.snap[bqi];
            out.push(alpha, rt.id);
            self.sel.candidates_evaluated += evaluated;
            self.sel.candidates_pruned += left - evaluated;
            left -= 1;
            self.apply_projection(alpha, &rt);
        }
    }
}

impl Policy for Mqb {
    fn name(&self) -> &str {
        // The bounded-candidate variant is a first-class policy of its own
        // (`Algorithm::MqbApprox`); its name must match that label.
        if self.tuning.max_candidates.is_some() {
            return "MQB-Approx";
        }
        // The plain name for the default model; experiments use
        // `InfoModel::label` for the §V-G variants.
        match (self.info.lookahead, self.info.accuracy) {
            (Lookahead::All, Accuracy::Precise) => "MQB",
            _ => self.info.label(),
        }
    }

    fn init(&mut self, job: &KDag, _config: &MachineConfig, seed: u64) {
        match self.info.lookahead {
            Lookahead::All => {
                let dv = DescendantValues::compute(job);
                self.set_d_from(dv.values());
            }
            Lookahead::OneStep => self.d = one_step_descendants(job),
        }
        self.finish_init(job, seed);
    }

    fn init_with_artifacts(
        &mut self,
        job: &KDag,
        _config: &MachineConfig,
        seed: u64,
        artifacts: &Arc<Artifacts>,
    ) {
        match self.info.lookahead {
            // The artifact values are bit-identical to a cold
            // `DescendantValues::compute` (same sweep, same order).
            Lookahead::All => self.set_d_from(artifacts.descendants().values()),
            // One-step lookahead is not part of the bundle (it's a plain
            // O(|V|+|E|) pass with no topo sort) — compute it as `init` does.
            Lookahead::OneStep => self.d = one_step_descendants(job),
        }
        self.finish_init(job, seed);
    }

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        let k = self.k;
        debug_assert_eq!(k, view.config.num_types());

        let approx_cap = self.tuning.max_candidates;
        if approx_cap.is_none() {
            // Exact mode keeps the incremental index current every epoch —
            // journal diffs are O(changes) even in epochs the flat path
            // serves, and the index must be ready when a round crosses the
            // size threshold.
            self.sync_index(view);
        }

        // Working queue-work vector, updated as selections are made.
        self.working.clear();
        self.working
            .extend(view.queue_work.iter().map(|&w| w as f64));

        for alpha in 0..k {
            let queue = &view.queues[alpha];
            let slots = view.slots[alpha];
            if slots == 0 || queue.is_empty() {
                continue;
            }
            if queue.len() <= slots {
                // Run them all; still project their effect for the types
                // not yet processed in this epoch.
                queue.collect_into(&mut self.snap);
                for qi in 0..self.snap.len() {
                    let rt = self.snap[qi];
                    out.push(alpha, rt.id);
                    self.apply_projection(alpha, &rt);
                }
                continue;
            }
            match approx_cap {
                Some(cap) => self.assign_approx(view, alpha, slots, cap, out),
                None if queue.len() > INDEX_CROSSOVER => {
                    self.assign_indexed(view, alpha, slots, out)
                }
                None => self.assign_flat(view, alpha, slots, out),
            }
        }
    }

    fn reset_in(&mut self, _workspace: &mut fhs_sim::Workspace) {
        // The selection scratch is sized inside `assign` and `init`
        // rebuilds `d`/`d_total`, so nothing *must* be cleared — this
        // override just drops stale candidate data eagerly so a policy
        // kept warm across runs by the pooled runner never carries
        // task ids from a previous instance. Capacity is retained.
        self.working.clear();
        self.taken.clear();
        self.snap.clear();
        self.erows.clear();
        self.row.clear();
        self.best_row.clear();
        self.cand_sorted.clear();
        self.best_sorted.clear();
        self.picked.clear();
        self.approx_order.clear();
        self.approx_keys.clear();
        self.approx_group.clear();
        self.approx_next.clear();
        self.approx_live.clear();
        self.approx_gdom.clear();
        self.approx_front.clear();
        self.approx_taken_pos.clear();
        self.approx_kid_head.clear();
        self.approx_kid_next.clear();
        self.approx_orphans.clear();
        self.need_rebuild = true;
    }

    fn detach_job(&mut self) {
        // Session retirement: drop this job's perturbed descendant tables
        // and any candidate scratch eagerly (task ids and values are
        // meaningless for the next job; `attach_job` rebuilds them).
        // Capacity is retained for the recycle pool.
        self.d.clear();
        self.d_total.clear();
        self.working.clear();
        self.taken.clear();
        self.snap.clear();
        self.erows.clear();
        self.row.clear();
        self.best_row.clear();
        self.cand_sorted.clear();
        self.best_sorted.clear();
        self.row_class.clear();
        self.class_rep.clear();
        self.m_group.clear();
        self.m_prev.clear();
        self.m_next.clear();
        self.m_seq.clear();
        self.m_rem.clear();
        for ix in &mut self.idx {
            ix.clear();
        }
        self.picked.clear();
        self.approx_order.clear();
        self.approx_keys.clear();
        self.approx_group.clear();
        self.approx_next.clear();
        self.approx_live.clear();
        self.approx_gdom.clear();
        self.approx_front.clear();
        self.approx_taken_pos.clear();
        self.approx_kid_head.clear();
        self.approx_kid_next.clear();
        self.approx_orphans.clear();
        self.need_rebuild = true;
    }

    fn take_selection_stats(&mut self) -> Option<SelectionStats> {
        Some(std::mem::take(&mut self.sel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhs_sim::{engine, metrics, MachineConfig, Mode, RunOptions};
    use kdag::KDagBuilder;

    #[test]
    fn cmp_balance_is_lexicographic_on_sorted_vectors() {
        use std::cmp::Ordering::*;
        assert_eq!(cmp_balance(&[1.0, 5.0], &[0.5, 9.0]), Greater);
        assert_eq!(cmp_balance(&[1.0, 5.0], &[1.0, 6.0]), Less);
        assert_eq!(cmp_balance(&[1.0, 5.0], &[1.0, 5.0]), Equal);
    }

    #[test]
    fn picks_the_task_that_feeds_the_starved_queue() {
        // Two ready type-0 tasks on one type-0 processor:
        //  * `feeds1` unlocks heavy type-1 work,
        //  * `feeds0` unlocks more type-0 work.
        // The type-1 queue is empty (starved), so MQB must pick `feeds1`.
        let mut b = KDagBuilder::new(2);
        let feeds0 = b.add_task(0, 1);
        let c0 = b.add_task(0, 5);
        b.add_edge(feeds0, c0).unwrap();
        let feeds1 = b.add_task(0, 1);
        let c1 = b.add_task(1, 5);
        b.add_edge(feeds1, c1).unwrap();
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 1]);
        let out = engine::run(
            &job,
            &cfg,
            &mut Mqb::default(),
            Mode::NonPreemptive,
            &RunOptions::seeded(0).with_trace(),
        );
        let tr = out.trace.unwrap();
        let first = tr.segments().iter().min_by_key(|s| s.start).unwrap();
        assert_eq!(first.task, feeds1, "MQB must feed the starved type-1 pool");
        // feeds1@0, c1 runs 1..6 while feeds0@1 and c0 2..7: makespan 7.
        assert_eq!(out.makespan, 7);
    }

    #[test]
    fn one_step_descendants_see_only_children() {
        // chain: v -> a(type1,w2) -> b(type1,w8)
        let mut b = KDagBuilder::new(2);
        let v = b.add_task(0, 1);
        let a = b.add_task(1, 2);
        let c = b.add_task(1, 8);
        b.add_edge(v, a).unwrap();
        b.add_edge(a, c).unwrap();
        let job = b.build().unwrap();
        let d1 = one_step_descendants(&job);
        assert_eq!(d1[v.index() * 2 + 1], 2.0); // only the child, not the grandchild
        let mut full = Mqb::default();
        full.init(&job, &MachineConfig::uniform(2, 1), 0);
        assert_eq!(full.d_row(v)[1], 10.0); // full lookahead sees both
    }

    #[test]
    fn noisy_variants_are_seed_deterministic() {
        let job = kdag::examples::figure1();
        let cfg = MachineConfig::uniform(3, 1);
        for acc in [Accuracy::Exponential, Accuracy::Noisy] {
            let info = InfoModel {
                lookahead: Lookahead::All,
                accuracy: acc,
            };
            let mut a = Mqb::new(info);
            let mut b = Mqb::new(info);
            a.init(&job, &cfg, 42);
            b.init(&job, &cfg, 42);
            assert_eq!(a.d, b.d, "same seed must give same perturbation");
            let mut c = Mqb::new(info);
            c.init(&job, &cfg, 43);
            assert_ne!(a.d, c.d, "different seeds must differ");
        }
    }

    #[test]
    fn all_variants_complete_and_beat_nothing_illegal() {
        let job = kdag::examples::figure1();
        let cfg = MachineConfig::uniform(3, 2);
        for info in InfoModel::ALL_VARIANTS {
            let mut p = Mqb::new(info);
            for mode in [Mode::NonPreemptive, Mode::Preemptive] {
                let r = metrics::evaluate(&job, &cfg, &mut p, mode, 7);
                assert!(r.ratio >= 1.0, "{} ratio {}", info.label(), r.ratio);
            }
        }
    }

    #[test]
    fn labels_are_the_papers() {
        let labels: Vec<&str> = InfoModel::ALL_VARIANTS.iter().map(|i| i.label()).collect();
        assert_eq!(
            labels,
            vec![
                "MQB+All+Pre",
                "MQB+All+Exp",
                "MQB+All+Noise",
                "MQB+1Step+Pre",
                "MQB+1Step+Exp",
                "MQB+1Step+Noise"
            ]
        );
        use fhs_sim::Policy as _;
        assert_eq!(Mqb::default().name(), "MQB");
        assert_eq!(
            Mqb::new(InfoModel {
                lookahead: Lookahead::OneStep,
                accuracy: Accuracy::Noisy
            })
            .name(),
            "MQB+1Step+Noise"
        );
    }

    #[test]
    fn respects_slot_limits_with_large_queues() {
        let mut b = KDagBuilder::new(2);
        for i in 0..20 {
            b.add_task(i % 2, 1 + (i as u64 % 3));
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![2, 3]);
        let out = engine::run(
            &job,
            &cfg,
            &mut Mqb::default(),
            Mode::NonPreemptive,
            &RunOptions::seeded(0).with_trace(),
        );
        fhs_sim::trace::validate(&out.trace.unwrap(), &job, &cfg).unwrap();
    }
}
