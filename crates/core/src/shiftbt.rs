//! ShiftBT — a shifting-bottleneck adaptation for K-DAGs (paper §IV-B).
//!
//! The classical shifting-bottleneck procedure (Adams/Balas/Zawack 1988)
//! sequences job-shop machines one at a time, always fixing the machine
//! whose one-machine relaxation has the worst maximum lateness. The paper
//! adapts it to K-DAG scheduling:
//!
//! * Every task gets a **due date** `due(v) = T∞(J) − span(v)` — the
//!   latest start that cannot delay anything else.
//! * For each not-yet-fixed resource type `α`, a **relaxation** is
//!   simulated in which type `α` keeps its real `P_α` processors and
//!   dispatches by earliest due date (EDD), already-fixed types keep their
//!   processors and their fixed sequences, and all remaining types have
//!   infinitely many processors. The *lateness* of an `α`-task started at
//!   `s(v)` is `s(v) − due(v)`.
//! * The type with the maximum lateness — the current bottleneck — has its
//!   relaxation order frozen as its dispatch sequence; repeat until every
//!   type is sequenced.
//!
//! At run time each type dispatches ready tasks by their position in the
//! frozen sequence.
//!
//! # Incremental sequencing
//!
//! A literal implementation runs K(K+1)/2 full relaxation simulations
//! from scratch. The production path here (bit-identical to the retained
//! [`mod@reference`] loop, proptested) cuts that three ways:
//!
//! * **Cached relaxations.** A type's relaxation from an earlier round
//!   stays valid after type `β` is fixed as long as the cached simulation
//!   never ran more than `P_β` concurrent `β`-tasks: if the infinite
//!   capacity was never exercised past the real capacity, the
//!   finite-capacity re-simulation dispatches every ready `β`-task
//!   immediately too and the trajectories coincide by induction. Each
//!   cached entry records the peak per-type concurrency it observed and
//!   is invalidated only when the newly fixed type's peak exceeds its
//!   real processor count.
//! * **Lateness-bound early exit.** Once every target-type task has
//!   started, the relaxation's maximum lateness and start order are fully
//!   determined — the remaining simulation can only add zero — so the
//!   simulation stops there. Peaks are measured on the same truncated
//!   window, which keeps the invalidation rule sound: a still-valid cache
//!   replays the identical (truncated) trajectory.
//! * **Near-constant-time event machinery.** Types at infinite capacity
//!   can never wait, so their tasks start the instant they become ready
//!   and touch no queue at all. Finite-capacity types dispatch through a
//!   three-level bitset over *precomputed ranks* (the per-type EDD order
//!   is sorted once per sequencing; fixed types use their frozen
//!   sequence positions), so pop-min is a few word operations instead of
//!   a heap pop — and selects exactly the sorted prefix the reference's
//!   per-epoch full sort selects. Completion events live in a circular
//!   calendar sized by the job's largest work value (production work
//!   values are 1–2; a binary heap covers pathological jobs). All of it
//!   sits in a per-policy `RelaxScratch` sized once per job and reused
//!   across rounds and — on a warm policy — across instances, in the
//!   spirit of the PR-3 steady-state layer.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use fhs_sim::{Assignments, EpochView, MachineConfig, Policy};
use kdag::precompute::Artifacts;
use kdag::{duedate, KDag, TaskId};

use crate::ranked::Selector;

/// Shifting-bottleneck policy. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct ShiftBT {
    rank: Vec<f64>,
    selector: Selector,
    /// Bottleneck order chosen during [`Policy::init`] (most-late type
    /// first); exposed for tests and ablations.
    pub bottleneck_order: Vec<usize>,
    scratch: RelaxScratch,
}

/// One cached one-type relaxation: the lateness and start order it
/// produced, plus the peak concurrency per type it observed (the
/// invalidation certificate).
#[derive(Clone, Debug, Default)]
struct CacheEntry {
    valid: bool,
    lateness: i64,
    seq: Vec<TaskId>,
    peaks: Vec<u32>,
}

/// Three-level hierarchical bitset over dense positions — the relaxation
/// dispatch queue. Dispatch priorities are precomputed *ranks* (EDD rank
/// for the target type, frozen-sequence rank for fixed types), so a
/// find-first-set over position bits replaces a binary heap: insert and
/// pop-min are a handful of word operations regardless of queue size.
/// Covers up to 64³ positions per summary word of the top level.
#[derive(Clone, Debug, Default)]
struct MinPosSet {
    l0: Vec<u64>,
    l1: Vec<u64>,
    l2: Vec<u64>,
}

impl MinPosSet {
    /// Sizes for `m` positions and clears. Never shrinks.
    fn reset(&mut self, m: usize) {
        let w0 = m.div_ceil(64).max(1);
        let w1 = w0.div_ceil(64);
        let w2 = w1.div_ceil(64);
        self.l0.clear();
        self.l0.resize(w0, 0);
        self.l1.clear();
        self.l1.resize(w1, 0);
        self.l2.clear();
        self.l2.resize(w2, 0);
    }

    #[inline]
    fn insert(&mut self, pos: usize) {
        self.l0[pos >> 6] |= 1 << (pos & 63);
        self.l1[pos >> 12] |= 1 << ((pos >> 6) & 63);
        self.l2[pos >> 18] |= 1 << ((pos >> 12) & 63);
    }

    /// The index and bits of the lowest nonzero `l0` word, if any.
    /// Consumers take bits in ascending order from the returned word and
    /// write the remainder back with [`MinPosSet::set_word`], amortizing
    /// one hierarchy descent over up to 64 pops.
    #[inline]
    fn lowest_word(&self) -> Option<(usize, u64)> {
        let w2 = self.l2.iter().position(|&w| w != 0)?;
        let b2 = self.l2[w2].trailing_zeros() as usize;
        let i1 = (w2 << 6) | b2;
        let b1 = self.l1[i1].trailing_zeros() as usize;
        let i0 = (i1 << 6) | b1;
        Some((i0, self.l0[i0]))
    }

    /// Stores back a partially consumed `l0` word, propagating clears to
    /// the summary levels when it empties.
    #[inline]
    fn set_word(&mut self, i0: usize, w: u64) {
        self.l0[i0] = w;
        if w == 0 {
            let i1 = i0 >> 6;
            self.l1[i1] &= !(1u64 << (i0 & 63));
            if self.l1[i1] == 0 {
                self.l2[i1 >> 6] &= !(1u64 << (i1 & 63));
            }
        }
    }
}

/// Completion-event queue. Every pending finish time lies in
/// `[now, now + max_work]`, so with the small work values every production
/// workload uses (see `fhs_workloads::WORK_RANGE`) a circular calendar of
/// `> max_work` buckets gives O(1) push and O(max_work) advance; jobs with
/// larger work values fall back to a binary heap.
///
/// The calendar is one flat buffer of `slots × n` task slots: a task
/// completes exactly once per simulation, so `n` bounds every bucket and
/// pushes never check capacity or touch an allocator. Batch order within
/// a bucket is insertion order — within one completion instant the
/// cascade's arithmetic is commutative (busy counts, indegrees, ready-set
/// inserts), so bucket order never affects the relaxation's outputs.
#[derive(Clone, Debug, Default)]
struct Completions {
    /// Flat power-of-two circular calendar: bucket `s` occupies
    /// `flat[s * slot_cap ..][..lens[s]]`.
    flat: Vec<TaskId>,
    lens: Vec<u32>,
    slot_cap: usize,
    mask: u64,
    pending: usize,
    use_heap: bool,
    heap: BinaryHeap<Reverse<(u64, TaskId)>>,
}

/// Largest bucket count served by the calendar path (work values of
/// `RING_SLOTS` and beyond go through the heap).
const RING_SLOTS: usize = 8;

impl Completions {
    /// Empties the queue and picks the representation for `max_work`,
    /// sizing calendar buckets for `n` tasks. Stale `flat` contents are
    /// fine — `lens` gates what is ever read.
    fn reset(&mut self, max_work: u64, min_work: u64, n: usize) {
        self.pending = 0;
        self.heap.clear();
        self.use_heap = max_work as usize >= RING_SLOTS || min_work == 0;
        if !self.use_heap {
            let slots = (max_work as usize + 1).next_power_of_two();
            self.mask = slots as u64 - 1;
            self.slot_cap = n;
            self.lens.clear();
            self.lens.resize(slots, 0);
            if self.flat.len() < slots * n {
                self.flat.resize(slots * n, TaskId::from_index(0));
            }
        }
    }

    #[inline]
    fn push(&mut self, t: u64, v: TaskId) {
        if self.use_heap {
            self.heap.push(Reverse((t, v)));
        } else {
            let s = (t & self.mask) as usize;
            let l = self.lens[s] as usize;
            self.flat[s * self.slot_cap + l] = v;
            self.lens[s] = l as u32 + 1;
            self.pending += 1;
        }
    }

    /// The earliest pending finish time, which is always `>= now`.
    #[inline]
    fn next_time(&self, now: u64) -> Option<u64> {
        if self.use_heap {
            return self.heap.peek().map(|&Reverse((t, _))| t);
        }
        if self.pending == 0 {
            return None;
        }
        (now..=now + self.mask).find(|t| self.lens[(t & self.mask) as usize] != 0)
    }

    /// Claims the batch finishing exactly at `t`: returns the flat range
    /// holding it and marks the bucket empty. The caller reads the range
    /// by index while pushing new events; pushes can never land in a
    /// claimed bucket (`work ≥ 1` and `work < slots` keep them disjoint),
    /// so the range stays intact while it is being consumed.
    #[inline]
    fn claim_at(&mut self, t: u64) -> std::ops::Range<usize> {
        let s = (t & self.mask) as usize;
        let cnt = self.lens[s] as usize;
        self.lens[s] = 0;
        self.pending -= cnt;
        let base = s * self.slot_cap;
        base..base + cnt
    }

    /// Heap-path drain: pops every task finishing exactly at `t` into
    /// `buf` (which must be empty).
    #[inline]
    fn drain_heap_at(&mut self, t: u64, buf: &mut Vec<TaskId>) {
        while let Some(&Reverse((t2, _))) = self.heap.peek() {
            if t2 != t {
                break;
            }
            buf.push(self.heap.pop().expect("peeked").0 .1);
        }
    }
}

/// Reusable relaxation state. Sized by [`RelaxScratch::prepare`] per
/// sequencing call; every buffer keeps its capacity across rounds and
/// across instances on a warm policy.
#[derive(Clone, Debug, Default)]
struct RelaxScratch {
    /// Indegree of every task in the job (template, copied per sim).
    indeg0: Vec<u32>,
    /// Working indegrees of the current simulation.
    indeg: Vec<u32>,
    /// Per-type EDD order: tasks sorted by `(due, id)`, computed once per
    /// sequencing call and shared by every relaxation.
    edd_order: Vec<Vec<TaskId>>,
    /// Per-type ready set over dispatch ranks (EDD rank for the target
    /// type, frozen-sequence rank for fixed types). Infinite-capacity
    /// types never queue: they start the moment they become ready.
    ready: Vec<MinPosSet>,
    /// Calendar/heap of pending finish events.
    completions: Completions,
    /// Batch buffer for tasks finishing at the current instant.
    drain: Vec<TaskId>,
    /// `(start, task)` log of the target type's dispatches.
    starts: Vec<(u64, TaskId)>,
    /// Frozen-sequence position per task, written as each type is fixed
    /// (task type sets are disjoint, so one flat table serves all types).
    seq_rank: Vec<u32>,
    /// Flat per-task dispatch rank of the current relaxation: EDD rank
    /// for the target type, frozen-sequence rank for fixed types.
    dispatch_rank: Vec<u32>,
    /// Which types have been fixed so far.
    fixed: Vec<bool>,
    /// Per-type cached relaxations.
    cache: Vec<CacheEntry>,
    /// Number of tasks of each type.
    type_counts: Vec<u32>,
    /// Largest per-task work in the job (sizes the completion calendar).
    max_work: u64,
    /// Smallest per-task work in the job (`0` forces the heap path: a
    /// zero-work task can finish at the instant being drained).
    min_work: u64,
    /// Per-type capacity of the current sim (`usize::MAX` = infinite).
    cap: Vec<usize>,
    /// Per-type running-task count of the current sim.
    busy: Vec<u32>,
    /// Counting-sort workspace for the per-type EDD orders.
    due_counts: Vec<u32>,
}

impl RelaxScratch {
    /// Sizes every buffer for `job`, precomputes the per-type EDD orders,
    /// and clears all cached state. Buffers never shrink, so a warm policy
    /// re-sequencing the same (or a smaller) job allocates nothing.
    fn prepare(&mut self, job: &KDag, due: &[u64]) {
        let n = job.num_tasks();
        let k = job.num_types();
        self.indeg0.clear();
        self.indeg0
            .extend((0..n).map(|i| job.num_parents(TaskId::from_index(i)) as u32));
        self.type_counts.clear();
        self.type_counts.resize(k, 0);
        self.max_work = 0;
        self.min_work = u64::MAX;
        for v in job.tasks() {
            self.type_counts[job.rtype(v)] += 1;
            self.max_work = self.max_work.max(job.work(v));
            self.min_work = self.min_work.min(job.work(v));
        }
        self.fixed.clear();
        self.fixed.resize(k, false);
        self.seq_rank.clear();
        self.seq_rank.resize(n, 0);
        if self.edd_order.len() < k {
            self.edd_order.resize_with(k, Vec::new);
        }
        for o in &mut self.edd_order[..k] {
            o.clear();
        }
        // Per-type EDD order, keyed by `(due, id)`. Due dates are bounded
        // by the job span, so for every sane workload a counting sort over
        // due values beats the comparison sort: tasks are scattered in
        // ascending id order, which makes ties on `due` fall back to id
        // order — exactly the reference's sort key.
        let max_due = due.iter().copied().max().unwrap_or(0) as usize;
        if max_due <= 8 * n + 64 {
            let stride = max_due + 1;
            self.due_counts.clear();
            self.due_counts.resize(k * stride, 0);
            for v in job.tasks() {
                self.due_counts[job.rtype(v) * stride + due[v.index()] as usize] += 1;
            }
            // In-place exclusive prefix sums turn counts into offsets.
            for alpha in 0..k {
                let row = &mut self.due_counts[alpha * stride..(alpha + 1) * stride];
                let mut acc = 0u32;
                for c in row {
                    let next = acc + *c;
                    *c = acc;
                    acc = next;
                }
                self.edd_order[alpha]
                    .resize(self.type_counts[alpha] as usize, TaskId::from_index(0));
            }
            for v in job.tasks() {
                let slot = job.rtype(v) * stride + due[v.index()] as usize;
                let pos = self.due_counts[slot];
                self.due_counts[slot] += 1;
                self.edd_order[job.rtype(v)][pos as usize] = v;
            }
        } else {
            for v in job.tasks() {
                self.edd_order[job.rtype(v)].push(v);
            }
            for o in &mut self.edd_order[..k] {
                o.sort_unstable_by_key(|&v| (due[v.index()], v));
            }
        }
        if self.ready.len() < k {
            self.ready.resize_with(k, MinPosSet::default);
        }
        if self.cache.len() < k {
            self.cache.resize_with(k, CacheEntry::default);
        }
        for e in &mut self.cache[..k] {
            e.valid = false;
        }
        self.cap.clear();
        self.cap.resize(k, 0);
        self.busy.clear();
        self.busy.resize(k, 0);
    }

    /// Runs the one-type relaxation for `target` and stores the result
    /// (lateness, start order, peak concurrencies) in `cache[target]`.
    /// Exits as soon as every `target` task has started: from that point
    /// the maximum lateness is fully determined.
    ///
    /// The hot loops borrow every scratch field exactly once up front and
    /// read dispatch ranks from one flat per-task table, so admissions and
    /// dispatches compile down to straight array traffic: no per-event
    /// branching on which rank table applies, no method-call boundaries
    /// the optimizer has to reason across.
    fn relax(&mut self, job: &KDag, config: &MachineConfig, target: usize, due: &[u64]) {
        let k = job.num_types();
        for alpha in 0..k {
            self.cap[alpha] = if alpha == target || self.fixed[alpha] {
                config.procs(alpha)
            } else {
                usize::MAX
            };
        }
        self.busy[..k].fill(0);
        self.indeg.clear();
        self.indeg.extend_from_slice(&self.indeg0);
        for alpha in 0..k {
            if self.cap[alpha] != usize::MAX {
                let m = self.type_counts[alpha] as usize;
                self.ready[alpha].reset(m);
            }
        }
        self.completions
            .reset(self.max_work, self.min_work, job.num_tasks());
        self.starts.clear();
        let mut peaks = std::mem::take(&mut self.cache[target].peaks);
        peaks.clear();
        peaks.resize(k, 0);

        // One flat dispatch-rank table for this relaxation: EDD rank for
        // the target type, frozen-sequence rank for fixed types. Entries
        // of infinite-capacity types are stale and never read.
        self.dispatch_rank.clear();
        self.dispatch_rank.extend_from_slice(&self.seq_rank);
        for (i, &v) in self.edd_order[target].iter().enumerate() {
            self.dispatch_rank[v.index()] = i as u32;
        }

        let target_total = self.type_counts[target];
        let mut started_target = 0u32;
        let mut max_lateness = i64::MIN;
        let mut now = 0u64;

        let RelaxScratch {
            indeg,
            edd_order,
            ready,
            completions,
            drain,
            starts,
            cache,
            cap,
            busy,
            dispatch_rank,
            ..
        } = self;
        let indeg = &mut indeg[..];
        let dispatch_rank = &dispatch_rank[..];
        let cap = &cap[..k];
        let busy = &mut busy[..k];
        let peaks_s = &mut peaks[..k];

        // Admission: infinite-capacity types start the moment they become
        // ready (they can never wait, so they bypass the ready sets);
        // finite types enter their type's ready set under their dispatch
        // rank. Starting inside the completion cascade is trajectory-
        // neutral: the task starts at the same `now` a dispatch pass
        // would use.
        macro_rules! admit {
            ($v:expr, $now:expr) => {{
                let v = $v;
                let alpha = job.rtype(v);
                if cap[alpha] == usize::MAX {
                    busy[alpha] += 1;
                    completions.push($now + job.work(v), v);
                } else {
                    ready[alpha].insert(dispatch_rank[v.index()] as usize);
                }
            }};
        }

        for v in job.roots() {
            admit!(v, 0);
        }

        while started_target < target_total {
            // Dispatch at `now`: each finite-capacity type starts its
            // `free` smallest-ranked ready tasks — exactly the sorted
            // prefix the reference implementation takes. Infinite types
            // already started inside the admission step.
            for alpha in 0..k {
                if cap[alpha] == usize::MAX {
                    continue;
                }
                let free = cap[alpha] - busy[alpha] as usize;
                if free == 0 {
                    continue;
                }
                let rq = &mut ready[alpha];
                let order: &[TaskId] = if alpha == target {
                    &edd_order[alpha]
                } else {
                    &cache[alpha].seq
                };
                let is_target = alpha == target;
                let mut taken = 0usize;
                while taken < free {
                    let Some((i0, full)) = rq.lowest_word() else {
                        break;
                    };
                    let base = i0 << 6;
                    let mut w = full;
                    while w != 0 && taken < free {
                        let pos = base | (w.trailing_zeros() as usize);
                        w &= w - 1;
                        let v = order[pos];
                        if is_target {
                            starts.push((now, v));
                            started_target += 1;
                            max_lateness = max_lateness.max(now as i64 - due[v.index()] as i64);
                        }
                        taken += 1;
                        completions.push(now + job.work(v), v);
                    }
                    rq.set_word(i0, w);
                }
                busy[alpha] += taken as u32;
            }
            // Epoch-end concurrency per type; the max over epochs is the
            // trajectory's true interval concurrency (the invalidation
            // certificate), since within an epoch tasks finishing at `now`
            // and tasks starting at `now` never overlap.
            for alpha in 0..k {
                peaks_s[alpha] = peaks_s[alpha].max(busy[alpha]);
            }
            if started_target == target_total {
                break;
            }

            // Advance to the next completion instant and retire the whole
            // batch before the next dispatch pass.
            now = completions
                .next_time(now)
                .expect("target tasks remain, something must be running");
            if completions.use_heap {
                // Heap path; the re-drain loop cascades through any
                // zero-work chains landing at the same instant.
                let mut buf = std::mem::take(drain);
                loop {
                    buf.clear();
                    completions.drain_heap_at(now, &mut buf);
                    if buf.is_empty() {
                        break;
                    }
                    for &v in &buf {
                        busy[job.rtype(v)] -= 1;
                        for &c in job.children(v) {
                            let ci = c.index();
                            indeg[ci] -= 1;
                            if indeg[ci] == 0 {
                                admit!(c, now);
                            }
                        }
                    }
                }
                *drain = buf;
            } else {
                // Calendar path: `work ≥ 1` on this path, so admissions
                // during the batch can never land back at `now`.
                for i in completions.claim_at(now) {
                    let v = completions.flat[i];
                    busy[job.rtype(v)] -= 1;
                    for &c in job.children(v) {
                        let ci = c.index();
                        indeg[ci] -= 1;
                        if indeg[ci] == 0 {
                            admit!(c, now);
                        }
                    }
                }
            }
        }

        starts.sort_unstable_by_key(|&(t, v)| (t, due[v.index()], v));
        let entry = &mut cache[target];
        entry.valid = true;
        entry.lateness = max_lateness;
        entry.peaks = peaks;
        entry.seq.clear();
        entry.seq.extend(starts.iter().map(|&(_, v)| v));
    }
}

impl ShiftBT {
    /// The bottleneck-sequencing loop shared by both init paths. Only the
    /// due-date table is precomputable; the iterated one-type relaxations
    /// depend on the machine configuration and stay here. Bit-identical
    /// to [`reference::bottleneck_sequencing`] (see the module docs for
    /// why the caching and early exit preserve every trajectory).
    fn sequence_bottlenecks(&mut self, job: &KDag, config: &MachineConfig, due: &[u64]) {
        let k = job.num_types();
        let s = &mut self.scratch;
        s.prepare(job, due);
        self.bottleneck_order.clear();

        for _round in 0..k {
            let mut best: Option<(i64, usize)> = None;
            for alpha in 0..k {
                if s.fixed[alpha] {
                    continue;
                }
                if !s.cache[alpha].valid {
                    s.relax(job, config, alpha, due);
                }
                let lateness = s.cache[alpha].lateness;
                let better = match best {
                    None => true,
                    Some((bl, ba)) => lateness > bl || (lateness == bl && alpha < ba),
                };
                if better {
                    best = Some((lateness, alpha));
                }
            }
            let (_, alpha) = best.expect("an unfixed type remains each round");
            for (pos, &v) in s.cache[alpha].seq.iter().enumerate() {
                s.seq_rank[v.index()] = pos as u32;
            }
            s.fixed[alpha] = true;
            self.bottleneck_order.push(alpha);
            // A surviving cache must have kept the newly fixed type within
            // its real capacity, or its trajectory no longer replays.
            for beta in 0..k {
                if beta != alpha
                    && !s.fixed[beta]
                    && s.cache[beta].valid
                    && s.cache[beta].peaks[alpha] as usize > config.procs(alpha)
                {
                    s.cache[beta].valid = false;
                }
            }
        }

        self.rank.clear();
        self.rank.resize(job.num_tasks(), 0.0);
        for v in job.tasks() {
            self.rank[v.index()] = s.seq_rank[v.index()] as f64;
        }
    }

    /// The per-task dispatch rank table built by the last init (each
    /// task's position in its type's frozen sequence). For tests and
    /// ablations.
    pub fn rank_table(&self) -> &[f64] {
        &self.rank
    }
}

impl Policy for ShiftBT {
    fn name(&self) -> &str {
        "ShiftBT"
    }

    fn init(&mut self, job: &KDag, config: &MachineConfig, _seed: u64) {
        let due = duedate::due_dates(job);
        self.sequence_bottlenecks(job, config, &due);
    }

    fn init_with_artifacts(
        &mut self,
        job: &KDag,
        config: &MachineConfig,
        _seed: u64,
        artifacts: &Arc<Artifacts>,
    ) {
        self.sequence_bottlenecks(job, config, artifacts.due_dates());
    }

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        let rank = &self.rank;
        self.selector
            .assign_by_key(view, out, |_, rt| rank[rt.id.index()]);
    }
}

/// The pre-incremental sequencing loop, kept verbatim as the oracle for
/// the equivalence property tests: every round re-simulates every
/// remaining type's relaxation from scratch, to completion, with fresh
/// allocations. O(K²) full simulations — do not call it on Huge
/// instances outside of benchmarks.
pub mod reference {
    use super::*;

    /// Runs the original bottleneck-sequencing loop and returns the
    /// bottleneck order (most-late type first) and the per-task rank
    /// table, exactly as [`ShiftBT`] computes them.
    pub fn bottleneck_sequencing(
        job: &KDag,
        config: &MachineConfig,
        due: &[u64],
    ) -> (Vec<usize>, Vec<f64>) {
        let k = job.num_types();
        let mut fixed: Vec<Option<Vec<u64>>> = vec![None; k];
        let mut bottleneck_order = Vec::new();

        let mut remaining: Vec<usize> = (0..k).collect();
        while !remaining.is_empty() {
            let mut best: Option<(i64, usize, Vec<TaskId>)> = None;
            for &alpha in &remaining {
                let (lateness, seq) = relax(job, config, &fixed, alpha, due);
                let better = match &best {
                    None => true,
                    Some((bl, ba, _)) => lateness > *bl || (lateness == *bl && alpha < *ba),
                };
                if better {
                    best = Some((lateness, alpha, seq));
                }
            }
            let (_, alpha, seq) = best.expect("remaining non-empty");
            let mut ranks = vec![0u64; job.num_tasks()];
            for (pos, &v) in seq.iter().enumerate() {
                ranks[v.index()] = pos as u64;
            }
            fixed[alpha] = Some(ranks);
            bottleneck_order.push(alpha);
            remaining.retain(|&a| a != alpha);
        }

        let mut rank = vec![0.0; job.num_tasks()];
        for v in job.tasks() {
            let alpha = job.rtype(v);
            rank[v.index()] = fixed[alpha].as_ref().expect("all types fixed")[v.index()] as f64;
        }
        (bottleneck_order, rank)
    }

    /// One-type relaxation: simulate the whole job with type `target` at
    /// its real capacity under EDD, fixed types at their capacity under
    /// their frozen sequences, and all other types at infinite capacity.
    /// Returns the maximum start-based lateness over `target`'s tasks
    /// (`i64::MIN` if the type has none) and the `target` tasks in start
    /// order.
    fn relax(
        job: &KDag,
        config: &MachineConfig,
        fixed: &[Option<Vec<u64>>],
        target: usize,
        due: &[u64],
    ) -> (i64, Vec<TaskId>) {
        let k = job.num_types();
        let n = job.num_tasks();
        let mut indeg: Vec<u32> = (0..n)
            .map(|i| job.num_parents(TaskId::from_index(i)) as u32)
            .collect();
        let mut ready: Vec<Vec<TaskId>> = vec![Vec::new(); k];
        for v in job.roots() {
            ready[job.rtype(v)].push(v);
        }
        let capacity: Vec<Option<usize>> = (0..k)
            .map(|a| {
                if a == target || fixed[a].is_some() {
                    Some(config.procs(a))
                } else {
                    None // infinite
                }
            })
            .collect();
        let key = |alpha: usize, v: TaskId| -> u64 {
            if alpha == target {
                due[v.index()]
            } else if let Some(rk) = &fixed[alpha] {
                rk[v.index()]
            } else {
                0 // infinite capacity: order irrelevant
            }
        };

        let mut busy = vec![0usize; k];
        let mut heap: BinaryHeap<Reverse<(u64, TaskId)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut starts: Vec<(u64, TaskId)> = Vec::new();
        let mut max_lateness = i64::MIN;
        let mut done = 0usize;

        while done < n {
            // Dispatch at `now`.
            for alpha in 0..k {
                let free = match capacity[alpha] {
                    Some(c) => c - busy[alpha],
                    None => usize::MAX,
                };
                if free == 0 || ready[alpha].is_empty() {
                    continue;
                }
                ready[alpha].sort_unstable_by_key(|&v| (key(alpha, v), v));
                let take = free.min(ready[alpha].len());
                for &v in ready[alpha].iter().take(take) {
                    if alpha == target {
                        starts.push((now, v));
                        max_lateness = max_lateness.max(now as i64 - due[v.index()] as i64);
                    }
                    busy[alpha] += 1;
                    heap.push(Reverse((now + job.work(v), v)));
                }
                ready[alpha].drain(..take);
            }

            // Advance to the next completion.
            let Reverse((t, v)) = heap.pop().expect("work remains, something must be running");
            now = t;
            let mut finished = vec![v];
            while let Some(&Reverse((t2, _))) = heap.peek() {
                if t2 != now {
                    break;
                }
                finished.push(heap.pop().expect("peeked").0 .1);
            }
            for v in finished {
                busy[job.rtype(v)] -= 1;
                done += 1;
                for &c in job.children(v) {
                    indeg[c.index()] -= 1;
                    if indeg[c.index()] == 0 {
                        ready[job.rtype(c)].push(c);
                    }
                }
            }
        }

        starts.sort_unstable_by_key(|&(t, v)| (t, due[v.index()], v));
        (max_lateness, starts.into_iter().map(|(_, v)| v).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhs_sim::{engine, Mode, RunOptions};
    use kdag::KDagBuilder;

    #[test]
    fn every_type_gets_sequenced_exactly_once() {
        let job = kdag::examples::figure1();
        let cfg = MachineConfig::uniform(3, 2);
        let mut p = ShiftBT::default();
        p.init(&job, &cfg, 0);
        let mut order = p.bottleneck_order.clone();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn edd_within_a_type_prefers_urgent_tasks() {
        // Two independent type-0 tasks; `urgent` heads a long chain (due 0),
        // `slack` is a sink (late due date). One type-0 processor.
        let mut b = KDagBuilder::new(2);
        let slack = b.add_task(0, 1);
        let urgent = b.add_task(0, 1);
        let mut prev = urgent;
        for _ in 0..4 {
            let c = b.add_task(1, 1);
            b.add_edge(prev, c).unwrap();
            prev = c;
        }
        let _ = slack;
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 1]);
        let out = engine::run(
            &job,
            &cfg,
            &mut ShiftBT::default(),
            Mode::NonPreemptive,
            &RunOptions::seeded(0).with_trace(),
        );
        let tr = out.trace.unwrap();
        let first_type0 = tr
            .segments()
            .iter()
            .filter(|s| s.rtype == 0)
            .min_by_key(|s| s.start)
            .unwrap();
        assert_eq!(first_type0.task, urgent);
        assert_eq!(out.makespan, 5); // urgent@0, chain 1..5, slack fits at 1
    }

    #[test]
    fn relaxation_identifies_the_loaded_type_as_bottleneck() {
        // Type 1 carries 10× the work of type 0 on equal processors: it
        // must be sequenced first.
        let mut b = KDagBuilder::new(2);
        let head = b.add_task(0, 1);
        for _ in 0..10 {
            let v = b.add_task(1, 5);
            b.add_edge(head, v).unwrap();
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 2]);
        let mut p = ShiftBT::default();
        p.init(&job, &cfg, 0);
        assert_eq!(p.bottleneck_order[0], 1);
    }

    #[test]
    fn completes_and_conserves_work_in_both_modes() {
        let job = kdag::examples::figure1();
        let cfg = MachineConfig::uniform(3, 1);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let out = engine::run(
                &job,
                &cfg,
                &mut ShiftBT::default(),
                mode,
                &RunOptions::default(),
            );
            assert_eq!(out.busy_time.iter().sum::<u64>(), job.total_work());
        }
    }

    #[test]
    fn incremental_matches_oracle_on_examples() {
        for (job, cfg) in [
            (kdag::examples::figure1(), MachineConfig::uniform(3, 2)),
            (kdag::examples::figure1(), MachineConfig::new(vec![1, 3, 2])),
        ] {
            let due = duedate::due_dates(&job);
            let (order, rank) = reference::bottleneck_sequencing(&job, &cfg, &due);
            let mut p = ShiftBT::default();
            p.init(&job, &cfg, 0);
            assert_eq!(p.bottleneck_order, order);
            assert_eq!(p.rank_table(), &rank[..]);
        }
    }

    #[test]
    fn warm_policy_resequencing_is_stable() {
        // A warm policy re-initialized on a different instance must not
        // leak any cached state from the previous one.
        let job_a = kdag::examples::figure1();
        let cfg_a = MachineConfig::uniform(3, 2);
        let mut b = KDagBuilder::new(2);
        let head = b.add_task(0, 2);
        for _ in 0..6 {
            let v = b.add_task(1, 3);
            b.add_edge(head, v).unwrap();
        }
        let job_b = b.build().unwrap();
        let cfg_b = MachineConfig::new(vec![2, 1]);

        let mut warm = ShiftBT::default();
        warm.init(&job_a, &cfg_a, 0);
        warm.init(&job_b, &cfg_b, 0);
        let mut cold = ShiftBT::default();
        cold.init(&job_b, &cfg_b, 0);
        assert_eq!(warm.bottleneck_order, cold.bottleneck_order);
        assert_eq!(warm.rank_table(), cold.rank_table());

        warm.init(&job_a, &cfg_a, 0);
        let mut cold_a = ShiftBT::default();
        cold_a.init(&job_a, &cfg_a, 0);
        assert_eq!(warm.bottleneck_order, cold_a.bottleneck_order);
        assert_eq!(warm.rank_table(), cold_a.rank_table());
    }
}
