//! ShiftBT — a shifting-bottleneck adaptation for K-DAGs (paper §IV-B).
//!
//! The classical shifting-bottleneck procedure (Adams/Balas/Zawack 1988)
//! sequences job-shop machines one at a time, always fixing the machine
//! whose one-machine relaxation has the worst maximum lateness. The paper
//! adapts it to K-DAG scheduling:
//!
//! * Every task gets a **due date** `due(v) = T∞(J) − span(v)` — the
//!   latest start that cannot delay anything else.
//! * For each not-yet-fixed resource type `α`, a **relaxation** is
//!   simulated in which type `α` keeps its real `P_α` processors and
//!   dispatches by earliest due date (EDD), already-fixed types keep their
//!   processors and their fixed sequences, and all remaining types have
//!   infinitely many processors. The *lateness* of an `α`-task started at
//!   `s(v)` is `s(v) − due(v)`.
//! * The type with the maximum lateness — the current bottleneck — has its
//!   relaxation order frozen as its dispatch sequence; repeat until every
//!   type is sequenced.
//!
//! At run time each type dispatches ready tasks by their position in the
//! frozen sequence.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use fhs_sim::{Assignments, EpochView, MachineConfig, Policy};
use kdag::precompute::Artifacts;
use kdag::{duedate, KDag, TaskId};

use crate::ranked::Selector;

/// Shifting-bottleneck policy. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct ShiftBT {
    rank: Vec<f64>,
    selector: Selector,
    /// Bottleneck order chosen during [`Policy::init`] (most-late type
    /// first); exposed for tests and ablations.
    pub bottleneck_order: Vec<usize>,
}

impl ShiftBT {
    /// The bottleneck-sequencing loop shared by both init paths. Only the
    /// due-date table is precomputable; the iterated one-type relaxations
    /// depend on the machine configuration and stay here.
    fn sequence_bottlenecks(&mut self, job: &KDag, config: &MachineConfig, due: &[u64]) {
        let k = job.num_types();
        let mut fixed: Vec<Option<Vec<u64>>> = vec![None; k];
        self.bottleneck_order.clear();

        let mut remaining: Vec<usize> = (0..k).collect();
        while !remaining.is_empty() {
            let mut best: Option<(i64, usize, Vec<TaskId>)> = None;
            for &alpha in &remaining {
                let (lateness, seq) = relax(job, config, &fixed, alpha, due);
                let better = match &best {
                    None => true,
                    Some((bl, ba, _)) => lateness > *bl || (lateness == *bl && alpha < *ba),
                };
                if better {
                    best = Some((lateness, alpha, seq));
                }
            }
            let (_, alpha, seq) = best.expect("remaining non-empty");
            let mut ranks = vec![0u64; job.num_tasks()];
            for (pos, &v) in seq.iter().enumerate() {
                ranks[v.index()] = pos as u64;
            }
            fixed[alpha] = Some(ranks);
            self.bottleneck_order.push(alpha);
            remaining.retain(|&a| a != alpha);
        }

        self.rank.clear();
        self.rank.resize(job.num_tasks(), 0.0);
        for v in job.tasks() {
            let alpha = job.rtype(v);
            self.rank[v.index()] =
                fixed[alpha].as_ref().expect("all types fixed")[v.index()] as f64;
        }
    }
}

impl Policy for ShiftBT {
    fn name(&self) -> &str {
        "ShiftBT"
    }

    fn init(&mut self, job: &KDag, config: &MachineConfig, _seed: u64) {
        let due = duedate::due_dates(job);
        self.sequence_bottlenecks(job, config, &due);
    }

    fn init_with_artifacts(
        &mut self,
        job: &KDag,
        config: &MachineConfig,
        _seed: u64,
        artifacts: &Arc<Artifacts>,
    ) {
        self.sequence_bottlenecks(job, config, artifacts.due_dates());
    }

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        let rank = &self.rank;
        self.selector
            .assign_by_key(view, out, |_, rt| rank[rt.id.index()]);
    }
}

/// One-type relaxation: simulate the whole job with type `target` at its
/// real capacity under EDD, fixed types at their capacity under their
/// frozen sequences, and all other types at infinite capacity. Returns the
/// maximum start-based lateness over `target`'s tasks (`i64::MIN` if the
/// type has none) and the `target` tasks in start order.
fn relax(
    job: &KDag,
    config: &MachineConfig,
    fixed: &[Option<Vec<u64>>],
    target: usize,
    due: &[u64],
) -> (i64, Vec<TaskId>) {
    let k = job.num_types();
    let n = job.num_tasks();
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| job.num_parents(TaskId::from_index(i)) as u32)
        .collect();
    let mut ready: Vec<Vec<TaskId>> = vec![Vec::new(); k];
    for v in job.roots() {
        ready[job.rtype(v)].push(v);
    }
    let capacity: Vec<Option<usize>> = (0..k)
        .map(|a| {
            if a == target || fixed[a].is_some() {
                Some(config.procs(a))
            } else {
                None // infinite
            }
        })
        .collect();
    let key = |alpha: usize, v: TaskId| -> u64 {
        if alpha == target {
            due[v.index()]
        } else if let Some(rk) = &fixed[alpha] {
            rk[v.index()]
        } else {
            0 // infinite capacity: order irrelevant
        }
    };

    let mut busy = vec![0usize; k];
    let mut heap: BinaryHeap<Reverse<(u64, TaskId)>> = BinaryHeap::new();
    let mut now = 0u64;
    let mut starts: Vec<(u64, TaskId)> = Vec::new();
    let mut max_lateness = i64::MIN;
    let mut done = 0usize;

    while done < n {
        // Dispatch at `now`.
        for alpha in 0..k {
            let free = match capacity[alpha] {
                Some(c) => c - busy[alpha],
                None => usize::MAX,
            };
            if free == 0 || ready[alpha].is_empty() {
                continue;
            }
            ready[alpha].sort_unstable_by_key(|&v| (key(alpha, v), v));
            let take = free.min(ready[alpha].len());
            for &v in ready[alpha].iter().take(take) {
                if alpha == target {
                    starts.push((now, v));
                    max_lateness = max_lateness.max(now as i64 - due[v.index()] as i64);
                }
                busy[alpha] += 1;
                heap.push(Reverse((now + job.work(v), v)));
            }
            ready[alpha].drain(..take);
        }

        // Advance to the next completion.
        let Reverse((t, v)) = heap.pop().expect("work remains, something must be running");
        now = t;
        let mut finished = vec![v];
        while let Some(&Reverse((t2, _))) = heap.peek() {
            if t2 != now {
                break;
            }
            finished.push(heap.pop().expect("peeked").0 .1);
        }
        for v in finished {
            busy[job.rtype(v)] -= 1;
            done += 1;
            for &c in job.children(v) {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    ready[job.rtype(c)].push(c);
                }
            }
        }
    }

    starts.sort_unstable_by_key(|&(t, v)| (t, due[v.index()], v));
    (max_lateness, starts.into_iter().map(|(_, v)| v).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhs_sim::{engine, Mode, RunOptions};
    use kdag::KDagBuilder;

    #[test]
    fn every_type_gets_sequenced_exactly_once() {
        let job = kdag::examples::figure1();
        let cfg = MachineConfig::uniform(3, 2);
        let mut p = ShiftBT::default();
        p.init(&job, &cfg, 0);
        let mut order = p.bottleneck_order.clone();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn edd_within_a_type_prefers_urgent_tasks() {
        // Two independent type-0 tasks; `urgent` heads a long chain (due 0),
        // `slack` is a sink (late due date). One type-0 processor.
        let mut b = KDagBuilder::new(2);
        let slack = b.add_task(0, 1);
        let urgent = b.add_task(0, 1);
        let mut prev = urgent;
        for _ in 0..4 {
            let c = b.add_task(1, 1);
            b.add_edge(prev, c).unwrap();
            prev = c;
        }
        let _ = slack;
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 1]);
        let out = engine::run(
            &job,
            &cfg,
            &mut ShiftBT::default(),
            Mode::NonPreemptive,
            &RunOptions {
                record_trace: true,
                seed: 0,
                quantum: None,
            },
        );
        let tr = out.trace.unwrap();
        let first_type0 = tr
            .segments()
            .iter()
            .filter(|s| s.rtype == 0)
            .min_by_key(|s| s.start)
            .unwrap();
        assert_eq!(first_type0.task, urgent);
        assert_eq!(out.makespan, 5); // urgent@0, chain 1..5, slack fits at 1
    }

    #[test]
    fn relaxation_identifies_the_loaded_type_as_bottleneck() {
        // Type 1 carries 10× the work of type 0 on equal processors: it
        // must be sequenced first.
        let mut b = KDagBuilder::new(2);
        let head = b.add_task(0, 1);
        for _ in 0..10 {
            let v = b.add_task(1, 5);
            b.add_edge(head, v).unwrap();
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 2]);
        let mut p = ShiftBT::default();
        p.init(&job, &cfg, 0);
        assert_eq!(p.bottleneck_order[0], 1);
    }

    #[test]
    fn completes_and_conserves_work_in_both_modes() {
        let job = kdag::examples::figure1();
        let cfg = MachineConfig::uniform(3, 1);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let out = engine::run(
                &job,
                &cfg,
                &mut ShiftBT::default(),
                mode,
                &RunOptions::default(),
            );
            assert_eq!(out.busy_time.iter().sum::<u64>(), job.total_work());
        }
    }
}
