//! Name-based construction of the paper's algorithms — the experiment
//! harness and benches select policies through this.

use fhs_sim::Policy;

use crate::mqb::{InfoModel, Mqb, MqbTuning};
use crate::{DType, Edd, KGreedy, LSpan, MaxDP, ShiftBT};

/// Per-pick candidate budget for [`Algorithm::MqbApprox`]: matches MQB's
/// exact-path flat/indexed crossover, so the approximation only ever
/// deviates in rounds where the exact algorithm would lean on the index.
pub const DEFAULT_APPROX_CAP: usize = 64;

/// The algorithms evaluated in the paper's §V.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Online greedy (§III).
    KGreedy,
    /// Longest span first.
    LSpan,
    /// Different type first.
    DType,
    /// Maximum descendants first.
    MaxDP,
    /// Shifting bottleneck.
    ShiftBT,
    /// Multi-Queue Balancing with full, precise information.
    Mqb,
    /// Multi-Queue Balancing with an explicit information model (§V-G).
    MqbWith(InfoModel),
    /// Bounded-candidate MQB: each contested pick evaluates at most
    /// [`DEFAULT_APPROX_CAP`] candidates (top-c by total descendant value).
    /// Schedule quality vs exact MQB is pinned by tests.
    MqbApprox,
    /// Earliest due date (extension baseline; not in the paper's six).
    Edd,
}

/// The six algorithms of Figures 4–7, in the paper's plotting order.
pub const ALL_ALGORITHMS: [Algorithm; 6] = [
    Algorithm::KGreedy,
    Algorithm::LSpan,
    Algorithm::DType,
    Algorithm::MaxDP,
    Algorithm::ShiftBT,
    Algorithm::Mqb,
];

impl Algorithm {
    /// The display name used in tables (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::KGreedy => "KGreedy",
            Algorithm::LSpan => "LSpan",
            Algorithm::DType => "DType",
            Algorithm::MaxDP => "MaxDP",
            Algorithm::ShiftBT => "ShiftBT",
            Algorithm::Mqb => "MQB",
            Algorithm::MqbWith(info) => info.label(),
            Algorithm::MqbApprox => "MQB-Approx",
            Algorithm::Edd => "EDD",
        }
    }

    /// Whether the algorithm uses offline (full K-DAG) information.
    pub fn is_offline(&self) -> bool {
        !matches!(self, Algorithm::KGreedy)
    }

    /// Parses a label produced by [`Algorithm::label`]; used by the
    /// experiment binaries' `--algo` flags.
    pub fn parse(name: &str) -> Option<Algorithm> {
        match name {
            "KGreedy" => Some(Algorithm::KGreedy),
            "LSpan" => Some(Algorithm::LSpan),
            "DType" => Some(Algorithm::DType),
            "MaxDP" => Some(Algorithm::MaxDP),
            "ShiftBT" => Some(Algorithm::ShiftBT),
            "MQB" => Some(Algorithm::Mqb),
            "MQB-Approx" => Some(Algorithm::MqbApprox),
            "EDD" => Some(Algorithm::Edd),
            _ => InfoModel::ALL_VARIANTS
                .into_iter()
                .find(|i| i.label() == name)
                .map(Algorithm::MqbWith),
        }
    }
}

/// Instantiates a fresh policy value for `algorithm`.
pub fn make_policy(algorithm: Algorithm) -> Box<dyn Policy> {
    match algorithm {
        Algorithm::KGreedy => Box::new(KGreedy::default()),
        Algorithm::LSpan => Box::new(LSpan::default()),
        Algorithm::DType => Box::new(DType::default()),
        Algorithm::MaxDP => Box::new(MaxDP::default()),
        Algorithm::ShiftBT => Box::new(ShiftBT::default()),
        Algorithm::Mqb => Box::new(Mqb::default()),
        Algorithm::MqbWith(info) => Box::new(Mqb::new(info)),
        Algorithm::MqbApprox => Box::new(Mqb::with_tuning(
            InfoModel::default(),
            MqbTuning {
                max_candidates: Some(DEFAULT_APPROX_CAP),
                ..MqbTuning::default()
            },
        )),
        Algorithm::Edd => Box::new(Edd::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhs_sim::{metrics, MachineConfig, Mode};

    #[test]
    fn labels_round_trip_through_parse() {
        for algo in ALL_ALGORITHMS {
            assert_eq!(Algorithm::parse(algo.label()), Some(algo));
        }
        for info in InfoModel::ALL_VARIANTS {
            let algo = Algorithm::MqbWith(info);
            assert_eq!(Algorithm::parse(algo.label()), Some(algo));
        }
        assert_eq!(
            Algorithm::parse(Algorithm::MqbApprox.label()),
            Some(Algorithm::MqbApprox)
        );
        assert_eq!(Algorithm::parse("NoSuch"), None);
    }

    #[test]
    fn only_kgreedy_is_online() {
        assert!(!Algorithm::KGreedy.is_offline());
        for algo in &ALL_ALGORITHMS[1..] {
            assert!(algo.is_offline(), "{} should be offline", algo.label());
        }
    }

    #[test]
    fn every_algorithm_completes_figure1() {
        let job = kdag::examples::figure1();
        let cfg = MachineConfig::uniform(3, 2);
        for algo in ALL_ALGORITHMS {
            let mut p = make_policy(algo);
            for mode in [Mode::NonPreemptive, Mode::Preemptive] {
                let r = metrics::evaluate(&job, &cfg, p.as_mut(), mode, 1);
                assert!(
                    (1.0..=4.0).contains(&r.ratio),
                    "{} ratio {} out of the (K+1)-competitive envelope",
                    algo.label(),
                    r.ratio
                );
            }
        }
    }

    #[test]
    fn policy_names_match_labels() {
        for algo in ALL_ALGORITHMS {
            let p = make_policy(algo);
            assert_eq!(p.name(), algo.label());
        }
        let p = make_policy(Algorithm::MqbApprox);
        assert_eq!(p.name(), Algorithm::MqbApprox.label());
    }

    #[test]
    fn mqb_approx_completes_figure1() {
        let job = kdag::examples::figure1();
        let cfg = MachineConfig::uniform(3, 2);
        let mut p = make_policy(Algorithm::MqbApprox);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let r = metrics::evaluate(&job, &cfg, p.as_mut(), mode, 1);
            assert!(
                (1.0..=4.0).contains(&r.ratio),
                "MQB-Approx ratio {} out of the (K+1)-competitive envelope",
                r.ratio
            );
        }
    }
}
