//! KGreedy — the online greedy algorithm (paper §III).
//!
//! KGreedy runs `K` independent Graham greedy schedulers, one per resource
//! type: whenever there are more than `P_α` ready `α`-tasks it executes
//! **any** `P_α` of them, otherwise all of them. "Any" is implemented as a
//! *uniformly random* choice (seeded, hence reproducible): an online
//! scheduler has no information to distinguish ready tasks — the paper's
//! Theorem-2 analysis models exactly this as drawing balls from a
//! non-transparent box (Lemma 1). A deterministic FIFO variant is
//! available as [`FifoGreedy`] for comparison and ablations.
//!
//! The paper shows KGreedy is `(K+1)`-competitive with respect to
//! completion time (an extension of Graham's argument; Theorem 3 of
//! He/Sun/Hsu ICPP'07), which nearly matches the randomized online lower
//! bound of Theorem 2 — see the `fhs-theory` crate. The guarantee holds
//! for any tie-breaking rule, random or FIFO, because both are greedy
//! (work-conserving per type).

use fhs_sim::{Assignments, EpochView, MachineConfig, Policy};
use kdag::KDag;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic FIFO tie-breaking greedy (dispatch in arrival order).
pub use fhs_sim::policy::FifoPolicy as FifoGreedy;

/// The online greedy scheduler with uniformly random tie-breaking.
///
/// The random choice is a *sparse* partial Fisher–Yates: instead of
/// materializing the identity permutation (and a queue snapshot) every
/// contested epoch — O(queue) writes for O(slots) picks — the permutation
/// is virtual. A stamped override table records only the entries the
/// shuffle actually displaced (`value(p) = p` unless stamped this round),
/// and one generation bump replaces clearing it. The chosen *ranks* are
/// then resolved to task ids in a single
/// [`ReadyQueue::select_ranks`](fhs_sim::ReadyQueue) bitmap walk. The RNG
/// call sequence and the emitted id order are bit-for-bit identical to the
/// dense shuffle, so seeds reproduce the same schedules.
#[derive(Clone, Debug)]
pub struct KGreedy {
    rng: StdRng,
    /// Sparse permutation overrides: `over_val[p]` holds `value(p)` iff
    /// `over_gen[p] == gen`; otherwise `value(p) = p`. Sized to the largest
    /// queue seen, never cleared — the generation stamp invalidates stale
    /// entries for free.
    over_val: Vec<u32>,
    over_gen: Vec<u64>,
    gen: u64,
    /// Picked (rank, emission position) pairs for the current type.
    picks: Vec<(u32, u32)>,
    ranks: Vec<u32>,
    ids: Vec<kdag::TaskId>,
}

impl Default for KGreedy {
    fn default() -> Self {
        KGreedy {
            rng: StdRng::seed_from_u64(0),
            over_val: Vec::new(),
            over_gen: Vec::new(),
            gen: 0,
            picks: Vec::new(),
            ranks: Vec::new(),
            ids: Vec::new(),
        }
    }
}

impl Policy for KGreedy {
    fn name(&self) -> &str {
        "KGreedy"
    }

    fn init(&mut self, _job: &KDag, _config: &MachineConfig, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed ^ 0x4B47_5245_4544_5921);
    }

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        for alpha in 0..view.config.num_types() {
            let queue = &view.queues[alpha];
            let slots = view.slots[alpha];
            if slots == 0 || queue.is_empty() {
                continue;
            }
            if queue.len() <= slots {
                for rt in queue.iter() {
                    out.push(alpha, rt.id);
                }
                continue;
            }
            // Partial Fisher–Yates over the virtual identity permutation of
            // live ranks 0..n. Each pick reads/writes at most two override
            // entries, so a contested epoch costs O(slots), not O(n).
            let n = queue.len();
            if self.over_val.len() < n {
                self.over_val.resize(n, 0);
                self.over_gen.resize(n, 0);
            }
            self.gen += 1;
            let gen = self.gen;
            self.picks.clear();
            for i in 0..slots {
                let j = self.rng.gen_range(i..n);
                let vi = if self.over_gen[i] == gen {
                    self.over_val[i]
                } else {
                    i as u32
                };
                let vj = if self.over_gen[j] == gen {
                    self.over_val[j]
                } else {
                    j as u32
                };
                self.over_val[j] = vi;
                self.over_gen[j] = gen;
                self.over_val[i] = vj;
                self.over_gen[i] = gen;
                self.picks.push((vj, i as u32));
            }
            // Resolve the picked ranks to ids in one queue walk, then emit
            // in the original pick order (it decides processor placement).
            self.picks.sort_unstable();
            self.ranks.clear();
            self.ranks.extend(self.picks.iter().map(|&(rank, _)| rank));
            self.ids.clear();
            self.ids.resize(slots, kdag::TaskId::from_index(0));
            let (picks, ids) = (&self.picks, &mut self.ids);
            queue.select_ranks(&self.ranks, |ri, rt| {
                ids[picks[ri].1 as usize] = rt.id;
            });
            for &id in self.ids.iter() {
                out.push(alpha, id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhs_sim::{engine, metrics, MachineConfig, Mode, RunOptions};
    use kdag::{examples::figure1, KDagBuilder};

    #[test]
    fn name_is_kgreedy() {
        assert_eq!(KGreedy::default().name(), "KGreedy");
    }

    #[test]
    fn greedy_bound_holds_on_figure1() {
        // Graham-style bound per type: T ≤ T∞ + Σ_α T1α/Pα, independent
        // of tie-breaking.
        let job = figure1();
        for p in 1..4 {
            let cfg = MachineConfig::uniform(3, p);
            for seed in 0..5 {
                let out = engine::run(
                    &job,
                    &cfg,
                    &mut KGreedy::default(),
                    Mode::NonPreemptive,
                    &RunOptions::seeded(seed),
                );
                let bound: u64 = kdag::metrics::span(&job)
                    + (0..3)
                        .map(|a| job.total_work_of_type(a).div_ceil(p as u64))
                        .sum::<u64>();
                assert!(out.makespan <= bound);
            }
        }
    }

    #[test]
    fn kgreedy_is_optimal_on_flat_single_type_unit_jobs() {
        // With unit works, any greedy order is optimal on a flat job.
        let mut b = KDagBuilder::new(1);
        for _ in 0..10 {
            b.add_task(0, 1);
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 5);
        let r = metrics::evaluate(&job, &cfg, &mut KGreedy::default(), Mode::NonPreemptive, 3);
        assert_eq!(r.ratio, 1.0);
    }

    #[test]
    fn choice_is_seed_deterministic_but_varies_across_seeds() {
        // A job with 30 distinct-work ready tasks on 1 processor: the
        // execution order (hence nothing) changes the makespan, so compare
        // traces instead.
        let mut b = KDagBuilder::new(1);
        for i in 0..30 {
            b.add_task(0, (i % 7) + 1);
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 1);
        let trace_of = |seed: u64| {
            let out = engine::run(
                &job,
                &cfg,
                &mut KGreedy::default(),
                Mode::NonPreemptive,
                &RunOptions::seeded(seed).with_trace(),
            );
            let mut segs = out.trace.unwrap().segments().to_vec();
            segs.sort_by_key(|s| s.start);
            segs.iter().map(|s| s.task).collect::<Vec<_>>()
        };
        assert_eq!(trace_of(1), trace_of(1));
        assert_ne!(trace_of(1), trace_of(2));
    }

    #[test]
    fn random_choice_never_exceeds_slots() {
        let mut b = KDagBuilder::new(2);
        for i in 0..40 {
            b.add_task(i % 2, 2);
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![3, 2]);
        let out = engine::run(
            &job,
            &cfg,
            &mut KGreedy::default(),
            Mode::NonPreemptive,
            &RunOptions::seeded(9).with_trace(),
        );
        fhs_sim::trace::validate(&out.trace.unwrap(), &job, &cfg).unwrap();
    }
}
