//! Shared selection machinery for key-ranked policies.
//!
//! LSpan, MaxDP, DType and ShiftBT all reduce to "per type, run the
//! `slots[α]` candidates with the smallest key"; only the key differs.
//! Keys are `f64` (ascending — negate for a descending criterion) with
//! deterministic tie-breaking by arrival order, then task id.

use fhs_sim::{Assignments, EpochView, ReadyTask};

/// Reusable scratch buffer for per-epoch sorting.
#[derive(Clone, Debug, Default)]
pub(crate) struct Selector {
    scratch: Vec<(f64, u64, u32)>, // (key, seq, task-index)
}

impl Selector {
    /// For every type, pushes into `out` the `slots[α]` queue entries with
    /// the smallest `key(α, candidate)` (ascending; ties by seq then id).
    pub(crate) fn assign_by_key<F>(
        &mut self,
        view: &EpochView<'_>,
        out: &mut Assignments,
        mut key: F,
    ) where
        F: FnMut(usize, &ReadyTask) -> f64,
    {
        for alpha in 0..view.config.num_types() {
            let queue = &view.queues[alpha];
            let slots = view.slots[alpha];
            if slots == 0 || queue.is_empty() {
                continue;
            }
            if queue.len() <= slots {
                // "if there are at most P_α ready tasks, execute them all"
                for rt in queue.iter() {
                    out.push(alpha, rt.id);
                }
                continue;
            }
            self.scratch.clear();
            self.scratch.extend(
                queue
                    .iter()
                    .map(|rt| (key(alpha, rt), rt.seq, rt.id.index() as u32)),
            );
            let cmp = |a: &(f64, u64, u32), b: &(f64, u64, u32)| {
                a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
            };
            // (key, seq, id) is a strict total order (seq is unique), so a
            // partial selection of the smallest `slots` entries followed by
            // sorting just that prefix emits exactly the same sequence as a
            // full sort — in O(n + slots log slots) instead of O(n log n),
            // which matters when queues dwarf the processor pools.
            if queue.len() > 2 * slots {
                self.scratch.select_nth_unstable_by(slots - 1, cmp);
                self.scratch[..slots].sort_unstable_by(cmp);
            } else {
                self.scratch.sort_unstable_by(cmp);
            }
            for &(_, _, idx) in self.scratch.iter().take(slots) {
                out.push(alpha, kdag::TaskId::from_index(idx as usize));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhs_sim::{MachineConfig, ReadyQueue};
    use kdag::{KDagBuilder, TaskId};

    fn rt(i: usize, seq: u64, rem: u64) -> ReadyTask {
        ReadyTask {
            id: TaskId::from_index(i),
            seq,
            remaining: rem,
        }
    }

    #[test]
    fn selects_smallest_keys_with_fifo_ties() {
        let mut b = KDagBuilder::new(1);
        for _ in 0..4 {
            b.add_task(0, 1);
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 2);
        let queues = vec![ReadyQueue::from_tasks(vec![
            rt(0, 0, 1),
            rt(1, 1, 1),
            rt(2, 2, 1),
            rt(3, 3, 1),
        ])];
        let view = EpochView {
            time: 0,
            job: &job,
            config: &cfg,
            queues: &queues,
            queue_work: &[4],
            slots: &[2],
            preemptive: false,
        };
        let mut out = Assignments::default();
        out.reset(1);
        let keys = [5.0, 1.0, 1.0, 0.5];
        Selector::default().assign_by_key(&view, &mut out, |_, r| keys[r.id.index()]);
        // smallest key 0.5 (t3), then tie at 1.0 broken by seq -> t1
        assert_eq!(
            out.chosen(0),
            &[TaskId::from_index(3), TaskId::from_index(1)]
        );
    }

    #[test]
    fn takes_all_when_queue_fits() {
        let mut b = KDagBuilder::new(1);
        b.add_task(0, 1);
        b.add_task(0, 1);
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 3);
        let queues = vec![ReadyQueue::from_tasks(vec![rt(0, 0, 1), rt(1, 1, 1)])];
        let view = EpochView {
            time: 0,
            job: &job,
            config: &cfg,
            queues: &queues,
            queue_work: &[2],
            slots: &[3],
            preemptive: false,
        };
        let mut out = Assignments::default();
        out.reset(1);
        // key function would invert the order, but it must not be consulted
        Selector::default().assign_by_key(&view, &mut out, |_, _| unreachable!());
        assert_eq!(out.total(), 2);
    }
}
