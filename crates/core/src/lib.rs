//! # fhs-core — scheduling algorithms for functionally heterogeneous systems
//!
//! The six schedulers evaluated in the paper, implemented against
//! [`fhs_sim::Policy`]:
//!
//! | Policy | Kind | Rule when a type-`α` processor frees up |
//! |---|---|---|
//! | [`KGreedy`] | online | run any `P_α` ready `α`-tasks (FIFO here); §III |
//! | [`LSpan`] | offline | longest remaining span first |
//! | [`MaxDP`] | offline | largest type-blind descendant value first |
//! | [`DType`] | offline | smallest different-child distance first |
//! | [`ShiftBT`] | offline | fixed per-type sequences from iterated single-type EDD relaxations (shifting bottleneck) |
//! | [`Mqb`] | offline | the paper's contribution: pick the ready task whose descendant values best **balance** the per-type queue x-utilizations |
//!
//! MQB additionally supports the paper's §V-G *approximated information*
//! models through [`mqb::InfoModel`]: full-depth vs one-step lookahead and
//! precise vs exponentially-distributed vs noisy descendant estimates.
//!
//! The paper's §VII future-work direction — JIT-compiled tasks that can
//! execute on several resource types — is implemented in [`flex`]:
//! binding algorithms that choose a concrete type per flexible task
//! before ordinary scheduling takes over.
//!
//! ```
//! use fhs_core::{Algorithm, make_policy};
//! use fhs_sim::{metrics, MachineConfig, Mode};
//! use kdag::examples::figure1;
//!
//! let job = figure1();
//! let cfg = MachineConfig::uniform(3, 2);
//! let mut mqb = make_policy(Algorithm::Mqb);
//! let r = metrics::evaluate(&job, &cfg, mqb.as_mut(), Mode::NonPreemptive, 0);
//! assert!(r.ratio >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ranked;

pub mod dtype;
pub mod edd;
pub mod flex;
pub mod kgreedy;
pub mod lspan;
pub mod maxdp;
pub mod mqb;
pub mod registry;
pub mod shiftbt;

pub use dtype::DType;
pub use edd::Edd;
pub use kgreedy::KGreedy;
pub use lspan::LSpan;
pub use maxdp::MaxDP;
pub use mqb::Mqb;
pub use registry::{make_policy, Algorithm, ALL_ALGORITHMS};
pub use shiftbt::ShiftBT;
