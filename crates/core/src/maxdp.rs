//! MaxDP — maximum descendants first (paper §IV-B).
//!
//! When a type-`α` processor frees up, run the ready `α`-task with the
//! largest *type-blind* descendant value: a task with many/heavy
//! descendants unlocks the most downstream work. The descendant recursion
//! matches MQB's, but collapses all `K` types into one number — which is
//! exactly why (per the paper's Fig. 4 discussion) MaxDP does well on
//! trees and iterative-reduction jobs yet poorly on embarrassingly
//! parallel ones, where what matters is the *type mix* of the descendants,
//! not their amount.

use std::sync::Arc;

use fhs_sim::{Assignments, EpochView, MachineConfig, Policy};
use kdag::precompute::Artifacts;
use kdag::{descendants, KDag};

use crate::ranked::Selector;

/// Maximum-descendants-first policy. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct MaxDP {
    desc: Vec<f64>,
    selector: Selector,
}

impl Policy for MaxDP {
    fn name(&self) -> &str {
        "MaxDP"
    }

    fn init(&mut self, job: &KDag, _config: &MachineConfig, _seed: u64) {
        self.desc = descendants::type_blind_descendants(job);
    }

    fn init_with_artifacts(
        &mut self,
        _job: &KDag,
        _config: &MachineConfig,
        _seed: u64,
        artifacts: &Arc<Artifacts>,
    ) {
        self.desc.clear();
        self.desc.extend_from_slice(artifacts.type_blind());
    }

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        let desc = &self.desc;
        self.selector
            .assign_by_key(view, out, |_, rt| -desc[rt.id.index()]);
    }

    // Keys are fixed per task at init and ties break on (seq, id): the
    // pick depends only on queue membership/order and the slot counts.
    fn assign_stable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhs_sim::{engine, MachineConfig, Mode, RunOptions};
    use kdag::KDagBuilder;

    #[test]
    fn prefers_the_task_with_more_descendants() {
        // Two ready type-0 tasks: `fan` has 3 children, `leaf` none.
        // One processor: MaxDP must start `fan`.
        let mut b = KDagBuilder::new(2);
        let leaf = b.add_task(0, 1);
        let fan = b.add_task(0, 1);
        for _ in 0..3 {
            let c = b.add_task(1, 1);
            b.add_edge(fan, c).unwrap();
        }
        let _ = leaf;
        let job = b.build().unwrap();
        let cfg = MachineConfig::new(vec![1, 3]);
        let out = engine::run(
            &job,
            &cfg,
            &mut MaxDP::default(),
            Mode::NonPreemptive,
            &RunOptions::seeded(0).with_trace(),
        );
        let tr = out.trace.unwrap();
        let first_type0 = tr
            .segments()
            .iter()
            .filter(|s| s.rtype == 0)
            .min_by_key(|s| s.start)
            .unwrap();
        assert_eq!(first_type0.task, fan);
        // Starting `fan` first pipelines the type-1 children: makespan 2
        // (fan at 0, children and leaf all in 1..2) instead of 3 had the
        // childless leaf gone first.
        assert_eq!(out.makespan, 2);
    }

    #[test]
    fn completes_arbitrary_jobs_in_both_modes() {
        let mut b = KDagBuilder::new(2);
        let mut prev = b.add_task(0, 2);
        for i in 1..8 {
            let v = b.add_task(i % 2, (i % 3 + 1) as u64);
            b.add_edge(prev, v).unwrap();
            prev = v;
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(2, 2);
        for mode in [Mode::NonPreemptive, Mode::Preemptive] {
            let out = engine::run(
                &job,
                &cfg,
                &mut MaxDP::default(),
                mode,
                &RunOptions::default(),
            );
            assert_eq!(out.busy_time.iter().sum::<u64>(), job.total_work());
        }
    }
}
