//! LSpan — longest remaining span first (paper §IV-B).
//!
//! A classic homogeneous heuristic (level scheduling; optimal for
//! out-trees on identical machines, Hu 1961) lifted unchanged to K-DAGs:
//! when a type-`α` processor frees up, run the ready `α`-task whose
//! remaining span — its remaining work plus the longest span among its
//! children — is largest. The paper notes simple counter-examples show the
//! out-tree optimality does **not** survive the lift to K types.

use std::sync::Arc;

use fhs_sim::{Assignments, EpochView, MachineConfig, Policy};
use kdag::precompute::Artifacts;
use kdag::{metrics, KDag, Work};

use crate::ranked::Selector;

/// Longest-span-first policy. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct LSpan {
    /// `max over children c of span(c)` per task; the dynamic remaining
    /// span of a candidate is `remaining + child_span`, which under
    /// preemption correctly shrinks as the task executes.
    child_span: Vec<Work>,
    selector: Selector,
}

impl LSpan {
    /// Derives the per-task max-child-span table from the (pre)computed
    /// remaining spans — the shared tail of both init paths.
    fn set_child_spans(&mut self, job: &KDag, spans: &[Work]) {
        self.child_span.clear();
        self.child_span.extend(job.tasks().map(|v| {
            job.children(v)
                .iter()
                .map(|&c| spans[c.index()])
                .max()
                .unwrap_or(0)
        }));
    }
}

impl Policy for LSpan {
    fn name(&self) -> &str {
        "LSpan"
    }

    fn init(&mut self, job: &KDag, _config: &MachineConfig, _seed: u64) {
        let spans = metrics::remaining_spans(job);
        self.set_child_spans(job, &spans);
    }

    fn init_with_artifacts(
        &mut self,
        job: &KDag,
        _config: &MachineConfig,
        _seed: u64,
        artifacts: &Arc<Artifacts>,
    ) {
        self.set_child_spans(job, artifacts.spans());
    }

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        let child_span = &self.child_span;
        self.selector.assign_by_key(view, out, |_, rt| {
            -((rt.remaining + child_span[rt.id.index()]) as f64)
        });
    }

    fn detach_job(&mut self) {
        // Session retirement: the child-span table indexes this job's task
        // ids; drop the contents eagerly (capacity retained for reuse).
        self.child_span.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhs_sim::{engine, Mode, RunOptions};
    use kdag::KDagBuilder;

    #[test]
    fn prefers_the_long_branch() {
        // Two independent chains of type 0: long (3 unit tasks) and short
        // (1 task). One processor. LSpan must start the long chain first,
        // giving makespan 4 instead of FIFO-dependent orderings.
        let mut b = KDagBuilder::new(1);
        let s = b.add_task(0, 1); // short, added first so FIFO would pick it
        let l1 = b.add_task(0, 1);
        let l2 = b.add_task(0, 1);
        let l3 = b.add_task(0, 1);
        b.add_edge(l1, l2).unwrap();
        b.add_edge(l2, l3).unwrap();
        let _ = s;
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 1);
        let mut pol = LSpan::default();
        let out = engine::run(
            &job,
            &cfg,
            &mut pol,
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
        assert_eq!(out.makespan, 4);
        // On one processor every order totals 4 here, so instead check the
        // first decision directly via a trace:
        let traced = engine::run(
            &job,
            &cfg,
            &mut LSpan::default(),
            Mode::NonPreemptive,
            &RunOptions::seeded(0).with_trace(),
        );
        let tr = traced.trace.unwrap();
        let first = tr.segments().iter().min_by_key(|s| s.start).unwrap();
        assert_eq!(first.task, l1, "LSpan must start the long chain first");
    }

    #[test]
    fn lspan_is_optimal_on_out_trees_single_type() {
        // Hu's theorem: level scheduling is optimal for unit-work out-trees
        // on identical processors. Build a binary out-tree of depth 3.
        let mut b = KDagBuilder::new(1);
        let root = b.add_task(0, 1);
        let mut frontier = vec![root];
        for _ in 0..2 {
            let mut next = Vec::new();
            for &p in &frontier {
                for _ in 0..2 {
                    let c = b.add_task(0, 1);
                    b.add_edge(p, c).unwrap();
                    next.push(c);
                }
            }
            frontier = next;
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 2);
        let out = engine::run(
            &job,
            &cfg,
            &mut LSpan::default(),
            Mode::NonPreemptive,
            &RunOptions::default(),
        );
        // 7 unit tasks, span 3, 2 procs; optimum = 4 (1 + 2 + ceil(4/2)).
        assert_eq!(out.makespan, 4);
    }

    #[test]
    fn remaining_span_shrinks_under_preemption() {
        // Sanity: the dynamic key uses `remaining`, so a partially-executed
        // long task can be overtaken. Just ensure the run completes and is
        // work-conserving.
        let mut b = KDagBuilder::new(1);
        b.add_task(0, 10);
        b.add_task(0, 2);
        b.add_task(0, 2);
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 2);
        let out = engine::run(
            &job,
            &cfg,
            &mut LSpan::default(),
            Mode::Preemptive,
            &RunOptions::default(),
        );
        // lb = max(span 10, ceil(14/2) = 7) = 10, achievable: the long
        // task never yields its processor while the short ones share the
        // other.
        assert_eq!(out.makespan, 10);
    }
}
