//! Type-binding algorithms for flexible (JIT-compilable) K-DAGs — the
//! paper's §VII extension.
//!
//! With JIT support a task can be compiled for any of several resource
//! types; "a scheduler requires additional functionality and must choose
//! appropriate resource types to compile the task for and execute it"
//! (§VII). We implement binding as an offline pass — choose one
//! [`kdag::flex::Placement`] per task, then schedule the resulting
//! ordinary [`kdag::KDag`] with any policy from this crate:
//!
//! * [`bind_first`] — baseline: every task takes its first (canonical)
//!   option.
//! * [`bind_fastest`] — locally greedy: every task takes its
//!   minimum-work option, ignoring system balance.
//! * [`bind_random`] — uniform random option per task (seeded).
//! * [`bind_balanced`] — the MQB-spirited binder: starts from the native
//!   binding and greedily re-binds tasks away from the most-pressured
//!   type, accepting only moves that *strictly reduce* the global maximum
//!   projected work-per-processor `max_α T1(α)/P_α` (the work term of the
//!   paper's lower bound). Descent-from-native means an already-balanced
//!   job is left untouched — the binder never pays a slower binary for
//!   balance that was free.

use fhs_sim::MachineConfig;
use kdag::flex::FlexKDag;
use kdag::Work;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every task takes option 0.
pub fn bind_first(job: &FlexKDag) -> Vec<usize> {
    vec![0; job.num_tasks()]
}

/// Every task takes its minimum-work option (ties: lowest type).
pub fn bind_fastest(job: &FlexKDag) -> Vec<usize> {
    (0..job.num_tasks())
        .map(|i| {
            job.options(kdag::TaskId::from_index(i))
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| (p.work, p.rtype))
                .map(|(idx, _)| idx)
                .expect("options are non-empty by construction")
        })
        .collect()
}

/// Every task takes a uniformly random option.
pub fn bind_random(job: &FlexKDag, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..job.num_tasks())
        .map(|i| {
            let n = job.options(kdag::TaskId::from_index(i)).len();
            rng.gen_range(0..n)
        })
        .collect()
}

/// Utilization-balancing binder: local-search descent from the native
/// binding on the pressure objective `max_α T1(α)/P_α` (see the module
/// docs). Terminates after at most `Σ_v |options(v)|` accepted moves
/// (each move strictly reduces a bounded objective over a finite space
/// with no move ever revisited from the same configuration at a higher
/// pressure).
pub fn bind_balanced(job: &FlexKDag, config: &MachineConfig) -> Vec<usize> {
    assert_eq!(job.num_types(), config.num_types());
    let n = job.num_tasks();
    let mut choice = vec![0usize; n];
    let mut load = job.bound_work_per_type(&choice);

    let pressure = |load: &[Work]| -> f64 {
        load.iter()
            .enumerate()
            .map(|(a, &w)| w as f64 / config.procs(a) as f64)
            .fold(0.0, f64::max)
    };

    // Strict-descent loop: move one task per round, best-improvement.
    loop {
        let current = pressure(&load);
        let mut best_move: Option<(f64, usize, usize)> = None; // (pressure, task, option)
        for i in 0..n {
            let opts = job.options(kdag::TaskId::from_index(i));
            if opts.len() < 2 {
                continue;
            }
            let from = opts[choice[i]];
            for (idx, p) in opts.iter().enumerate() {
                if idx == choice[i] {
                    continue;
                }
                // project the move
                let mut worst: f64 = 0.0;
                for (alpha, &l0) in load.iter().enumerate() {
                    let mut l = l0;
                    if alpha == from.rtype {
                        l -= from.work;
                    }
                    if alpha == p.rtype {
                        l += p.work;
                    }
                    worst = worst.max(l as f64 / config.procs(alpha) as f64);
                }
                if worst + 1e-12 < current
                    && best_move.as_ref().is_none_or(|&(bp, _, _)| worst < bp)
                {
                    best_move = Some((worst, i, idx));
                }
            }
        }
        match best_move {
            Some((_, i, idx)) => {
                let opts = job.options(kdag::TaskId::from_index(i));
                let from = opts[choice[i]];
                let to = opts[idx];
                load[from.rtype] -= from.work;
                load[to.rtype] += to.work;
                choice[i] = idx;
            }
            None => break,
        }
    }
    choice
}

/// The maximum projected work-per-processor of a binding — the work term
/// of the paper's lower bound; what [`bind_balanced`] minimizes.
pub fn binding_pressure(job: &FlexKDag, config: &MachineConfig, choice: &[usize]) -> f64 {
    job.bound_work_per_type(choice)
        .iter()
        .zip(config.procs_per_type())
        .map(|(&w, &p)| w as f64 / p as f64)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::flex::{FlexKDagBuilder, Placement};

    /// 8 independent tasks, each runnable on type 0 (work 2) or type 1
    /// (work 3); one processor of each type.
    fn flexible_flat() -> FlexKDag {
        let mut b = FlexKDagBuilder::new(2);
        for _ in 0..8 {
            b.add_task(vec![
                Placement { rtype: 0, work: 2 },
                Placement { rtype: 1, work: 3 },
            ]);
        }
        b.build().unwrap()
    }

    #[test]
    fn fastest_binder_piles_onto_one_type() {
        let job = flexible_flat();
        let cfg = MachineConfig::uniform(2, 1);
        let choice = bind_fastest(&job);
        assert!(choice.iter().all(|&c| c == 0));
        // everything on type 0: pressure = 16
        assert_eq!(binding_pressure(&job, &cfg, &choice), 16.0);
    }

    #[test]
    fn balanced_binder_spreads_the_load() {
        let job = flexible_flat();
        let cfg = MachineConfig::uniform(2, 1);
        let choice = bind_balanced(&job, &cfg);
        let pressure = binding_pressure(&job, &cfg, &choice);
        // Optimal split: 5 tasks on type 0 (10) vs 3 on type 1 (9) →
        // pressure 10; anything ≤ the fastest binder's 16 with real use
        // of both types is the point, exact optimum is a bonus.
        assert!(pressure <= 10.0 + 1e-9, "pressure {pressure}");
        let per_type = job.bound_work_per_type(&choice);
        assert!(
            per_type.iter().all(|&w| w > 0),
            "both types used: {per_type:?}"
        );
    }

    #[test]
    fn balanced_respects_processor_counts() {
        // Type 1 has 3 processors: balance should favour it despite the
        // slower binary.
        let job = flexible_flat();
        let cfg = MachineConfig::new(vec![1, 3]);
        let choice = bind_balanced(&job, &cfg);
        let per_type = job.bound_work_per_type(&choice);
        assert!(
            per_type[1] > per_type[0],
            "wider pool should carry more: {per_type:?}"
        );
    }

    #[test]
    fn random_binder_is_seeded_and_in_range() {
        let job = flexible_flat();
        let a = bind_random(&job, 5);
        let b = bind_random(&job, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| c < 2));
        let c = bind_random(&job, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn bindings_schedule_end_to_end() {
        use fhs_sim::{metrics, Mode};
        let job = flexible_flat();
        let cfg = MachineConfig::uniform(2, 1);
        let fast = job.bind(&bind_fastest(&job));
        let bal = job.bind(&bind_balanced(&job, &cfg));
        let mut mqb_a = crate::Mqb::default();
        let mut mqb_b = crate::Mqb::default();
        let r_fast = metrics::evaluate(&fast, &cfg, &mut mqb_a, Mode::NonPreemptive, 0);
        let r_bal = metrics::evaluate(&bal, &cfg, &mut mqb_b, Mode::NonPreemptive, 0);
        // balanced binding finishes strictly earlier here: 16 vs 10.
        assert!(r_bal.makespan < r_fast.makespan);
    }

    #[test]
    fn bind_first_is_the_identity_baseline() {
        let job = flexible_flat();
        assert_eq!(bind_first(&job), vec![0; 8]);
    }

    #[test]
    fn balanced_leaves_already_balanced_jobs_untouched() {
        // Native binding already splits 2 tasks per type; every move
        // would raise the pressure, so descent accepts nothing.
        let mut b = FlexKDagBuilder::new(2);
        for t in 0..4 {
            b.add_task(vec![
                Placement {
                    rtype: t % 2,
                    work: 4,
                },
                Placement {
                    rtype: (t + 1) % 2,
                    work: 6,
                },
            ]);
        }
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(2, 1);
        assert_eq!(bind_balanced(&job, &cfg), bind_first(&job));
    }
}
