//! EDD — earliest due date first (extension baseline).
//!
//! Not one of the paper's six, but the primitive inside its ShiftBT
//! adaptation: dispatch ready tasks by the due date
//! `due(v) = T∞(J) − span(v)` directly, without the shifting-bottleneck
//! sequencing loop. Comparing EDD against [`crate::ShiftBT`] isolates how
//! much the iterative bottleneck sequencing adds over its underlying
//! dispatch rule (the `schedulers` bench and the `sweep` binary accept it
//! by name).

use std::sync::Arc;

use fhs_sim::{Assignments, EpochView, MachineConfig, Policy};
use kdag::precompute::Artifacts;
use kdag::{duedate, KDag};

use crate::ranked::Selector;

/// Earliest-due-date policy. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct Edd {
    due: Vec<f64>,
    selector: Selector,
}

impl Policy for Edd {
    fn name(&self) -> &str {
        "EDD"
    }

    fn init(&mut self, job: &KDag, _config: &MachineConfig, _seed: u64) {
        self.due.clear();
        self.due
            .extend(duedate::due_dates(job).into_iter().map(|d| d as f64));
    }

    fn init_with_artifacts(
        &mut self,
        _job: &KDag,
        _config: &MachineConfig,
        _seed: u64,
        artifacts: &Arc<Artifacts>,
    ) {
        self.due.clear();
        self.due
            .extend(artifacts.due_dates().iter().map(|&d| d as f64));
    }

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        let due = &self.due;
        self.selector
            .assign_by_key(view, out, |_, rt| due[rt.id.index()]);
    }

    // Keys are fixed per task at init and ties break on (seq, id): the
    // pick depends only on queue membership/order and the slot counts.
    fn assign_stable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhs_sim::{engine, metrics, Mode, RunOptions};
    use kdag::KDagBuilder;

    #[test]
    fn prioritizes_critical_tasks() {
        // `urgent` heads a long chain (due 0); `slack` is a sink.
        let mut b = KDagBuilder::new(1);
        let slack = b.add_task(0, 1);
        let urgent = b.add_task(0, 1);
        let mut prev = urgent;
        for _ in 0..3 {
            let c = b.add_task(0, 1);
            b.add_edge(prev, c).unwrap();
            prev = c;
        }
        let _ = slack;
        let job = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, 1);
        let out = engine::run(
            &job,
            &cfg,
            &mut Edd::default(),
            Mode::NonPreemptive,
            &RunOptions::default().with_trace(),
        );
        let tr = out.trace.unwrap();
        let first = tr.segments().iter().min_by_key(|s| s.start).unwrap();
        assert_eq!(first.task, urgent);
    }

    #[test]
    fn matches_lspan_when_works_are_static() {
        // due = T∞ − span, so EDD ordering equals descending-span ordering
        // for fresh (never-preempted) tasks; on a non-preemptive run both
        // policies produce the same makespan.
        let job = kdag::examples::figure1();
        let cfg = MachineConfig::uniform(3, 1);
        let edd = metrics::evaluate(&job, &cfg, &mut Edd::default(), Mode::NonPreemptive, 0);
        let lspan = metrics::evaluate(
            &job,
            &cfg,
            &mut crate::LSpan::default(),
            Mode::NonPreemptive,
            0,
        );
        assert_eq!(edd.makespan, lspan.makespan);
    }

    #[test]
    fn registry_accepts_edd_by_name() {
        let algo = crate::Algorithm::parse("EDD").expect("EDD is registered");
        let p = crate::make_policy(algo);
        assert_eq!(p.name(), "EDD");
    }
}
