//! Workspace reuse must be invisible: running on a **dirty, reused**
//! [`fhs_sim::Workspace`] — with **warm, reused** policy values — must
//! reproduce a cold `engine::run` bit for bit, on the strongest observable
//! (the full trace), for every scheduler, both modes, both cadences.
//!
//! This is the contract that lets the steady-state execution layer
//! (`fhs_experiments::runner`) keep one workspace and one policy set per
//! pool worker across thousands of differently-shaped instances. The
//! instances inside each case deliberately vary in task count, machine
//! size, and seed, so the workspace's shape-reset path (`begin_run`) and
//! the monotonic duplicate-selection stamps are exercised across
//! shrink/grow transitions, and each policy's `init`/`reset_in` is proven
//! to fully re-derive its state.

use std::sync::Arc;

use fhs_core::{make_policy, ALL_ALGORITHMS};
use fhs_sim::{engine, MachineConfig, Mode, RunOptions, Workspace};
use kdag::precompute::Artifacts;
use kdag::{KDag, KDagBuilder, TaskId};
use proptest::prelude::*;

fn arb_kdag(k: usize, max_tasks: usize, max_work: u64) -> impl Strategy<Value = KDag> {
    (1..=max_tasks).prop_flat_map(move |n| {
        let types = proptest::collection::vec(0..k, n);
        let works = proptest::collection::vec(1..=max_work, n);
        let parents = proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..=3), n);
        (types, works, parents).prop_map(move |(types, works, parents)| {
            let mut b = KDagBuilder::new(k);
            let ids: Vec<TaskId> = types
                .iter()
                .zip(&works)
                .map(|(&t, &w)| b.add_task(t, w))
                .collect();
            let mut seen = std::collections::HashSet::new();
            for (i, ps) in parents.iter().enumerate().skip(1) {
                for &raw in ps {
                    let p = (raw as usize) % i;
                    if seen.insert((p, i)) {
                        b.add_edge(ids[p], ids[i]).unwrap();
                    }
                }
            }
            b.build().expect("forward-edge graphs are acyclic")
        })
    })
}

fn arb_config(k: usize) -> impl Strategy<Value = MachineConfig> {
    proptest::collection::vec(1usize..4, k).prop_map(MachineConfig::new)
}

/// A shuffled stream of 2–4 differently-sized instances: the workspace and
/// policies are reused across all of them in order.
fn arb_instances() -> impl Strategy<Value = Vec<(KDag, MachineConfig, u64)>> {
    proptest::collection::vec((arb_kdag(3, 18, 4), arb_config(3), 0u64..1000), 2..=4)
}

const CADENCES: [(Mode, Option<u64>); 3] = [
    (Mode::NonPreemptive, None),
    (Mode::Preemptive, None),
    (Mode::Preemptive, Some(1)),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every scheduler, both modes, both cadences: `run_in` on a dirty
    /// workspace with a warm policy equals a cold `run` with a fresh
    /// policy, per instance, trace for trace.
    #[test]
    fn dirty_workspace_and_warm_policy_match_cold_runs(
        instances in arb_instances(),
    ) {
        for algo in ALL_ALGORITHMS {
            for (mode, quantum) in CADENCES {
                let mut ws = Workspace::new();
                let mut warm_policy = make_policy(algo);
                for (dag, cfg, seed) in &instances {
                    let mut opts = RunOptions::seeded(*seed).with_trace();
                    opts.quantum = quantum;
                    let warm = engine::run_in(
                        &mut ws, dag, cfg, warm_policy.as_mut(), mode, &opts,
                    );
                    let cold = engine::run(
                        dag, cfg, make_policy(algo).as_mut(), mode, &opts,
                    );
                    prop_assert_eq!(
                        warm.makespan, cold.makespan,
                        "{} {:?} q={:?}: makespan diverged on reuse",
                        algo.label(), mode, quantum
                    );
                    prop_assert_eq!(&warm.busy_time, &cold.busy_time);
                    prop_assert_eq!(warm.epochs, cold.epochs);
                    prop_assert_eq!(
                        warm.trace.expect("requested").segments(),
                        cold.trace.expect("requested").segments(),
                        "{} {:?} q={:?}: trace diverged on reuse",
                        algo.label(), mode, quantum
                    );
                }
                prop_assert_eq!(ws.runs(), instances.len() as u64);
            }
        }
    }

    /// Fast-forward composes with workspace reuse: an *untraced*
    /// per-quantum run on a dirty workspace (fast-forward eligible) must
    /// reproduce the schedule — and, via counter synthesis, the exact
    /// epoch and assignment counts — of a *traced* run, whose per-epoch
    /// trace recording forces literal stepping.
    #[test]
    fn fast_forward_on_reused_workspace_matches_traced_stepping(
        instances in arb_instances(),
    ) {
        for algo in ALL_ALGORITHMS {
            for quantum in [1u64, 3] {
                let mut ws = Workspace::new();
                let mut warm_policy = make_policy(algo);
                for (dag, cfg, seed) in &instances {
                    let mut ff_opts = RunOptions::seeded(*seed);
                    ff_opts.quantum = Some(quantum);
                    let ff = engine::run_in(
                        &mut ws, dag, cfg, warm_policy.as_mut(), Mode::Preemptive, &ff_opts,
                    );
                    let mut tr_opts = RunOptions::seeded(*seed).with_trace();
                    tr_opts.quantum = Some(quantum);
                    let stepped = engine::run(
                        dag, cfg, make_policy(algo).as_mut(), Mode::Preemptive, &tr_opts,
                    );
                    prop_assert_eq!(
                        stepped.stats.epochs_skipped, 0,
                        "{} q={}: tracing failed to disable fast-forward",
                        algo.label(), quantum
                    );
                    prop_assert_eq!(
                        ff.makespan, stepped.makespan,
                        "{} q={}: fast-forward changed the makespan",
                        algo.label(), quantum
                    );
                    prop_assert_eq!(&ff.busy_time, &stepped.busy_time);
                    prop_assert_eq!(ff.epochs, stepped.epochs);
                    prop_assert_eq!(ff.stats.tasks_assigned, stepped.stats.tasks_assigned);
                    prop_assert_eq!(
                        ff.stats.transitions.progress_updates,
                        stepped.stats.transitions.progress_updates
                    );
                }
            }
        }
    }

    /// The steady-state sweep path proper: artifact-backed initialization
    /// *and* workspace/policy reuse together still replay cold runs.
    #[test]
    fn dirty_workspace_with_artifacts_matches_cold_runs(
        instances in arb_instances(),
    ) {
        for algo in ALL_ALGORITHMS {
            if !algo.is_offline() {
                continue; // artifacts are only consumed by offline policies
            }
            for (mode, quantum) in CADENCES {
                let mut ws = Workspace::new();
                let mut warm_policy = make_policy(algo);
                for (dag, cfg, seed) in &instances {
                    let artifacts = Arc::new(Artifacts::compute(dag));
                    let mut opts = RunOptions::seeded(*seed).with_trace();
                    opts.quantum = quantum;
                    let warm = engine::run_in_with_artifacts(
                        &mut ws, dag, cfg, warm_policy.as_mut(), mode, &opts, &artifacts,
                    );
                    let cold = engine::run(
                        dag, cfg, make_policy(algo).as_mut(), mode, &opts,
                    );
                    prop_assert_eq!(
                        warm.makespan, cold.makespan,
                        "{} {:?} q={:?}: makespan diverged (artifacts + reuse)",
                        algo.label(), mode, quantum
                    );
                    prop_assert_eq!(
                        warm.trace.expect("requested").segments(),
                        cold.trace.expect("requested").segments(),
                        "{} {:?} q={:?}: trace diverged (artifacts + reuse)",
                        algo.label(), mode, quantum
                    );
                }
            }
        }
    }

    /// Reuse counters are reported faithfully: the first run on a
    /// workspace is cold, every later one is warm — regardless of shape
    /// changes between runs.
    #[test]
    fn reuse_counters_track_workspace_history(
        instances in arb_instances(),
        algo_ix in 0usize..6,
    ) {
        let algo = ALL_ALGORITHMS[algo_ix];
        let mut ws = Workspace::new();
        let mut policy = make_policy(algo);
        for (run, (dag, cfg, seed)) in instances.iter().enumerate() {
            let out = engine::run_in(
                &mut ws, dag, cfg, policy.as_mut(), Mode::NonPreemptive,
                &RunOptions::seeded(*seed),
            );
            if run == 0 {
                prop_assert_eq!(out.stats.workspace_cold_inits, 1);
                prop_assert_eq!(out.stats.workspace_reuses, 0);
            } else {
                prop_assert_eq!(out.stats.workspace_cold_inits, 0);
                prop_assert_eq!(out.stats.workspace_reuses, 1);
            }
        }
    }
}
