//! The unified epoch engine must be indistinguishable from the two
//! pre-refactor engines (preserved verbatim in `fhs_sim::reference`) for
//! **all six** paper schedulers, in both modes, on random K-DAGs — not
//! just FIFO on a chain. Equality is checked on the strongest observable:
//! the full trace, segment by segment.
//!
//! A second family pins the epoch-skipping preemptive engine to the
//! literal per-quantum scheduler (`run_per_step`): exactly for policies
//! whose choices ignore candidates' *remaining* work (DType, MaxDP,
//! ShiftBT — and FIFO, covered in `fhs-sim`'s own suite), skipping
//! decision epochs between completions cannot change the schedule.
//! LSpan and MQB *do* read remaining work, so they are compared under
//! `with_quantum(1)`, where both engines are forced to the same cadence.
//! KGreedy is excluded from the cadence family only: its RNG draws once
//! per consulted epoch, so changing the epoch *count* legitimately
//! changes the stream (it still matches `reference::run` exactly).

use fhs_core::{make_policy, Algorithm, ALL_ALGORITHMS};
use fhs_sim::{engine, reference, MachineConfig, Mode, RunOptions};
use kdag::{KDag, KDagBuilder, TaskId};
use proptest::prelude::*;

fn arb_kdag(k: usize, max_tasks: usize, max_work: u64) -> impl Strategy<Value = KDag> {
    (1..=max_tasks).prop_flat_map(move |n| {
        let types = proptest::collection::vec(0..k, n);
        let works = proptest::collection::vec(1..=max_work, n);
        let parents = proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..=3), n);
        (types, works, parents).prop_map(move |(types, works, parents)| {
            let mut b = KDagBuilder::new(k);
            let ids: Vec<TaskId> = types
                .iter()
                .zip(&works)
                .map(|(&t, &w)| b.add_task(t, w))
                .collect();
            let mut seen = std::collections::HashSet::new();
            for (i, ps) in parents.iter().enumerate().skip(1) {
                for &raw in ps {
                    let p = (raw as usize) % i;
                    if seen.insert((p, i)) {
                        b.add_edge(ids[p], ids[i]).unwrap();
                    }
                }
            }
            b.build().expect("forward-edge graphs are acyclic")
        })
    })
}

fn arb_config(k: usize) -> impl Strategy<Value = MachineConfig> {
    proptest::collection::vec(1usize..4, k).prop_map(MachineConfig::new)
}

/// Asserts that the unified engine and the reference engine produce the
/// same outcome on the strongest observable: the full trace. Panics on
/// divergence (the proptest shim's `prop_assert*` are panic-based too).
fn assert_matches_reference(
    dag: &KDag,
    cfg: &MachineConfig,
    algo: Algorithm,
    mode: Mode,
    opts: &RunOptions,
) {
    let new = engine::run(dag, cfg, make_policy(algo).as_mut(), mode, opts);
    let old = reference::run(dag, cfg, make_policy(algo).as_mut(), mode, opts);
    assert_eq!(
        new.makespan,
        old.makespan,
        "{} {:?}: makespan diverged",
        algo.label(),
        mode
    );
    assert_eq!(new.busy_time, old.busy_time);
    assert_eq!(new.epochs, old.epochs, "{} {:?}", algo.label(), mode);
    let (new_tr, old_tr) = (new.trace.expect("requested"), old.trace.expect("requested"));
    assert_eq!(
        new_tr.segments(),
        old_tr.segments(),
        "{} {:?}: trace diverged",
        algo.label(),
        mode
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All six schedulers, both modes: the indexed engine replays the
    /// pre-refactor engines bit for bit.
    #[test]
    fn unified_engine_matches_reference_for_all_six(
        dag in arb_kdag(3, 20, 4),
        cfg in arb_config(3),
        seed in 0u64..1000,
    ) {
        let opts = RunOptions::seeded(seed).with_trace();
        for algo in ALL_ALGORITHMS {
            for mode in [Mode::NonPreemptive, Mode::Preemptive] {
                assert_matches_reference(&dag, &cfg, algo, mode, &opts);
            }
        }
    }

    /// Same equivalence at the paper's literal per-quantum cadence, where
    /// the remaining-work-dependent policies (LSpan, MQB) exercise the
    /// `progress` fast path every time unit.
    #[test]
    fn unified_engine_matches_reference_per_quantum(
        dag in arb_kdag(3, 14, 4),
        cfg in arb_config(3),
        seed in 0u64..1000,
    ) {
        let opts = RunOptions::seeded(seed).with_trace().with_quantum(1);
        for algo in ALL_ALGORITHMS {
            assert_matches_reference(&dag, &cfg, algo, Mode::Preemptive, &opts);
        }
    }

    /// Epoch-skipping is invisible to remaining-work-independent policies:
    /// the default preemptive run equals the literal per-step scheduler.
    #[test]
    fn epoch_skipping_equals_per_step_for_remaining_independent_policies(
        dag in arb_kdag(3, 16, 4),
        cfg in arb_config(3),
        seed in 0u64..1000,
    ) {
        for algo in [Algorithm::DType, Algorithm::MaxDP, Algorithm::ShiftBT] {
            let opts = RunOptions::seeded(seed);
            let fast = engine::run(&dag, &cfg, make_policy(algo).as_mut(), Mode::Preemptive, &opts);
            let slow = engine::run_per_step(&dag, &cfg, make_policy(algo).as_mut(), &opts);
            prop_assert_eq!(fast.makespan, slow.makespan, "{}", algo.label());
            prop_assert_eq!(&fast.busy_time, &slow.busy_time);
        }
    }

    /// LSpan and MQB consult remaining work, so they are pinned to the
    /// per-step scheduler by forcing the same cadence explicitly.
    #[test]
    fn quantum_one_equals_per_step_for_remaining_dependent_policies(
        dag in arb_kdag(3, 12, 4),
        cfg in arb_config(3),
        seed in 0u64..1000,
    ) {
        for algo in [Algorithm::LSpan, Algorithm::Mqb] {
            let opts = RunOptions::seeded(seed).with_quantum(1);
            let stepped = engine::run(&dag, &cfg, make_policy(algo).as_mut(), Mode::Preemptive, &opts);
            let literal = engine::run_per_step(&dag, &cfg, make_policy(algo).as_mut(), &RunOptions::seeded(seed));
            prop_assert_eq!(stepped.makespan, literal.makespan, "{}", algo.label());
            prop_assert_eq!(&stepped.busy_time, &literal.busy_time);
        }
    }
}
