//! Observability must be observe-only: running with every recording
//! channel enabled (utilization timeline, latency histograms, event
//! trace) must reproduce the unobserved run bit for bit — same makespan,
//! same busy-time vector, same epoch count, same full trace — for every
//! scheduler, both modes, both cadences. The recorded payload itself must
//! satisfy the paper's accounting identities.

use fhs_core::{make_policy, ALL_ALGORITHMS};
use fhs_sim::{engine, MachineConfig, Mode, ObsConfig, RunOptions};
use kdag::{KDag, KDagBuilder, TaskId};
use proptest::prelude::*;

fn arb_kdag(k: usize, max_tasks: usize, max_work: u64) -> impl Strategy<Value = KDag> {
    (1..=max_tasks).prop_flat_map(move |n| {
        let types = proptest::collection::vec(0..k, n);
        let works = proptest::collection::vec(1..=max_work, n);
        let parents = proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..=3), n);
        (types, works, parents).prop_map(move |(types, works, parents)| {
            let mut b = KDagBuilder::new(k);
            let ids: Vec<TaskId> = types
                .iter()
                .zip(&works)
                .map(|(&t, &w)| b.add_task(t, w))
                .collect();
            let mut seen = std::collections::HashSet::new();
            for (i, ps) in parents.iter().enumerate().skip(1) {
                for &raw in ps {
                    let p = (raw as usize) % i;
                    if seen.insert((p, i)) {
                        b.add_edge(ids[p], ids[i]).unwrap();
                    }
                }
            }
            b.build().expect("forward-edge graphs are acyclic")
        })
    })
}

fn arb_config(k: usize) -> impl Strategy<Value = MachineConfig> {
    proptest::collection::vec(1usize..4, k).prop_map(MachineConfig::new)
}

const CADENCES: [(Mode, Option<u64>); 3] = [
    (Mode::NonPreemptive, None),
    (Mode::Preemptive, None),
    (Mode::Preemptive, Some(1)),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every scheduler, both modes, both cadences: the instrumented run
    /// replays the uninstrumented one exactly, and the recorded
    /// utilization report satisfies `busy == busy_time[α]` and
    /// `busy + idle = P_α × makespan` for every type α.
    #[test]
    fn recording_is_invisible_and_accounts_exactly(
        dag in arb_kdag(3, 18, 4),
        cfg in arb_config(3),
        seed in 0u64..1000,
    ) {
        for algo in ALL_ALGORITHMS {
            for (mode, quantum) in CADENCES {
                let mut plain_opts = RunOptions::seeded(seed).with_trace();
                plain_opts.quantum = quantum;
                let plain = engine::run(
                    &dag, &cfg, make_policy(algo).as_mut(), mode, &plain_opts,
                );
                let seen_opts = plain_opts.clone().with_observe(ObsConfig::all());
                let seen = engine::run(
                    &dag, &cfg, make_policy(algo).as_mut(), mode, &seen_opts,
                );
                let label = format!("{} {:?} q={:?}", algo.label(), mode, quantum);
                prop_assert_eq!(seen.makespan, plain.makespan, "{}: makespan", &label);
                prop_assert_eq!(&seen.busy_time, &plain.busy_time, "{}: busy", &label);
                prop_assert_eq!(seen.epochs, plain.epochs, "{}: epochs", &label);
                prop_assert_eq!(
                    seen.trace.expect("requested").segments(),
                    plain.trace.expect("requested").segments(),
                    "{}: trace diverged under recording", &label
                );
                let obs = seen.obs.expect("observe requested");
                let util = obs.util.as_ref().expect("utilization on");
                prop_assert_eq!(util.makespan, plain.makespan);
                prop_assert_eq!(util.per_type.len(), 3);
                for (alpha, t) in util.per_type.iter().enumerate() {
                    prop_assert_eq!(
                        t.busy, plain.busy_time[alpha],
                        "{} type {}: timeline busy != engine busy", &label, alpha
                    );
                    prop_assert_eq!(
                        t.busy + t.idle_active + t.idle_tail,
                        t.procs as u64 * util.makespan,
                        "{} type {}: busy+idle != P_α × makespan", &label, alpha
                    );
                    prop_assert!(
                        t.drain_time <= util.makespan,
                        "{} type {}: drain {} past makespan {}",
                        &label, alpha, t.drain_time, util.makespan
                    );
                }
                // Event stream sanity: epoch-stamped, time-monotonic.
                prop_assert!(obs.events.windows(2).all(|w| w[0].t <= w[1].t));
                prop_assert!(obs.events.windows(2).all(|w| w[0].epoch <= w[1].epoch));
                prop_assert_eq!(obs.assign_ns.count, plain.epochs);
            }
        }
    }
}
