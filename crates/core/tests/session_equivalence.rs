//! The session engine must be a strict generalization of the single-job
//! engine: a **one-job session** replays `engine::run` bit for bit — same
//! makespan, same busy-time vector, same epoch count, same utilization
//! timeline integrals — for every scheduler, both modes, both cadences.
//! And a session that *recycles* its job runtimes and policy values across
//! a stream of jobs (the steady-state path) must still give every job
//! exactly the schedule a cold, isolated run would have given it when the
//! machine is empty at admission.
//!
//! This is the contract that let the PR-6 refactor move the epoch loop out
//! of `engine::run` into `session::drive`: the single-job entry points
//! stayed bit-identical (this file plus the goldens pin it), and the
//! multi-job path reuses the exact same loop rather than a forked copy.

use std::sync::Arc;

use fhs_core::{make_policy, ALL_ALGORITHMS};
use fhs_sim::{
    engine, Assignments, EpochView, MachineConfig, Mode, Policy, RunOptions, Session,
    SessionOptions, Workspace, ALL_INTER_JOB_POLICIES,
};
use kdag::precompute::Artifacts;
use kdag::{KDag, KDagBuilder, TaskId};
use proptest::prelude::*;

/// Forwards every [`Policy`] method to the wrapped policy but *withdraws*
/// the fast-forward stability certificate, so the session engine executes
/// every per-quantum epoch literally. Comparing a plan run with plain
/// policies (fast-forward eligible) against the same plan run under this
/// wrapper pins the fast-forward path bitwise against stepping.
struct Stepping(Box<dyn Policy>);

impl Policy for Stepping {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn init(&mut self, job: &KDag, config: &MachineConfig, seed: u64) {
        self.0.init(job, config, seed)
    }
    fn init_with_artifacts(
        &mut self,
        job: &KDag,
        config: &MachineConfig,
        seed: u64,
        artifacts: &Arc<Artifacts>,
    ) {
        self.0.init_with_artifacts(job, config, seed, artifacts)
    }
    fn reset_in(&mut self, workspace: &mut Workspace) {
        self.0.reset_in(workspace)
    }
    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        self.0.assign(view, out)
    }
    fn attach_job(
        &mut self,
        job: &KDag,
        config: &MachineConfig,
        seed: u64,
        artifacts: Option<&Arc<Artifacts>>,
    ) {
        self.0.attach_job(job, config, seed, artifacts)
    }
    fn detach_job(&mut self) {
        self.0.detach_job()
    }
    fn take_selection_stats(&mut self) -> Option<fhs_sim::SelectionStats> {
        self.0.take_selection_stats()
    }
    fn assign_stable(&self) -> bool {
        false
    }
}

fn arb_kdag(k: usize, max_tasks: usize, max_work: u64) -> impl Strategy<Value = KDag> {
    (1..=max_tasks).prop_flat_map(move |n| {
        let types = proptest::collection::vec(0..k, n);
        let works = proptest::collection::vec(1..=max_work, n);
        let parents = proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..=3), n);
        (types, works, parents).prop_map(move |(types, works, parents)| {
            let mut b = KDagBuilder::new(k);
            let ids: Vec<TaskId> = types
                .iter()
                .zip(&works)
                .map(|(&t, &w)| b.add_task(t, w))
                .collect();
            let mut seen = std::collections::HashSet::new();
            for (i, ps) in parents.iter().enumerate().skip(1) {
                for &raw in ps {
                    let p = (raw as usize) % i;
                    if seen.insert((p, i)) {
                        b.add_edge(ids[p], ids[i]).unwrap();
                    }
                }
            }
            b.build().expect("forward-edge graphs are acyclic")
        })
    })
}

fn arb_config(k: usize) -> impl Strategy<Value = MachineConfig> {
    proptest::collection::vec(1usize..4, k).prop_map(MachineConfig::new)
}

/// One machine plus a stream of 2–4 differently-shaped jobs for it.
fn arb_stream() -> impl Strategy<Value = (MachineConfig, Vec<(KDag, u64)>)> {
    (
        arb_config(3),
        proptest::collection::vec((arb_kdag(3, 14, 4), 0u64..1000), 2..=4),
    )
}

const CADENCES: [(Mode, Option<u64>); 3] = [
    (Mode::NonPreemptive, None),
    (Mode::Preemptive, None),
    (Mode::Preemptive, Some(1)),
];

fn session_opts(mode: Mode, quantum: Option<u64>) -> SessionOptions {
    let mut opts = SessionOptions::new(mode);
    opts.quantum = quantum;
    opts.observe = fhs_sim::ObsConfig {
        utilization: true,
        ..fhs_sim::ObsConfig::default()
    };
    opts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every scheduler, both modes, both cadences: a session holding
    /// exactly one job reproduces `engine::run` on the schedule
    /// observables — makespan, busy-time vector, epoch count, assignment
    /// count, and the per-type utilization timeline integrals.
    #[test]
    fn one_job_session_replays_engine_run(
        (cfg, jobs) in arb_stream(),
    ) {
        let (dag, seed) = &jobs[0];
        for algo in ALL_ALGORITHMS {
            for (mode, quantum) in CADENCES {
                let mut opts = RunOptions::seeded(*seed).with_observe(fhs_sim::ObsConfig {
                    utilization: true,
                    ..fhs_sim::ObsConfig::default()
                });
                opts.quantum = quantum;
                let single = engine::run(dag, &cfg, make_policy(algo).as_mut(), mode, &opts);

                let mut s = Session::new(cfg.clone(), session_opts(mode, quantum));
                s.admit(Arc::new(dag.clone()), make_policy(algo), *seed);
                let (out, _) = s.finish();

                prop_assert_eq!(
                    out.makespan, single.makespan,
                    "{} {:?} q={:?}: session makespan diverged", algo.label(), mode, quantum
                );
                prop_assert_eq!(&out.busy_time, &single.busy_time);
                prop_assert_eq!(out.stats.epochs, single.stats.epochs);
                prop_assert_eq!(out.stats.tasks_assigned, single.stats.tasks_assigned);
                prop_assert_eq!(out.jobs.len(), 1);
                prop_assert_eq!(out.jobs[0].finish, single.makespan);
                prop_assert_eq!(out.jobs[0].response(), single.makespan);

                let su = single.obs.as_ref().and_then(|o| o.util.as_ref()).expect("util on");
                let ou = out.obs.as_ref().and_then(|o| o.util.as_ref()).expect("util on");
                prop_assert_eq!(ou.makespan, su.makespan);
                for (a, b) in ou.per_type.iter().zip(&su.per_type) {
                    prop_assert_eq!(a.busy, b.busy);
                    prop_assert_eq!(a.idle_active, b.idle_active);
                    prop_assert_eq!(a.idle_tail, b.idle_tail);
                }
            }
        }
    }

    /// The steady-state streaming path: ONE session per (algo, cadence)
    /// hosts every job back to back — runtimes recycled through the spare
    /// pool, policy values detached and re-attached, offline algorithms
    /// admitted through shared artifacts. With the machine empty at each
    /// admission, every job's response must equal its cold isolated
    /// makespan exactly.
    #[test]
    fn recycled_runtimes_and_policies_replay_cold_runs(
        (cfg, jobs) in arb_stream(),
    ) {
        for algo in ALL_ALGORITHMS {
            for (mode, quantum) in CADENCES {
                let mut s = Session::new(cfg.clone(), session_opts(mode, quantum));
                let mut expected = Vec::new();
                for (dag, seed) in &jobs {
                    let mut opts = RunOptions::seeded(*seed);
                    opts.quantum = quantum;
                    let cold = engine::run(dag, &cfg, make_policy(algo).as_mut(), mode, &opts);
                    expected.push(cold.makespan);

                    let policy = s.recycled_policy().unwrap_or_else(|| make_policy(algo));
                    if algo.is_offline() {
                        let artifacts = Arc::new(Artifacts::compute(dag));
                        s.admit_with_artifacts(Arc::new(dag.clone()), policy, *seed, &artifacts);
                    } else {
                        s.admit(Arc::new(dag.clone()), policy, *seed);
                    }
                    s.drain();
                }
                let (out, _) = s.finish();
                prop_assert_eq!(out.jobs.len(), jobs.len());
                for (record, want) in out.jobs.iter().zip(&expected) {
                    prop_assert_eq!(
                        record.response(), *want,
                        "{} {:?} q={:?}: recycled session diverged from cold run",
                        algo.label(), mode, quantum
                    );
                    prop_assert_eq!(record.queueing(), 0);
                }
                prop_assert_eq!(out.stream.completed, jobs.len() as u64);
                // Session busy time is the sum over all jobs.
                let total: u64 = out.busy_time.iter().sum();
                let work: u64 = jobs.iter().map(|(d, _)| d.total_work()).sum();
                prop_assert_eq!(total, work);
            }
        }
    }

    /// Contended streams under every inter-job discipline: all jobs
    /// retire, machine busy time conserves total work, per-job metrics
    /// respect their bounds, and a replay is bit-deterministic.
    #[test]
    fn contended_streams_retire_all_jobs_and_conserve_work(
        (cfg, jobs) in arb_stream(),
        gap in 0u64..6,
        algo_ix in 0usize..6,
    ) {
        let algo = ALL_ALGORITHMS[algo_ix];
        for (mode, quantum) in CADENCES {
            for inter in ALL_INTER_JOB_POLICIES {
                let run_once = || {
                    let mut opts = session_opts(mode, quantum);
                    opts.inter = inter;
                    let mut s = Session::new(cfg.clone(), opts);
                    for (i, (dag, seed)) in jobs.iter().enumerate() {
                        s.run_until(i as u64 * gap);
                        s.admit(Arc::new(dag.clone()), make_policy(algo), *seed);
                    }
                    let (out, _) = s.finish();
                    out
                };
                let out = run_once();
                prop_assert_eq!(out.jobs.len(), jobs.len(), "{:?} {:?}", mode, inter);
                let total: u64 = out.busy_time.iter().sum();
                let work: u64 = jobs.iter().map(|(d, _)| d.total_work()).sum();
                prop_assert_eq!(total, work, "{:?} {:?}: work not conserved", mode, inter);
                for r in &out.jobs {
                    prop_assert!(r.response() >= r.lower_bound,
                        "{:?} {:?}: response beat the isolated lower bound", mode, inter);
                    prop_assert!(r.slowdown() >= 1.0);
                    prop_assert!(r.first_start.is_none() || r.first_start.unwrap() >= r.arrival);
                }
                let replay = run_once();
                let a: Vec<(u64, u64)> = out.jobs.iter().map(|r| (r.id, r.finish)).collect();
                let b: Vec<(u64, u64)> = replay.jobs.iter().map(|r| (r.id, r.finish)).collect();
                prop_assert_eq!(a, b, "{:?} {:?}: replay diverged", mode, inter);
            }
        }
    }

    /// Epoch fast-forward is bitwise-invisible. A sparse, idle-heavy
    /// multi-job plan (long gaps between arrivals, so spans are clamped at
    /// horizons as well as at completions) is replayed twice per cell:
    /// once with plain policies (fast-forward eligible) and once under the
    /// [`Stepping`] wrapper, which forces every per-quantum epoch to
    /// execute. Schedules, per-job records, and the synthesized counters
    /// (epochs, assignments, progress updates) must all coincide — for
    /// every scheduler, every cadence, every inter-job discipline.
    #[test]
    fn fast_forward_matches_stepping_on_sparse_streams(
        (cfg, jobs) in arb_stream(),
        gap in 5u64..40,
    ) {
        const FF_CADENCES: [(Mode, Option<u64>); 4] = [
            (Mode::NonPreemptive, None),
            (Mode::Preemptive, None),
            (Mode::Preemptive, Some(1)),
            (Mode::Preemptive, Some(3)),
        ];
        for algo in ALL_ALGORITHMS {
            for (mode, quantum) in FF_CADENCES {
                for inter in ALL_INTER_JOB_POLICIES {
                    let run_plan = |stepping: bool| {
                        let mut opts = SessionOptions::new(mode);
                        opts.quantum = quantum;
                        opts.inter = inter;
                        let mut s = Session::new(cfg.clone(), opts);
                        for (i, (dag, seed)) in jobs.iter().enumerate() {
                            s.run_until(i as u64 * gap);
                            let p = make_policy(algo);
                            let p: Box<dyn fhs_sim::Policy> =
                                if stepping { Box::new(Stepping(p)) } else { p };
                            s.admit(Arc::new(dag.clone()), p, *seed);
                        }
                        let (out, _) = s.finish();
                        out
                    };
                    let ff = run_plan(false);
                    let st = run_plan(true);
                    prop_assert_eq!(
                        st.stats.epochs_skipped, 0,
                        "{} {:?} q={:?} {:?}: wrapper failed to disable fast-forward",
                        algo.label(), mode, quantum, inter
                    );
                    prop_assert_eq!(
                        ff.makespan, st.makespan,
                        "{} {:?} q={:?} {:?}: fast-forward changed the makespan",
                        algo.label(), mode, quantum, inter
                    );
                    prop_assert_eq!(&ff.busy_time, &st.busy_time);
                    prop_assert_eq!(ff.stats.epochs, st.stats.epochs);
                    prop_assert_eq!(ff.stats.tasks_assigned, st.stats.tasks_assigned);
                    prop_assert_eq!(ff.stats.transitions, st.stats.transitions);
                    prop_assert_eq!(ff.stats.dirty_visits, st.stats.dirty_visits);
                    prop_assert_eq!(ff.stats.full_rescans, st.stats.full_rescans);
                    let a: Vec<_> = ff.jobs.iter()
                        .map(|r| (r.id, r.arrival, r.first_start, r.finish))
                        .collect();
                    let b: Vec<_> = st.jobs.iter()
                        .map(|r| (r.id, r.arrival, r.first_start, r.finish))
                        .collect();
                    prop_assert_eq!(
                        a, b,
                        "{} {:?} q={:?} {:?}: per-job records diverged",
                        algo.label(), mode, quantum, inter
                    );
                }
            }
        }
    }
}
