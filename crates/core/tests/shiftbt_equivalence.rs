//! Equivalence proof for ShiftBT's incremental bottleneck sequencing:
//! on random K-DAGs and machine configurations, the cached /
//! early-exiting / heap-dispatched production path must reproduce the
//! retained from-scratch oracle (`shiftbt::reference`) bit for bit —
//! the same bottleneck order and the same per-task rank table.

use fhs_core::shiftbt::{reference, ShiftBT};
use fhs_sim::{MachineConfig, Policy};
use kdag::{duedate, KDag, KDagBuilder, TaskId};
use proptest::prelude::*;

fn arb_kdag(k: usize, max_tasks: usize, max_work: u64) -> impl Strategy<Value = KDag> {
    (1..=max_tasks).prop_flat_map(move |n| {
        let types = proptest::collection::vec(0..k, n);
        let works = proptest::collection::vec(1..=max_work, n);
        let parents = proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..=3), n);
        (types, works, parents).prop_map(move |(types, works, parents)| {
            let mut b = KDagBuilder::new(k);
            let ids: Vec<TaskId> = types
                .iter()
                .zip(&works)
                .map(|(&t, &w)| b.add_task(t, w))
                .collect();
            let mut seen = std::collections::HashSet::new();
            for (i, ps) in parents.iter().enumerate().skip(1) {
                for &raw in ps {
                    let p = (raw as usize) % i;
                    if seen.insert((p, i)) {
                        b.add_edge(ids[p], ids[i]).unwrap();
                    }
                }
            }
            b.build().expect("forward-edge graphs are acyclic")
        })
    })
}

fn arb_config(k: usize) -> impl Strategy<Value = MachineConfig> {
    proptest::collection::vec(1usize..5, k).prop_map(MachineConfig::new)
}

fn assert_matches_oracle(job: &KDag, cfg: &MachineConfig, p: &mut ShiftBT) {
    let due = duedate::due_dates(job);
    let (order, rank) = reference::bottleneck_sequencing(job, cfg, &due);
    p.init(job, cfg, 0);
    assert_eq!(p.bottleneck_order, order, "bottleneck order diverged");
    assert_eq!(p.rank_table(), &rank[..], "rank table diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn incremental_sequencing_matches_oracle(dag in arb_kdag(4, 40, 5), cfg in arb_config(4)) {
        assert_matches_oracle(&dag, &cfg, &mut ShiftBT::default());
    }

    #[test]
    fn warm_policy_matches_oracle_across_instances(
        a in arb_kdag(3, 30, 4),
        b in arb_kdag(3, 30, 4),
        cfg_a in arb_config(3),
        cfg_b in arb_config(3),
    ) {
        // The same policy value re-initialized back to back (the pooled
        // sweep's steady state) must match a cold oracle run every time.
        let mut p = ShiftBT::default();
        assert_matches_oracle(&a, &cfg_a, &mut p);
        assert_matches_oracle(&b, &cfg_b, &mut p);
        assert_matches_oracle(&a, &cfg_b, &mut p);
    }

    #[test]
    fn single_type_jobs_sequence_by_edd(dag in arb_kdag(1, 25, 4), cfg in arb_config(1)) {
        assert_matches_oracle(&dag, &cfg, &mut ShiftBT::default());
    }
}
