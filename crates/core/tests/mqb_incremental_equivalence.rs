//! The incremental, index-pruned MQB selection (PR 7) must be **invisible**:
//! a change-journal replayed into a dominance-frontier index, with picks
//! served off frontier heads, has to reproduce the flat full-scan selection
//! bit for bit — same winners, same traces — for every §V-G information
//! model, both modes, both preemption cadences, and across multi-job
//! session shapes where queues churn between a policy's epochs.
//!
//! The oracle is `NaiveMqb`: the pre-optimization quadratic selection
//! restated verbatim (recompute and re-sort every untaken candidate's
//! balance vector on every pick), here generalized over information models
//! by borrowing the perturbed descendant matrix from a real `Mqb` init —
//! so both sides consume the identical RNG stream and the comparison pins
//! *selection*, not initialization.
//!
//! The wide-instance tests drive queues past the flat/indexed crossover
//! and assert — via the new selection counters — that the indexed path
//! actually engaged (candidates were pruned) while the trace stayed
//! identical. Without that assertion a regression that quietly routed
//! everything to the flat path would vacuously pass.

use std::sync::Arc;

use fhs_core::mqb::{cmp_balance, InfoModel, Mqb, MqbTuning};
use fhs_sim::{
    engine, Assignments, EpochView, MachineConfig, Mode, Policy, ReadyTask, RunOptions, Session,
    SessionOptions,
};
use kdag::{KDag, KDagBuilder, TaskId};
use proptest::prelude::*;

const CADENCES: [(Mode, Option<u64>); 3] = [
    (Mode::NonPreemptive, None),
    (Mode::Preemptive, None),
    (Mode::Preemptive, Some(1)),
];

fn arb_kdag(k: usize, max_tasks: usize, max_work: u64) -> impl Strategy<Value = KDag> {
    (1..=max_tasks).prop_flat_map(move |n| {
        let types = proptest::collection::vec(0..k, n);
        let works = proptest::collection::vec(1..=max_work, n);
        let parents = proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..=3), n);
        (types, works, parents).prop_map(move |(types, works, parents)| {
            let mut b = KDagBuilder::new(k);
            let ids: Vec<TaskId> = types
                .iter()
                .zip(&works)
                .map(|(&t, &w)| b.add_task(t, w))
                .collect();
            let mut seen = std::collections::HashSet::new();
            for (i, ps) in parents.iter().enumerate().skip(1) {
                for &raw in ps {
                    let p = (raw as usize) % i;
                    if seen.insert((p, i)) {
                        b.add_edge(ids[p], ids[i]).unwrap();
                    }
                }
            }
            b.build().expect("forward-edge graphs are acyclic")
        })
    })
}

fn arb_config(k: usize) -> impl Strategy<Value = MachineConfig> {
    proptest::collection::vec(1usize..4, k).prop_map(MachineConfig::new)
}

/// A deterministic two-type instance whose type-0 ready queue starts far
/// above the flat/indexed crossover (64), with a second wave of type-1
/// tasks released as their parents finish — so the index sees inserts,
/// removals and (per-quantum) remaining-work updates mid-run.
fn wide_instance(n0: usize, n1: usize) -> (KDag, MachineConfig) {
    let mut b = KDagBuilder::new(2);
    let mut roots = Vec::with_capacity(n0);
    for i in 0..n0 {
        roots.push(b.add_task(0, 1 + (i as u64 * 7 + 3) % 5));
    }
    for i in 0..n1 {
        let t = b.add_task(1, 1 + (i as u64 * 5 + 1) % 4);
        let p1 = i % n0;
        let p2 = (i * 3 + 1) % n0;
        b.add_edge(roots[p1], t).unwrap();
        if p2 != p1 {
            b.add_edge(roots[p2], t).unwrap();
        }
    }
    (b.build().unwrap(), MachineConfig::new(vec![2, 2]))
}

fn run_pair(
    dag: &KDag,
    cfg: &MachineConfig,
    fast: &mut Mqb,
    naive: &mut NaiveMqb,
    mode: Mode,
    quantum: Option<u64>,
    seed: u64,
) -> engine::SimOutcome {
    let mut opts = RunOptions::seeded(seed).with_trace();
    opts.quantum = quantum;
    let f = engine::run(dag, cfg, fast, mode, &opts);
    let n = engine::run(dag, cfg, naive, mode, &opts);
    assert_eq!(
        f.makespan, n.makespan,
        "{mode:?} q={quantum:?}: makespan diverged from the naive oracle"
    );
    assert_eq!(
        f.trace.as_ref().expect("requested").segments(),
        n.trace.as_ref().expect("requested").segments(),
        "{mode:?} q={quantum:?}: trace diverged from the naive oracle"
    );
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All six §V-G information models × three cadences: the incremental
    /// journal-synced selection equals the naive quadratic oracle on the
    /// full trace. The oracle borrows the perturbed matrix from an `Mqb`
    /// init, so any divergence is a selection bug, not an init skew.
    #[test]
    fn incremental_mqb_matches_naive_oracle_all_info_models(
        dag in arb_kdag(3, 18, 4),
        cfg in arb_config(3),
        seed in 0u64..1000,
    ) {
        for info in InfoModel::ALL_VARIANTS {
            for (mode, quantum) in CADENCES {
                run_pair(
                    &dag, &cfg,
                    &mut Mqb::new(info),
                    &mut NaiveMqb::new(info, true),
                    mode, quantum, seed,
                );
            }
        }
    }

    /// Multi-job sessions with staggered admissions and shuffled job
    /// shapes: every job's retirement record (finish time, first start)
    /// and the session's busy-time vector match a session of naive
    /// oracles. Between a policy's epochs other jobs' picks interleave,
    /// so this pins the journal-cursor bookkeeping under queue churn the
    /// single-job engine never produces.
    #[test]
    fn shuffled_session_shapes_match_naive_oracle(
        (cfg, jobs) in (
            arb_config(3),
            proptest::collection::vec((arb_kdag(3, 14, 4), 0u64..1000), 2..=4),
        ),
        gap in 0u64..6,
    ) {
        for (mode, quantum) in CADENCES {
            let run_with = |naive: bool| {
                let mut opts = SessionOptions::new(mode);
                opts.quantum = quantum;
                let mut s = Session::new(cfg.clone(), opts);
                for (i, (dag, seed)) in jobs.iter().enumerate() {
                    s.run_until(i as u64 * gap);
                    let policy: Box<dyn Policy> = if naive {
                        Box::new(NaiveMqb::new(InfoModel::default(), true))
                    } else {
                        Box::new(Mqb::default())
                    };
                    s.admit(Arc::new(dag.clone()), policy, *seed);
                }
                let (out, _) = s.finish();
                out
            };
            let fast = run_with(false);
            let naive = run_with(true);
            prop_assert_eq!(fast.makespan, naive.makespan,
                "{:?} q={:?}: session makespan diverged", mode, quantum);
            prop_assert_eq!(&fast.busy_time, &naive.busy_time);
            prop_assert_eq!(&fast.jobs, &naive.jobs,
                "{:?} q={:?}: per-job records diverged", mode, quantum);
        }
    }
}

/// Wide instances (initial queue ≈ 3× the crossover): the indexed path
/// must both *engage* (strictly positive pruning, journal diffs, exactly
/// one cold snapshot per run) and stay bit-identical to the oracle.
#[test]
fn indexed_path_engages_and_matches_oracle_on_wide_instances() {
    for (n0, n1, seed) in [(200, 90, 7u64), (150, 150, 31)] {
        let (dag, cfg) = wide_instance(n0, n1);
        for (mode, quantum) in CADENCES {
            let mut fast = Mqb::default();
            let mut naive = NaiveMqb::new(InfoModel::default(), true);
            let out = run_pair(&dag, &cfg, &mut fast, &mut naive, mode, quantum, seed);
            let sel = out.stats.selection;
            assert!(
                sel.candidates_pruned > 0,
                "{mode:?} q={quantum:?}: wide instance never engaged the index \
                 (evaluated {}, pruned {})",
                sel.candidates_evaluated,
                sel.candidates_pruned
            );
            assert!(sel.candidates_evaluated > 0);
            assert_eq!(
                sel.cold_snapshots, 1,
                "{mode:?} q={quantum:?}: exactly one cold rebuild per attach"
            );
            assert!(
                sel.diff_events > 0,
                "{mode:?} q={quantum:?}: journal replay never ran"
            );
            // The whole point: the index prunes the bulk of the quadratic
            // candidate scan on contested wide rounds.
            assert!(
                sel.candidates_pruned > sel.candidates_evaluated,
                "{mode:?} q={quantum:?}: index pruned less than it evaluated \
                 ({} vs {})",
                sel.candidates_pruned,
                sel.candidates_evaluated
            );
        }
    }
}

/// The `subtract_own_work = false` ablation routes remaining-work updates
/// down the "member update only" journal arm (remaining is not part of
/// the group key there); the per-quantum cadence exercises it heavily.
#[test]
fn indexed_path_matches_oracle_without_own_work_subtraction() {
    let (dag, cfg) = wide_instance(180, 80);
    let tuning = MqbTuning {
        subtract_own_work: false,
        ..MqbTuning::default()
    };
    for (mode, quantum) in CADENCES {
        let mut fast = Mqb::with_tuning(InfoModel::default(), tuning);
        let mut naive = NaiveMqb::new(InfoModel::default(), false);
        let out = run_pair(&dag, &cfg, &mut fast, &mut naive, mode, quantum, 13);
        assert!(out.stats.selection.candidates_pruned > 0);
    }
}

/// The naive quadratic MQB selection, generalized over information
/// models: `init` runs a real `Mqb` init and copies its (perturbed)
/// descendant matrix, then every pick recomputes and re-sorts every
/// untaken candidate's projected balance vector from scratch.
struct NaiveMqb {
    inner: Mqb,
    subtract_own: bool,
    k: usize,
    d: Vec<f64>,
    d_total: Vec<f64>,
    working: Vec<f64>,
}

impl NaiveMqb {
    fn new(info: InfoModel, subtract_own: bool) -> Self {
        NaiveMqb {
            inner: Mqb::new(info),
            subtract_own,
            k: 0,
            d: Vec::new(),
            d_total: Vec::new(),
            working: Vec::new(),
        }
    }

    fn candidate_balance(&self, alpha: usize, rt: &ReadyTask, procs: &[usize]) -> Vec<f64> {
        let row_start = rt.id.index() * self.k;
        let mut out: Vec<f64> = (0..self.k)
            .map(|beta| {
                let mut l = self.working[beta] + self.d[row_start + beta];
                if beta == alpha && self.subtract_own {
                    l -= rt.remaining as f64;
                }
                l / procs[beta] as f64
            })
            .collect();
        out.sort_unstable_by(f64::total_cmp);
        out
    }

    fn apply_projection(&mut self, alpha: usize, rt: &ReadyTask) {
        self.working[alpha] -= rt.remaining as f64;
        let row_start = rt.id.index() * self.k;
        for (beta, w) in self.working.iter_mut().enumerate() {
            *w += self.d[row_start + beta];
        }
    }
}

impl Policy for NaiveMqb {
    fn name(&self) -> &str {
        "NaiveMQB"
    }

    fn init(&mut self, job: &KDag, config: &MachineConfig, seed: u64) {
        self.inner.init(job, config, seed);
        self.k = job.num_types();
        self.d.clear();
        for i in 0..job.num_tasks() {
            self.d
                .extend_from_slice(self.inner.d_row(TaskId::from_index(i)));
        }
        self.d_total = (0..job.num_tasks())
            .map(|i| self.d[i * self.k..(i + 1) * self.k].iter().sum())
            .collect();
    }

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        let k = self.k;
        let procs = view.config.procs_per_type();
        self.working.clear();
        self.working
            .extend(view.queue_work.iter().map(|&w| w as f64));

        for alpha in 0..k {
            let queue = &view.queues[alpha];
            let slots = view.slots[alpha];
            if slots == 0 || queue.is_empty() {
                continue;
            }
            let mut snap = Vec::new();
            queue.collect_into(&mut snap);
            if snap.len() <= slots {
                for rt in &snap {
                    out.push(alpha, rt.id);
                }
                for rt in snap.clone() {
                    self.apply_projection(alpha, &rt);
                }
                continue;
            }

            let mut taken = vec![false; snap.len()];
            for _ in 0..slots {
                let mut best_qi: Option<usize> = None;
                let mut best: Vec<f64> = Vec::new();
                for (qi, rt) in snap.iter().enumerate() {
                    if taken[qi] {
                        continue;
                    }
                    let cand = self.candidate_balance(alpha, rt, procs);
                    let better = match best_qi {
                        None => true,
                        Some(bqi) => {
                            let brt = &snap[bqi];
                            match cmp_balance(&cand, &best) {
                                std::cmp::Ordering::Greater => true,
                                std::cmp::Ordering::Less => false,
                                std::cmp::Ordering::Equal => {
                                    let (dt_c, dt_b) =
                                        (self.d_total[rt.id.index()], self.d_total[brt.id.index()]);
                                    match dt_c.total_cmp(&dt_b) {
                                        std::cmp::Ordering::Greater => true,
                                        std::cmp::Ordering::Less => false,
                                        std::cmp::Ordering::Equal => rt.seq < brt.seq,
                                    }
                                }
                            }
                        }
                    };
                    if better {
                        best_qi = Some(qi);
                        best = cand;
                    }
                }
                let bqi = best_qi.expect("queue longer than slots");
                taken[bqi] = true;
                let rt = snap[bqi];
                out.push(alpha, rt.id);
                self.apply_projection(alpha, &rt);
            }
        }
    }
}
