//! Property tests run over every scheduling algorithm: legality of the
//! produced schedules on random K-DAGs, determinism, and the greedy
//! performance envelope.

use fhs_core::mqb::InfoModel;
use fhs_core::{make_policy, Algorithm, ALL_ALGORITHMS};
use fhs_sim::{engine, trace, MachineConfig, Mode, RunOptions};
use kdag::{KDag, KDagBuilder, TaskId};
use proptest::prelude::*;

fn arb_kdag(k: usize, max_tasks: usize, max_work: u64) -> impl Strategy<Value = KDag> {
    (1..=max_tasks).prop_flat_map(move |n| {
        let types = proptest::collection::vec(0..k, n);
        let works = proptest::collection::vec(1..=max_work, n);
        let parents = proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..=3), n);
        (types, works, parents).prop_map(move |(types, works, parents)| {
            let mut b = KDagBuilder::new(k);
            let ids: Vec<TaskId> = types
                .iter()
                .zip(&works)
                .map(|(&t, &w)| b.add_task(t, w))
                .collect();
            let mut seen = std::collections::HashSet::new();
            for (i, ps) in parents.iter().enumerate().skip(1) {
                for &raw in ps {
                    let p = (raw as usize) % i;
                    if seen.insert((p, i)) {
                        b.add_edge(ids[p], ids[i]).unwrap();
                    }
                }
            }
            b.build().expect("forward-edge graphs are acyclic")
        })
    })
}

fn arb_config(k: usize) -> impl Strategy<Value = MachineConfig> {
    proptest::collection::vec(1usize..4, k).prop_map(MachineConfig::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_policies_produce_legal_schedules(dag in arb_kdag(3, 30, 4), cfg in arb_config(3)) {
        let opts = RunOptions::seeded(11).with_trace();
        for algo in ALL_ALGORITHMS {
            for mode in [Mode::NonPreemptive, Mode::Preemptive] {
                let mut p = make_policy(algo);
                let out = engine::run(&dag, &cfg, p.as_mut(), mode, &opts);
                let tr = out.trace.expect("requested");
                prop_assert_eq!(
                    trace::validate(&tr, &dag, &cfg),
                    Ok(()),
                    "{} produced an illegal {:?} schedule",
                    algo.label(),
                    mode
                );
            }
        }
    }

    #[test]
    fn all_policies_respect_the_additive_greedy_bound(dag in arb_kdag(3, 30, 4), cfg in arb_config(3)) {
        // Every implemented policy is work-conserving per type, so
        // Graham's per-type argument bounds them all:
        // T ≤ T∞ + Σ_α ⌈T1_α / P_α⌉.
        let additive: u64 = kdag::metrics::span(&dag)
            + (0..dag.num_types())
                .map(|a| dag.total_work_of_type(a).div_ceil(cfg.procs(a) as u64))
                .sum::<u64>();
        for algo in ALL_ALGORITHMS {
            let mut p = make_policy(algo);
            let out = engine::run(&dag, &cfg, p.as_mut(), Mode::NonPreemptive, &RunOptions::default());
            prop_assert!(
                out.makespan <= additive,
                "{}: {} > {}",
                algo.label(),
                out.makespan,
                additive
            );
        }
    }

    #[test]
    fn policies_are_deterministic(dag in arb_kdag(3, 30, 4), cfg in arb_config(3)) {
        let algos: Vec<Algorithm> = ALL_ALGORITHMS
            .into_iter()
            .chain(InfoModel::ALL_VARIANTS.into_iter().map(Algorithm::MqbWith))
            .collect();
        for algo in algos {
            let mut p1 = make_policy(algo);
            let mut p2 = make_policy(algo);
            let o1 = engine::run(&dag, &cfg, p1.as_mut(), Mode::NonPreemptive,
                                 &RunOptions::seeded(5));
            let o2 = engine::run(&dag, &cfg, p2.as_mut(), Mode::NonPreemptive,
                                 &RunOptions::seeded(5));
            prop_assert_eq!(o1.makespan, o2.makespan, "{} not deterministic", algo.label());
        }
    }

    #[test]
    fn mqb_info_variants_are_legal(dag in arb_kdag(3, 25, 4), cfg in arb_config(3)) {
        let opts = RunOptions::seeded(23).with_trace();
        for info in InfoModel::ALL_VARIANTS {
            let mut p = make_policy(Algorithm::MqbWith(info));
            let out = engine::run(&dag, &cfg, p.as_mut(), Mode::Preemptive, &opts);
            let tr = out.trace.expect("requested");
            prop_assert_eq!(trace::validate(&tr, &dag, &cfg), Ok(()), "{}", info.label());
        }
    }

    #[test]
    fn single_type_dags_make_all_policies_graham_greedy(
        works in proptest::collection::vec(1u64..5, 1..20),
        p in 1usize..4,
    ) {
        // With K = 1 the completion time of every work-conserving policy
        // obeys Graham's bound T ≤ T1/P + T∞(1 - 1/P) for independent
        // tasks (span = max work here).
        let mut b = KDagBuilder::new(1);
        for &w in &works {
            b.add_task(0, w);
        }
        let dag = b.build().unwrap();
        let cfg = MachineConfig::uniform(1, p);
        let t1: u64 = works.iter().sum();
        let tinf: u64 = *works.iter().max().unwrap();
        for algo in ALL_ALGORITHMS {
            let mut pol = make_policy(algo);
            let out = engine::run(&dag, &cfg, pol.as_mut(), Mode::NonPreemptive, &RunOptions::default());
            let bound = (t1 as f64 / p as f64) + tinf as f64 * (1.0 - 1.0 / p as f64);
            prop_assert!(
                out.makespan as f64 <= bound + 1e-9,
                "{}: {} > Graham bound {}",
                algo.label(), out.makespan, bound
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For policies whose selection keys are independent of remaining
    /// work, the completion-epoch preemptive engine is exactly the
    /// per-quantum scheduler: between completions the queues don't change
    /// and neither do the (static) keys.
    #[test]
    fn static_key_policies_match_per_quantum_exactly(
        dag in arb_kdag(3, 25, 4),
        cfg in arb_config(3),
    ) {
        use fhs_core::kgreedy::FifoGreedy;
        let static_key: Vec<Box<dyn Fn() -> Box<dyn fhs_sim::Policy>>> = vec![
            Box::new(|| Box::new(FifoGreedy)),
            Box::new(|| make_policy(Algorithm::DType)),
            Box::new(|| make_policy(Algorithm::MaxDP)),
            Box::new(|| make_policy(Algorithm::ShiftBT)),
        ];
        for factory in &static_key {
            let mut a = factory();
            let mut b = factory();
            let epoch = engine::run(&dag, &cfg, a.as_mut(), Mode::Preemptive, &RunOptions::seeded(3));
            let quantum = engine::run(
                &dag, &cfg, b.as_mut(), Mode::Preemptive,
                &RunOptions::seeded(3).with_quantum(1),
            );
            prop_assert_eq!(epoch.makespan, quantum.makespan, "{}", a.name());
            prop_assert_eq!(epoch.busy_time, quantum.busy_time, "{}", a.name());
        }
    }

    /// Remaining-work-dependent policies stay legal and work-conserving
    /// under any quantum, even where their cadence differs.
    #[test]
    fn dynamic_key_policies_are_legal_under_any_quantum(
        dag in arb_kdag(3, 20, 4),
        cfg in arb_config(3),
        q in 1u64..5,
    ) {
        for algo in [Algorithm::LSpan, Algorithm::Mqb] {
            let mut p = make_policy(algo);
            let out = engine::run(
                &dag, &cfg, p.as_mut(), Mode::Preemptive,
                &RunOptions::seeded(9).with_trace().with_quantum(q),
            );
            let tr = out.trace.expect("requested");
            prop_assert_eq!(trace::validate(&tr, &dag, &cfg), Ok(()), "{} q={}", algo.label(), q);
            prop_assert_eq!(out.busy_time.iter().sum::<u64>(), dag.total_work());
        }
    }
}
