//! Crafted scenarios pinning down MQB's decision rule — the paper's
//! algorithm description (§IV-A), one clause at a time.

use fhs_core::mqb::{Accuracy, InfoModel, Lookahead, Mqb};
use fhs_sim::{engine, MachineConfig, Mode, Policy, RunOptions};
use kdag::{KDag, KDagBuilder, TaskId};

fn first_started(job: &KDag, cfg: &MachineConfig, policy: &mut dyn Policy, rtype: usize) -> TaskId {
    let out = engine::run(
        job,
        cfg,
        policy,
        Mode::NonPreemptive,
        &RunOptions::default().with_trace(),
    );
    let tr = out.trace.expect("requested");
    tr.segments()
        .iter()
        .filter(|s| s.rtype == rtype)
        .min_by_key(|s| (s.start, s.proc))
        .expect("at least one segment of the type")
        .task
}

/// Clause: "gives priority to tasks whose execution can potentially
/// activate more descendants that can use under-utilized types".
/// Two candidates unlock equal total downstream work, but for different
/// types; the type whose queue is starving must win.
#[test]
fn feeds_the_most_starved_queue() {
    // Ready type-0: a unlocks type-1 work, b unlocks type-2 work.
    // Type-2 queue already holds work; type-1 queue is empty -> pick a.
    let mut b = KDagBuilder::new(3);
    let a = b.add_task(0, 1);
    let c1 = b.add_task(1, 6);
    b.add_edge(a, c1).unwrap();
    let bb = b.add_task(0, 1);
    let c2 = b.add_task(2, 6);
    b.add_edge(bb, c2).unwrap();
    let _existing_t2 = b.add_task(2, 6); // pre-loads the type-2 queue
    let job = b.build().unwrap();
    let cfg = MachineConfig::uniform(3, 1);
    let mut mqb = Mqb::default();
    assert_eq!(first_started(&job, &cfg, &mut mqb, 0), a);
}

/// Clause: x-utilization divides by the processor count — a queue with
/// more processors is effectively *less* utilized at equal work.
#[test]
fn balance_accounts_for_processor_counts() {
    // Both feeder tasks unlock 6 units for their type. Type 1 has 1 proc,
    // type 2 has 6: at equal queued work, type 2's x-utilization is far
    // lower, so (with both queues equally pre-loaded) MQB must feed
    // type 2 first.
    let mut b = KDagBuilder::new(3);
    let to1 = b.add_task(0, 1);
    let c1 = b.add_task(1, 6);
    b.add_edge(to1, c1).unwrap();
    let to2 = b.add_task(0, 1);
    let c2 = b.add_task(2, 6);
    b.add_edge(to2, c2).unwrap();
    b.add_task(1, 6); // pre-load both queues equally
    b.add_task(2, 6);
    let job = b.build().unwrap();
    let cfg = MachineConfig::new(vec![1, 1, 6]);
    let mut mqb = Mqb::default();
    assert_eq!(first_started(&job, &cfg, &mut mqb, 0), to2);
}

/// Clause: "when there are at most P_α ready α-tasks, run them all" —
/// even if their descendant values would rank them badly.
#[test]
fn small_queues_run_in_full() {
    let mut b = KDagBuilder::new(2);
    for _ in 0..3 {
        b.add_task(0, 5);
    }
    b.add_task(1, 5);
    let job = b.build().unwrap();
    let cfg = MachineConfig::new(vec![3, 2]);
    let out = engine::run(
        &job,
        &cfg,
        &mut Mqb::default(),
        Mode::NonPreemptive,
        &RunOptions::default(),
    );
    // everything starts at t=0: makespan = single task work
    assert_eq!(out.makespan, 5);
}

/// Ties in balance break toward the larger total descendant value.
#[test]
fn ties_prefer_heavier_descendants() {
    // Two type-0 candidates, both feeding type 1 (so queue-0/queue-1
    // projections tie in the sorted vector only if their own work and d
    // rows are equal)... give them equal works but different amounts of
    // SAME-type descendants so the balance vectors tie lexicographically
    // after sorting, leaving the total-descendant tie-break to decide.
    let mut b = KDagBuilder::new(2);
    let light = b.add_task(0, 2);
    let heavy = b.add_task(0, 2);
    // heavy unlocks 4 units of type 1; light unlocks 4 units of type 1 as
    // well BUT split so totals differ: heavy gets an extra child.
    let c1 = b.add_task(1, 4);
    b.add_edge(light, c1).unwrap();
    let c2 = b.add_task(1, 4);
    let c3 = b.add_task(1, 2);
    b.add_edge(heavy, c2).unwrap();
    b.add_edge(heavy, c3).unwrap();
    let job = b.build().unwrap();
    let cfg = MachineConfig::uniform(2, 1);
    let mut mqb = Mqb::default();
    // heavy's projection fills the starving type-1 queue more -> better
    // balance outright; also larger total. Either way: heavy first.
    assert_eq!(first_started(&job, &cfg, &mut mqb, 0), heavy);
}

/// The Exp information model preserves the mean: averaged over many
/// seeds, the perturbed values converge to the true ones.
#[test]
fn exponential_model_is_mean_preserving() {
    let mut b = KDagBuilder::new(2);
    let v = b.add_task(0, 1);
    let c = b.add_task(1, 10);
    b.add_edge(v, c).unwrap();
    let job = b.build().unwrap();
    let cfg = MachineConfig::uniform(2, 1);
    let info = InfoModel {
        lookahead: Lookahead::All,
        accuracy: Accuracy::Exponential,
    };
    let mut sum = 0.0;
    let trials = 4000;
    for seed in 0..trials {
        let mut p = Mqb::new(info);
        p.init(&job, &cfg, seed);
        sum += p.d_row(v)[1];
    }
    let mean = sum / trials as f64;
    assert!(
        (mean - 10.0).abs() < 0.5,
        "Exp model mean {mean} should approximate the true value 10"
    );
}

/// The Noise model stays within its documented envelope:
/// `true×U[0.5,1.5] + U[0, w̄]`.
#[test]
fn noise_model_respects_its_envelope() {
    let mut b = KDagBuilder::new(2);
    let v = b.add_task(0, 2);
    let c = b.add_task(1, 10);
    b.add_edge(v, c).unwrap();
    let job = b.build().unwrap(); // mean work w̄ = 6
    let cfg = MachineConfig::uniform(2, 1);
    let info = InfoModel {
        lookahead: Lookahead::All,
        accuracy: Accuracy::Noisy,
    };
    for seed in 0..2000 {
        let mut p = Mqb::new(info);
        p.init(&job, &cfg, seed);
        let val = p.d_row(v)[1];
        assert!(
            (5.0..=21.0).contains(&val),
            "noise sample {val} outside [0.5·10, 1.5·10 + 6]"
        );
    }
}

/// Preemptive MQB treats running tasks as candidates: a freshly-unlocked
/// task with dominant descendants may preempt a running sibling.
#[test]
fn preemptive_mqb_reconsiders_running_tasks() {
    // One type-0 processor. A long low-value task starts first (alone),
    // then a feeder arrives whose completion unlocks starving type-1 work.
    let mut b = KDagBuilder::new(2);
    let root = b.add_task(0, 1);
    let long = b.add_task(0, 20);
    let feeder = b.add_task(0, 2);
    b.add_edge(root, feeder).unwrap();
    let gpu = b.add_task(1, 20);
    b.add_edge(feeder, gpu).unwrap();
    let job = b.build().unwrap();
    let cfg = MachineConfig::uniform(2, 1);
    let _ = long;
    let out = engine::run(
        &job,
        &cfg,
        &mut Mqb::default(),
        Mode::Preemptive,
        &RunOptions::default().with_trace(),
    );
    // Optimal-ish: root(1) + feeder(2), gpu overlaps the rest of long:
    // makespan 23 requires preempting/ordering around `long`. Anything
    // ≥ 41 would mean the feeder waited for `long` to finish. Since at
    // t=1 MQB re-decides with both `long` (19 left... or unstarted) and
    // `feeder` available, the feeder's type-1 descendants must win.
    assert!(
        out.makespan <= 25,
        "feeder was starved behind the long task: makespan {}",
        out.makespan
    );
    let tr = out.trace.expect("requested");
    // the gpu task must start well before `long` finishes
    let gpu_start = tr.task_segments(gpu)[0].start;
    assert!(gpu_start <= 4, "gpu started only at {gpu_start}");
}
