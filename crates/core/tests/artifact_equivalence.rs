//! The shared-artifact initialization path must be invisible: for every
//! policy, `init_with_artifacts` over a precomputed [`Artifacts`] bundle
//! must leave the policy in **bit-identical** state to a cold `init`, so
//! artifact-cached runs replay cold runs segment for segment. This is the
//! contract that makes the instance-major sweep
//! (`fhs_experiments::runner::run_sweep`) behavior-preserving.
//!
//! Coverage: all six paper schedulers × both modes × both cadences
//! (completion epochs and `quantum = 1`), plus every §V-G MQB information
//! model (the perturbation RNG must consume the same stream regardless of
//! where the descendant matrix came from).
//!
//! A second family pins the rewritten MQB selection loop (cached projected
//! rows + incremental sorted-vector repair) to `NaiveMqb`, a verbatim
//! re-statement of the pre-optimization quadratic selection: recompute and
//! re-sort every untaken candidate's balance vector on every pick. The
//! engine-level `engine_equivalence` suite cannot catch an MQB rewrite bug
//! because both engines share the policy code; this oracle can.

use std::sync::Arc;

use fhs_core::mqb::{cmp_balance, InfoModel};
use fhs_core::{make_policy, Algorithm, Mqb, ALL_ALGORITHMS};
use fhs_sim::{engine, Assignments, EpochView, MachineConfig, Mode, Policy, ReadyTask, RunOptions};
use kdag::descendants::DescendantValues;
use kdag::precompute::Artifacts;
use kdag::{KDag, KDagBuilder, TaskId};
use proptest::prelude::*;

fn arb_kdag(k: usize, max_tasks: usize, max_work: u64) -> impl Strategy<Value = KDag> {
    (1..=max_tasks).prop_flat_map(move |n| {
        let types = proptest::collection::vec(0..k, n);
        let works = proptest::collection::vec(1..=max_work, n);
        let parents = proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..=3), n);
        (types, works, parents).prop_map(move |(types, works, parents)| {
            let mut b = KDagBuilder::new(k);
            let ids: Vec<TaskId> = types
                .iter()
                .zip(&works)
                .map(|(&t, &w)| b.add_task(t, w))
                .collect();
            let mut seen = std::collections::HashSet::new();
            for (i, ps) in parents.iter().enumerate().skip(1) {
                for &raw in ps {
                    let p = (raw as usize) % i;
                    if seen.insert((p, i)) {
                        b.add_edge(ids[p], ids[i]).unwrap();
                    }
                }
            }
            b.build().expect("forward-edge graphs are acyclic")
        })
    })
}

fn arb_config(k: usize) -> impl Strategy<Value = MachineConfig> {
    proptest::collection::vec(1usize..4, k).prop_map(MachineConfig::new)
}

/// Runs `algo` cold (`engine::run`) and artifact-backed
/// (`engine::run_with_artifacts` over a shared bundle) and asserts the
/// strongest observable — the full trace — is identical.
fn assert_artifact_run_matches_cold(
    dag: &KDag,
    cfg: &MachineConfig,
    artifacts: &Arc<Artifacts>,
    algo: Algorithm,
    mode: Mode,
    opts: &RunOptions,
) {
    let cold = engine::run(dag, cfg, make_policy(algo).as_mut(), mode, opts);
    let warm =
        engine::run_with_artifacts(dag, cfg, make_policy(algo).as_mut(), mode, opts, artifacts);
    assert_eq!(
        warm.makespan,
        cold.makespan,
        "{} {:?}: makespan diverged under artifact init",
        algo.label(),
        mode
    );
    assert_eq!(warm.busy_time, cold.busy_time);
    assert_eq!(warm.epochs, cold.epochs, "{} {:?}", algo.label(), mode);
    let (warm_tr, cold_tr) = (
        warm.trace.expect("requested"),
        cold.trace.expect("requested"),
    );
    assert_eq!(
        warm_tr.segments(),
        cold_tr.segments(),
        "{} {:?}: trace diverged under artifact init",
        algo.label(),
        mode
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All six schedulers, both modes, default cadence: artifact-backed
    /// initialization replays cold initialization bit for bit.
    #[test]
    fn artifact_runs_match_cold_runs_for_all_six(
        dag in arb_kdag(3, 20, 4),
        cfg in arb_config(3),
        seed in 0u64..1000,
    ) {
        let artifacts = Arc::new(Artifacts::compute(&dag));
        let opts = RunOptions::seeded(seed).with_trace();
        for algo in ALL_ALGORITHMS {
            for mode in [Mode::NonPreemptive, Mode::Preemptive] {
                assert_artifact_run_matches_cold(&dag, &cfg, &artifacts, algo, mode, &opts);
            }
        }
    }

    /// Same equivalence at the paper's literal per-quantum cadence, where
    /// remaining-work-dependent policies re-decide every time unit.
    #[test]
    fn artifact_runs_match_cold_runs_per_quantum(
        dag in arb_kdag(3, 14, 4),
        cfg in arb_config(3),
        seed in 0u64..1000,
    ) {
        let artifacts = Arc::new(Artifacts::compute(&dag));
        let opts = RunOptions::seeded(seed).with_trace().with_quantum(1);
        for algo in ALL_ALGORITHMS {
            assert_artifact_run_matches_cold(&dag, &cfg, &artifacts, algo, Mode::Preemptive, &opts);
        }
    }

    /// Every §V-G information model: the perturbation RNG must consume the
    /// same stream whether the descendant matrix came cold or from the
    /// bundle, so the perturbed values — and hence the runs — are
    /// identical.
    #[test]
    fn artifact_runs_match_cold_runs_for_all_info_models(
        dag in arb_kdag(3, 16, 4),
        cfg in arb_config(3),
        seed in 0u64..1000,
    ) {
        let artifacts = Arc::new(Artifacts::compute(&dag));
        let opts = RunOptions::seeded(seed).with_trace();
        for info in InfoModel::ALL_VARIANTS {
            for mode in [Mode::NonPreemptive, Mode::Preemptive] {
                assert_artifact_run_matches_cold(
                    &dag, &cfg, &artifacts, Algorithm::MqbWith(info), mode, &opts,
                );
            }
        }
    }

    /// The optimized MQB selection (cached rows, incremental repair,
    /// change-detection by bit pattern) equals the naive quadratic
    /// selection on the full trace, both modes, both cadences.
    #[test]
    fn fast_mqb_matches_naive_oracle(
        dag in arb_kdag(3, 18, 4),
        cfg in arb_config(3),
        seed in 0u64..1000,
    ) {
        for (mode, quantum) in [
            (Mode::NonPreemptive, None),
            (Mode::Preemptive, None),
            (Mode::Preemptive, Some(1)),
        ] {
            let mut opts = RunOptions::seeded(seed).with_trace();
            opts.quantum = quantum;
            let fast = engine::run(&dag, &cfg, &mut Mqb::default(), mode, &opts);
            let naive = engine::run(&dag, &cfg, &mut NaiveMqb::default(), mode, &opts);
            prop_assert_eq!(fast.makespan, naive.makespan, "{:?} q={:?}", mode, quantum);
            prop_assert_eq!(
                fast.trace.expect("requested").segments(),
                naive.trace.expect("requested").segments(),
                "{:?} q={:?}: fast MQB diverged from the naive oracle",
                mode,
                quantum
            );
        }
    }
}

/// The pre-optimization MQB selection, restated verbatim as an oracle:
/// full-lookahead precise descendant values, and a selection loop that
/// recomputes and re-sorts every untaken candidate's projected balance
/// vector on every pick. Deliberately naive — no caching, no repair.
#[derive(Default)]
struct NaiveMqb {
    k: usize,
    d: Vec<f64>,
    d_total: Vec<f64>,
    working: Vec<f64>,
}

impl NaiveMqb {
    fn candidate_balance(&self, alpha: usize, rt: &ReadyTask, procs: &[usize]) -> Vec<f64> {
        let row_start = rt.id.index() * self.k;
        let mut out: Vec<f64> = (0..self.k)
            .map(|beta| {
                let mut l = self.working[beta] + self.d[row_start + beta];
                if beta == alpha {
                    l -= rt.remaining as f64;
                }
                l / procs[beta] as f64
            })
            .collect();
        out.sort_unstable_by(f64::total_cmp);
        out
    }

    fn apply_projection(&mut self, alpha: usize, rt: &ReadyTask) {
        self.working[alpha] -= rt.remaining as f64;
        let row_start = rt.id.index() * self.k;
        for (beta, w) in self.working.iter_mut().enumerate() {
            *w += self.d[row_start + beta];
        }
    }
}

impl Policy for NaiveMqb {
    fn name(&self) -> &str {
        "NaiveMQB"
    }

    fn init(&mut self, job: &KDag, _config: &MachineConfig, _seed: u64) {
        self.k = job.num_types();
        self.d = DescendantValues::compute(job).values().to_vec();
        self.d_total = (0..job.num_tasks())
            .map(|i| self.d[i * self.k..(i + 1) * self.k].iter().sum())
            .collect();
    }

    fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
        let k = self.k;
        let procs = view.config.procs_per_type();
        self.working.clear();
        self.working
            .extend(view.queue_work.iter().map(|&w| w as f64));

        for alpha in 0..k {
            let queue = &view.queues[alpha];
            let slots = view.slots[alpha];
            if slots == 0 || queue.is_empty() {
                continue;
            }
            let mut snap = Vec::new();
            queue.collect_into(&mut snap);
            if snap.len() <= slots {
                for rt in &snap {
                    out.push(alpha, rt.id);
                }
                for rt in snap.clone() {
                    self.apply_projection(alpha, &rt);
                }
                continue;
            }

            let mut taken = vec![false; snap.len()];
            for _ in 0..slots {
                let mut best_qi: Option<usize> = None;
                let mut best: Vec<f64> = Vec::new();
                for (qi, rt) in snap.iter().enumerate() {
                    if taken[qi] {
                        continue;
                    }
                    let cand = self.candidate_balance(alpha, rt, procs);
                    let better = match best_qi {
                        None => true,
                        Some(bqi) => {
                            let brt = &snap[bqi];
                            match cmp_balance(&cand, &best) {
                                std::cmp::Ordering::Greater => true,
                                std::cmp::Ordering::Less => false,
                                std::cmp::Ordering::Equal => {
                                    let (dt_c, dt_b) =
                                        (self.d_total[rt.id.index()], self.d_total[brt.id.index()]);
                                    match dt_c.total_cmp(&dt_b) {
                                        std::cmp::Ordering::Greater => true,
                                        std::cmp::Ordering::Less => false,
                                        std::cmp::Ordering::Equal => rt.seq < brt.seq,
                                    }
                                }
                            }
                        }
                    };
                    if better {
                        best_qi = Some(qi);
                        best = cand;
                    }
                }
                let bqi = best_qi.expect("queue longer than slots");
                taken[bqi] = true;
                let rt = snap[bqi];
                out.push(alpha, rt.id);
                self.apply_projection(alpha, &rt);
            }
        }
    }
}
