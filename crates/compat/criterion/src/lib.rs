//! # criterion (offline compat shim)
//!
//! A small re-implementation of the criterion API surface this workspace
//! uses: [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`BenchmarkId`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Reporting is plain text on stdout (median and min per bench);
//! there is no HTML output, statistics engine, or history comparison.
//!
//! The harness understands the arguments cargo and CI pass to
//! `harness = false` bench binaries: `--bench` (ignored), `--quick`
//! (cuts warm-up and sample budgets), and a positional substring filter.
//! Unknown flags are ignored so `cargo bench -- <anything>` never fails.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Builds a driver from command-line arguments (see crate docs for
    /// the accepted subset).
    pub fn from_args() -> Self {
        let mut quick = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => quick = true,
                a if a.starts_with('-') => {} // --bench and friends: ignore
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { quick, filter }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Registers a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(id, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.0
        } else {
            format!("{}/{}", self.name, id.0)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let samples = if self.criterion.quick {
            2
        } else {
            self.sample_size.min(10)
        };
        let mut bencher = Bencher {
            quick: self.criterion.quick,
            samples,
            results: Vec::new(),
        };
        f(&mut bencher);
        report(&full, &bencher.results);
        self
    }

    /// Ends the group (kept for API compatibility; no cleanup needed).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter`-style id from a function name and a
    /// displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Id carrying only a displayable parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    quick: bool,
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, calling it enough times per sample to smooth clock
    /// granularity, and records one duration-per-iteration sample each
    /// round.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: one untimed warm-up call, then pick an iteration
        // count targeting ~20ms per sample (2ms under --quick).
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = if self.quick {
            Duration::from_millis(2)
        } else {
            Duration::from_millis(20)
        };
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.results.push(start.elapsed() / iters as u32);
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    println!(
        "{name:<50} time: [median {}, min {}]",
        fmt_duration(median),
        fmt_duration(min)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a single group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench binary, running each
/// listed group with an argument-configured [`Criterion`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.benchmark_group("g")
            .sample_size(3)
            .bench_function("count", |b| {
                b.iter(|| {
                    ran += 1;
                })
            });
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            quick: true,
            filter: Some("match-me".into()),
        };
        let mut ran = false;
        c.benchmark_group("g").bench_function("other", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran, "filtered-out benchmark must not run");
        c.benchmark_group("g").bench_function("match-me", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
        assert_eq!(BenchmarkId::new("f", "p").0, "f/p");
        assert_eq!(BenchmarkId::from("s").0, "s");
    }

    #[test]
    fn duration_formatting_covers_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.00 s");
    }
}
