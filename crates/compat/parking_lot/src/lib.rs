//! # parking_lot (offline compat shim)
//!
//! The workspace uses exactly one thing from `parking_lot`: a [`Mutex`]
//! whose `lock()` returns the guard directly (no `Result` to unwrap).
//! This shim provides that on top of `std::sync::Mutex`; a poisoned lock
//! (a worker panicked while holding it) panics on the next acquisition,
//! which matches how the workspace treats worker panics — as fatal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::MutexGuard;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API shape.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .expect("mutex poisoned: a worker panicked")
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .expect("mutex poisoned: a worker panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn guards_exclude_each_other_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
