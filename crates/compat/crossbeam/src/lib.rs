//! # crossbeam (offline compat shim)
//!
//! The workspace uses exactly one piece of crossbeam: a **bounded MPMC
//! channel** whose `Receiver` is cloneable and iterable (`rx.iter()`
//! ends when every `Sender` is dropped and the queue drains). This shim
//! provides that on `std::sync::{Mutex, Condvar}` — adequate for the
//! coarse-grained work distribution in `fhs-par`, where each message
//! carries a whole simulation instance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when the queue gains an item or the last sender leaves.
        recv_ready: Condvar,
        /// Signalled when the queue loses an item (capacity freed).
        send_ready: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
    }

    /// The sending half of a bounded channel. `send` blocks while the
    /// channel is full.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a bounded channel. Cloneable: each message
    /// is delivered to exactly one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every [`Receiver`] has
    /// been dropped; carries the undelivered message.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`] (upstream signature); both
    /// variants carry the undelivered message.
    pub enum TrySendError<T> {
        /// The channel is at capacity right now.
        Full(T),
        /// Every [`Receiver`] has been dropped.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self {
                TrySendError::Full(_) => "Full(..)",
                TrySendError::Disconnected(_) => "Disconnected(..)",
            })
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self {
                TrySendError::Full(_) => "sending on a full channel",
                TrySendError::Disconnected(_) => "sending on a disconnected channel",
            })
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv`] when every [`Sender`] has been
    /// dropped and the queue is drained (matches upstream crossbeam).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates a channel holding at most `capacity` in-flight messages.
    /// A capacity of 0 is rounded up to 1 (upstream crossbeam supports
    /// rendezvous channels; this workspace never requests one).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity: capacity.max(1),
                senders: 1,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until there is capacity, then enqueues `msg`.
        ///
        /// Returns `Err` only when all receivers are gone, which in this
        /// shim is detected by the `Arc` having no receiver clones left
        /// (strong count == senders).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                // All Arc holders are senders => no receiver remains.
                if Arc::strong_count(&self.shared) == state.senders {
                    return Err(SendError(msg));
                }
                if state.queue.len() < state.capacity {
                    state.queue.push_back(msg);
                    drop(state);
                    self.shared.recv_ready.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .send_ready
                    .wait(state)
                    .expect("channel poisoned");
            }
        }

        /// Non-blocking [`Sender::send`] (upstream signature): enqueues
        /// `msg` if there is room right now, otherwise hands it back.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if Arc::strong_count(&self.shared) == state.senders {
                return Err(TrySendError::Disconnected(msg));
            }
            if state.queue.len() < state.capacity {
                state.queue.push_back(msg);
                drop(state);
                self.shared.recv_ready.notify_one();
                Ok(())
            } else {
                Err(TrySendError::Full(msg))
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake receivers parked in recv() so they can observe
                // disconnection and finish their iterators.
                self.shared.recv_ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; `Err(RecvError)` once every sender
        /// is dropped and the queue is drained (upstream signature).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.recv_opt().ok_or(RecvError)
        }

        /// Blocks for the next message; returns `None` once every sender
        /// is dropped and the queue is drained.
        fn recv_opt(&self) -> Option<T> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.shared.send_ready.notify_one();
                    // Wake a sibling receiver in case more items remain.
                    self.shared.recv_ready.notify_one();
                    return Some(msg);
                }
                if state.senders == 0 {
                    return None;
                }
                state = self
                    .shared
                    .recv_ready
                    .wait(state)
                    .expect("channel poisoned");
            }
        }

        /// A blocking iterator over received messages; ends at
        /// disconnection (see `Receiver::recv`).
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv_opt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn delivers_every_message_exactly_once() {
        let (tx, rx) = channel::bounded::<usize>(4);
        let received = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move || rx.iter().collect::<Vec<_>>())
                })
                .collect();
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        let mut got = received;
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn iter_ends_when_senders_drop() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::bounded::<u32>(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_capacity_blocks_then_resumes() {
        let (tx, rx) = channel::bounded::<u32>(1);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..50 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got, (0..50).collect::<Vec<_>>());
        });
    }

    #[test]
    fn try_send_never_blocks() {
        let (tx, rx) = channel::bounded::<u32>(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Full(3))
        ));
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert!(matches!(
            tx.try_send(4),
            Err(channel::TrySendError::Disconnected(4))
        ));
    }

    #[test]
    fn cloned_sender_keeps_channel_open() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![9]);
    }
}
