//! # proptest (offline compat shim)
//!
//! A dependency-light re-implementation of the proptest API surface this
//! workspace uses: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`option::of`],
//! [`Just`], [`prop_oneof!`], [`any`], [`ProptestConfig`], and the
//! [`proptest!`] macro generating `#[test]` functions.
//!
//! Differences from upstream, all deliberate:
//!
//! * **No shrinking.** A failing case reports its case index and RNG
//!   seed (re-runnable because generation is deterministic), but is not
//!   minimized.
//! * **Deterministic generation.** Case `i` of a given test is a pure
//!   function of the test's module path, name, and `i` — failures
//!   reproduce exactly across runs and machines.
//! * `prop_assert*` forward to the std `assert*` macros (panic-based).
//!
//! The number of cases per test is `ProptestConfig::with_cases(n)`, the
//! config default (256), or the `PROPTEST_CASES` environment variable,
//! which overrides both when set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng, Standard};
use std::ops::{Range, RangeInclusive};

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Per-test configuration. Only `cases` is supported.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test inputs. Unlike upstream there is no value tree:
/// strategies produce final values directly from the case RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value from `rng`.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.gen_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn gen_value(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.source.gen_value(rng)).gen_value(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Marker strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Uniform strategy over the whole domain of a primitive type.
pub fn any<T: Standard>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        self.clone().sample_from(rng)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        self.clone().sample_from(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Choice among alternative same-typed strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union drawing uniformly among `options`.
    ///
    /// # Panics
    /// If `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].gen_value(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, StdRng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose length falls in `size` and whose elements
    /// come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Rng, StdRng, Strategy};

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` a quarter of the time, `Some` of the inner
    /// strategy otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// Runs `config.cases` deterministic cases of a property, seeding each
/// case's RNG from (`test_path`, case index). On panic, reports the case
/// index and seed before propagating, so the failure is re-runnable.
///
/// This is the engine behind [`proptest!`]; call it directly only when
/// the macro's shape does not fit.
pub fn run_cases<S: Strategy>(
    config: ProptestConfig,
    test_path: &str,
    strategy: &S,
    mut property: impl FnMut(S::Value),
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases)
        .max(1);
    let base = fnv1a(test_path.as_bytes());
    for case in 0..cases {
        let seed = base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(seed);
        let value = strategy.gen_value(&mut rng);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(value)));
        if let Err(payload) = outcome {
            eprintln!("proptest {test_path}: case {case}/{cases} failed (case seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Verifies the generators compose (compile-time surface check used by
/// the shim's own tests).
#[doc(hidden)]
pub fn __self_check() {
    let strat = (0u32..10, any::<bool>()).prop_map(|(a, b)| (a, b));
    let mut rng = StdRng::seed_from_u64(1);
    let _ = strat.gen_value(&mut rng);
}

/// Declares property tests. Supported shape (a strict subset of
/// upstream):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]  // optional
///     #[test]
///     fn my_property(x in 0u64..10, v in proptest::collection::vec(any::<u32>(), 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strategy,)+);
            $crate::run_cases(
                $config,
                concat!(module_path!(), "::", stringify!($name)),
                &strategy,
                |($($arg,)+)| $body,
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property (forwards to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (forwards to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (forwards to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among same-typed strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_case() {
        use rand::SeedableRng;
        let strat = crate::collection::vec(0u64..100, 0..=10);
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(5);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(5);
        let a = Strategy::gen_value(&strat, &mut rng_a);
        let b = Strategy::gen_value(&strat, &mut rng_b);
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(
            v in proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..=3), 2),
            flag in any::<bool>(),
            pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8)],
        ) {
            prop_assert_eq!(v.len(), 2);
            for inner in &v {
                prop_assert!(inner.len() <= 3);
            }
            let _ = flag;
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn flat_map_sizes_collections(
            v in (1usize..=8).prop_flat_map(|n| proptest::collection::vec(0u64..5, n))
        ) {
            prop_assert!((1..=8).contains(&v.len()));
        }

        #[test]
        fn option_of_produces_both_variants(x in proptest::option::of(1u64..4)) {
            if let Some(x) = x {
                prop_assert!((1..4).contains(&x));
            }
        }

        #[test]
        fn prop_map_applies(x in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 20);
        }
    }
}
