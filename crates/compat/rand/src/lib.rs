//! # rand (offline compat shim)
//!
//! A minimal, dependency-free re-implementation of the subset of the
//! `rand 0.8` API this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The build container has no crates.io access, so the workspace points
//! the `rand` dependency at this crate. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic, portable, and stable: the
//! streams are part of the project's golden-value regression surface, so
//! **changing the algorithm is a breaking change** for every recorded
//! result.
//!
//! Sampling notes (all deliberate, documented divergences from upstream
//! `rand`, which promises no particular value stream anyway):
//!
//! * integer `gen_range` uses Lemire-style widening multiply rejection-free
//!   mapping (negligible bias at the widths used in this project);
//! * `f64` sampling uses the standard 53-bit mantissa construction;
//! * `shuffle` is a Fisher–Yates walk from the back of the slice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface: only the `seed_from_u64` entry point this
/// workspace uses.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed (SplitMix64 state
    /// expansion, as recommended by the xoshiro authors).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly over a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw-output interface every generator implements.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`; integer or `f64`).
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        sample_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a primitive type (bool or integer).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable uniformly over their whole domain by [`Rng::gen`].
pub trait Standard {
    /// Maps 64 random bits onto the type.
    fn sample_standard(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(bits: u64) -> Self {
        sample_f64(bits)
    }
}

/// 53-bit-mantissa uniform in `[0, 1)`.
#[inline]
fn sample_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128 * width) >> 64;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let width = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128 * width) >> 64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + sample_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + sample_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Stream-stable across releases (golden values
    /// depend on it).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// The `shuffle` extension on slices.
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
