//! Flexible-workload generation: turn any K-DAG into a JIT-flexible one
//! (paper §VII extension).
//!
//! [`flexibilize`] gives each task of an existing job a probability of
//! gaining alternative placements: extra `(type, work)` options whose
//! work is the original scaled by a slowdown factor — the common JIT
//! situation where the natural target is fastest and fallback binaries
//! are somewhat slower.

use kdag::flex::{FlexKDag, FlexKDagBuilder, Placement};
use kdag::KDag;
use rand::Rng;

/// Parameters of the flexibilization transform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlexParams {
    /// Probability that a task gains alternative placements.
    pub flexible_prob: f64,
    /// How many alternative types a flexible task gains (capped at
    /// `K − 1`).
    pub extra_options: usize,
    /// Slowdown range for alternative binaries: alternative work =
    /// `ceil(original × U[lo, hi])`.
    pub slowdown: (f64, f64),
}

impl Default for FlexParams {
    fn default() -> Self {
        FlexParams {
            flexible_prob: 0.5,
            extra_options: 1,
            slowdown: (1.0, 2.0),
        }
    }
}

/// Rewrites `job` as a [`FlexKDag`] with the same structure; option 0 of
/// every task is its original placement, so `bind_first` reproduces the
/// input exactly.
pub fn flexibilize<R: Rng>(job: &KDag, params: &FlexParams, rng: &mut R) -> FlexKDag {
    let k = job.num_types();
    let mut b = FlexKDagBuilder::new(k);
    for v in job.tasks() {
        let base = Placement {
            rtype: job.rtype(v),
            work: job.work(v),
        };
        let mut options = vec![base];
        if k > 1 && rng.gen_bool(params.flexible_prob) {
            let extra = params.extra_options.min(k - 1);
            // sample distinct alternative types
            let mut types: Vec<usize> = (0..k).filter(|&t| t != base.rtype).collect();
            for i in 0..extra {
                let j = rng.gen_range(i..types.len());
                types.swap(i, j);
                let factor = rng.gen_range(params.slowdown.0..=params.slowdown.1);
                options.push(Placement {
                    rtype: types[i],
                    work: ((base.work as f64 * factor).ceil() as u64).max(1),
                });
            }
        }
        b.add_task(options);
    }
    for v in job.tasks() {
        for &c in job.children(v) {
            b.add_edge(v, c).expect("edges copied from a valid KDag");
        }
    }
    b.build().expect("structure copied from a valid KDag")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Typing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_job() -> KDag {
        let mut rng = StdRng::seed_from_u64(3);
        let p = crate::ir::IrParams {
            iterations: 2,
            maps: 6,
            reduces: 3,
        };
        crate::ir::generate(3, &p, Typing::Layered, &mut rng)
    }

    #[test]
    fn option_zero_reproduces_the_original() {
        let job = base_job();
        let mut rng = StdRng::seed_from_u64(9);
        let flex = flexibilize(&job, &FlexParams::default(), &mut rng);
        let bound = flex.bind(&vec![0; flex.num_tasks()]);
        assert_eq!(bound.num_tasks(), job.num_tasks());
        assert_eq!(bound.num_edges(), job.num_edges());
        for v in job.tasks() {
            assert_eq!(bound.rtype(v), job.rtype(v));
            assert_eq!(bound.work(v), job.work(v));
        }
    }

    #[test]
    fn alternatives_are_distinct_types_with_slowdown() {
        let job = base_job();
        let mut rng = StdRng::seed_from_u64(10);
        let params = FlexParams {
            flexible_prob: 1.0,
            extra_options: 2,
            slowdown: (1.5, 1.5),
        };
        let flex = flexibilize(&job, &params, &mut rng);
        for v in job.tasks() {
            let opts = flex.options(v);
            assert_eq!(opts.len(), 3);
            let mut types: Vec<usize> = opts.iter().map(|p| p.rtype).collect();
            types.sort_unstable();
            types.dedup();
            assert_eq!(types.len(), 3, "distinct types for {v}");
            for alt in &opts[1..] {
                assert_eq!(alt.work, (job.work(v) as f64 * 1.5).ceil() as u64);
            }
        }
    }

    #[test]
    fn zero_probability_keeps_everything_fixed() {
        let job = base_job();
        let mut rng = StdRng::seed_from_u64(11);
        let params = FlexParams {
            flexible_prob: 0.0,
            ..FlexParams::default()
        };
        let flex = flexibilize(&job, &params, &mut rng);
        for v in job.tasks() {
            assert_eq!(flex.options(v).len(), 1);
        }
    }

    #[test]
    fn single_type_jobs_stay_inflexible() {
        let mut b = kdag::KDagBuilder::new(1);
        b.add_task(0, 2);
        let job = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let flex = flexibilize(
            &job,
            &FlexParams {
                flexible_prob: 1.0,
                ..FlexParams::default()
            },
            &mut rng,
        );
        assert_eq!(flex.options(kdag::TaskId::from_index(0)).len(), 1);
    }
}
