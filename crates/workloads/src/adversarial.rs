//! The adversarial K-DAG family from the Theorem-2 lower-bound proof
//! (paper Fig. 2).
//!
//! For `K` types with processor counts `P_1 … P_K` (the construction
//! requires `P_K = P_max`) and a scale constant `m`:
//!
//! * There are `P_α · P_K · m` unit-work `α`-tasks for every type `α`.
//! * For `α < K`, exactly `P_α` **active** `α`-tasks (uniformly random
//!   among the `α`-tasks) have edges to *all* `(α+1)`-tasks — so no
//!   `(α+1)`-task may start before every active `α`-task completes.
//! * `m·P_K − 1` of the `K`-tasks form a **chain**; `P_K` active
//!   `K`-tasks (uniform among the non-chain `K`-tasks) gate the chain's
//!   head.
//!
//! An offline scheduler that knows the active tasks finishes in
//! `T* = K − 1 + m·P_K`; an online scheduler must drain whole queues to
//! stumble on the hidden active tasks, costing
//! `≈ (K + 1 − Σ_α 1/(P_α+1)) · m·P_K` in expectation — the Ω(K) gap.

use kdag::{KDag, KDagBuilder, TaskId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters of the adversarial family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdversarialParams {
    /// Processor counts per type; the last entry must be the maximum.
    pub procs: Vec<usize>,
    /// Scale constant `m ≥ 1` (the proof takes `m ≫ K`).
    pub m: usize,
}

impl AdversarialParams {
    /// Validates and wraps the parameters.
    ///
    /// # Panics
    /// If `procs` is empty, any entry is zero, `m == 0`, or the last type
    /// is not the largest pool (`P_K = P_max` is required by the
    /// construction).
    pub fn new(procs: Vec<usize>, m: usize) -> Self {
        assert!(!procs.is_empty() && m > 0);
        assert!(procs.iter().all(|&p| p > 0));
        let pmax = *procs.iter().max().expect("non-empty");
        assert_eq!(
            *procs.last().expect("non-empty"),
            pmax,
            "the construction requires P_K = P_max; reorder the types"
        );
        AdversarialParams { procs, m }
    }

    /// The optimal offline completion time `T* = K − 1 + m·P_K`.
    pub fn optimal_makespan(&self) -> u64 {
        (self.procs.len() as u64 - 1) + (self.m * self.procs.last().expect("non-empty")) as u64
    }

    /// The Theorem-2 lower bound on any online algorithm's competitive
    /// ratio for this configuration:
    /// `K + 1 − Σ_α 1/(P_α+1) − 1/(P_max+1)`.
    pub fn competitive_lower_bound(&self) -> f64 {
        let k = self.procs.len() as f64;
        let sum: f64 = self.procs.iter().map(|&p| 1.0 / (p as f64 + 1.0)).sum();
        let pmax = *self.procs.iter().max().expect("non-empty") as f64;
        k + 1.0 - sum - 1.0 / (pmax + 1.0)
    }
}

/// Generates one instance of the adversarial family; the positions of the
/// active tasks are the only randomness.
pub fn generate<R: Rng>(params: &AdversarialParams, rng: &mut R) -> KDag {
    generate_impl(params, &mut |pool: &mut Vec<TaskId>| pool.shuffle(rng))
}

/// The *deterministic* worst case against FIFO dispatch: every active
/// task sits at the **end** of its type's id block, so a scheduler that
/// drains queues in arrival order completes the entire block before
/// uncovering the tasks that gate the next type — realizing the
/// deterministic online lower bound `K + 1 − 1/P_max` (He/Sun/Hsu, cited
/// in §III) instead of its randomized average.
pub fn generate_worst_case_fifo(params: &AdversarialParams) -> KDag {
    // "Shuffle" = rotate actives to the back: the selection below takes
    // the first entries of the pool, so reverse id order puts the highest
    // ids (last in FIFO arrival order) first.
    generate_impl(params, &mut |pool: &mut Vec<TaskId>| pool.reverse())
}

fn generate_impl(params: &AdversarialParams, arrange: &mut dyn FnMut(&mut Vec<TaskId>)) -> KDag {
    let k = params.procs.len();
    let pk = *params.procs.last().expect("non-empty");
    let m = params.m;

    let mut b = KDagBuilder::new(k);

    // Create all tasks, grouped by type.
    let tasks_of: Vec<Vec<TaskId>> = (0..k)
        .map(|alpha| {
            let count = params.procs[alpha] * pk * m;
            (0..count).map(|_| b.add_task(alpha, 1)).collect()
        })
        .collect();

    // Types 1..K-1 (0-based: alpha < k-1): P_α active tasks point to every
    // (α+1)-task.
    for alpha in 0..k.saturating_sub(1) {
        let mut pool = tasks_of[alpha].clone();
        arrange(&mut pool);
        let active = &pool[..params.procs[alpha]];
        for &a in active {
            for &t in &tasks_of[alpha + 1] {
                b.add_edge(a, t).expect("active edges are valid");
            }
        }
    }

    // K-tasks: the chain and its gate. The chain is built from extra
    // tasks so that non-chain K-tasks number P_K²·m − m·P_K + 1 … the
    // paper carves both from the same P_K²·m pool; we carve too.
    let chain_len = m * pk - 1;
    let k_tasks = &tasks_of[k - 1];
    assert!(
        k_tasks.len() > chain_len,
        "P_K²·m must exceed the chain length"
    );
    // Deterministically take the last `chain_len` tasks as the chain; the
    // actives are sampled among the rest, which keeps the uniform-position
    // property the proof needs (ids carry no scheduling meaning for the
    // policies under test, and queue order is arrival order).
    let (non_chain, chain) = k_tasks.split_at(k_tasks.len() - chain_len);
    for w in chain.windows(2) {
        b.add_edge(w[0], w[1]).expect("chain edges are valid");
    }
    if let Some(&head) = chain.first() {
        let mut pool = non_chain.to_vec();
        arrange(&mut pool);
        for &a in &pool[..pk] {
            b.add_edge(a, head).expect("gate edges are valid");
        }
    }

    b.build().expect("the adversarial family is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn worst_case_fifo_variant_matches_counts_and_span() {
        let p = AdversarialParams::new(vec![2, 2, 3], 2);
        let g = generate_worst_case_fifo(&p);
        assert_eq!(g.num_tasks_of_type(0), 2 * 3 * 2);
        assert_eq!(g.num_tasks_of_type(2), 3 * 3 * 2);
        assert_eq!(metrics::span(&g), p.optimal_makespan());
        // actives are the highest non-chain ids of each type: the very
        // last type-0 task must have outgoing edges
        let last_t0 = g
            .tasks()
            .filter(|&v| g.rtype(v) == 0)
            .max()
            .expect("type-0 tasks exist");
        assert!(g.num_children(last_t0) > 0, "last type-0 id must be active");
    }

    fn small() -> AdversarialParams {
        AdversarialParams::new(vec![2, 2, 3], 2)
    }

    #[test]
    fn task_counts_match_the_construction() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = small();
        let g = generate(&p, &mut rng);
        // P_α · P_K · m per type
        assert_eq!(g.num_tasks_of_type(0), 2 * 3 * 2);
        assert_eq!(g.num_tasks_of_type(1), 2 * 3 * 2);
        assert_eq!(g.num_tasks_of_type(2), 3 * 3 * 2);
    }

    #[test]
    fn optimal_makespan_formula() {
        let p = small();
        assert_eq!(p.optimal_makespan(), 2 + 6); // K-1 + m·P_K
    }

    #[test]
    fn lower_bound_formula_matches_hand_computation() {
        let p = AdversarialParams::new(vec![1, 1], 3);
        // K+1 - (1/2 + 1/2) - 1/2 = 3 - 1 - 0.5 = 1.5? K=2: 2+1-1-0.5 = 1.5
        assert!((p.competitive_lower_bound() - 1.5).abs() < 1e-12);
        let p = AdversarialParams::new(vec![1000, 1000, 1000, 1000], 2);
        // approaches K+1 = 5 for large pools
        assert!(p.competitive_lower_bound() > 4.99);
    }

    #[test]
    fn span_is_dominated_by_the_chain_plus_gates() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = small();
        let g = generate(&p, &mut rng);
        // Critical path: one active task per type 0..K-2 (K-1 tasks), one
        // active K-task, then the chain of m·P_K − 1: total K-1 + 1 +
        // (m·P_K − 1) = K − 1 + m·P_K = T*.
        assert_eq!(metrics::span(&g), p.optimal_makespan());
    }

    #[test]
    fn lower_bound_of_instance_equals_optimum() {
        // L(J) = max(span, work/procs): work per type α is P_α·P_K·m over
        // P_α procs = P_K·m ≤ span. So L = T* and the offline optimum is
        // achievable — the ratio denominator is tight for this family.
        let mut rng = StdRng::seed_from_u64(3);
        let p = small();
        let g = generate(&p, &mut rng);
        let lb = metrics::lower_bound(&g, &p.procs);
        assert_eq!(lb, p.optimal_makespan());
    }

    #[test]
    #[should_panic(expected = "P_K = P_max")]
    fn rejects_misordered_processor_vectors() {
        AdversarialParams::new(vec![3, 1], 2);
    }

    #[test]
    fn chain_is_a_chain_and_gated() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = AdversarialParams::new(vec![1, 2], 2);
        let g = generate(&p, &mut rng);
        // 8 type-1 tasks; every one already has the single active type-0
        // task as a parent. On top of that, the chain (m·P_K − 1 = 3
        // tasks) adds: head gains P_K = 2 gate parents, the two others
        // gain 1 chain parent each. Sorted parent counts over type-1:
        // five non-chain with 1, two chain-followers with 2, head with 3.
        let mut parent_counts: Vec<usize> = g
            .tasks()
            .filter(|&v| g.rtype(v) == 1)
            .map(|v| g.num_parents(v))
            .collect();
        parent_counts.sort_unstable();
        assert_eq!(parent_counts, vec![1, 1, 1, 1, 1, 2, 2, 3]);
    }
}
