//! # fhs-workloads — synthetic K-DAG generators from the paper's §V
//!
//! Three application families, each in a *layered* (structured types) and
//! a *random* (uniform types) flavour:
//!
//! * **EP** ([`ep`]) — embarrassingly parallel: independent branches, each
//!   a chain of tasks (Monte-Carlo-style workloads).
//! * **Tree** ([`tree`]) — divide-and-conquer out-trees with probabilistic
//!   fanout (search / traversal / speculative parallelism).
//! * **IR** ([`ir`]) — iterative reduction: multiple MapReduce-style
//!   iterations with probabilistic map→reduce wiring.
//!
//! Plus the **adversarial family** ([`adversarial`]) from the Theorem-2
//! lower-bound proof (paper Fig. 2), resource-configuration samplers
//! ([`resources`]) for the paper's *small* (1–5 processors/type) and
//! *medium* (10–20 processors/type) systems, and the [`flexgen`]
//! transform that turns any job into a JIT-flexible one (§VII
//! extension).
//!
//! The paper reports only qualitative parameter ranges ("we varied the
//! number of branches, the work of each task, …"); the concrete ranges
//! used here are documented on each generator's `Params` type and scale
//! with the system size so that medium systems are not trivially
//! span-bound. All sampling is deterministic in the provided seed.
//!
//! ```
//! use fhs_workloads::{WorkloadSpec, Family, Typing, resources::SystemSize};
//!
//! let spec = WorkloadSpec::new(Family::Tree, Typing::Layered, SystemSize::Medium, 4);
//! let (job, cfg) = spec.sample(42);
//! assert_eq!(job.num_types(), 4);
//! assert!(cfg.procs_per_type().iter().all(|&p| (10..=20).contains(&p)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod arrivals;
pub mod ep;
pub mod flexgen;
pub mod ir;
pub mod resources;
pub mod scope;
pub mod spec;
pub mod tree;

pub use arrivals::{ArrivalPlan, JobArrival};
pub use spec::{Family, Typing, WorkloadSpec};

use rand::Rng;

/// Default per-task work range used by all three families (`U[1, 4]`).
///
/// Moderate variance keeps the completion-time ratio a measure of
/// *interleaving* quality (the paper's subject) rather than of
/// longest-processing-time bin-packing at phase tails, which a very wide
/// work range would reward instead.
pub const WORK_RANGE: std::ops::RangeInclusive<u64> = 1..=2;

pub(crate) fn sample_work<R: Rng>(rng: &mut R) -> u64 {
    rng.gen_range(WORK_RANGE)
}
