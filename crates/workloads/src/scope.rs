//! Scope/Cosmos-style workflows — the paper's §I motivating system as a
//! first-class workload family.
//!
//! A Scope job compiles to a DAG of stages ("about 20 nodes on average"),
//! each stage a set of data-parallel tasks bound to a *server class* by
//! data placement; stage-to-stage edges are partial shuffles (each task
//! reads a few upstream partitions). Server classes are the functional
//! types.

use kdag::{KDag, KDagBuilder, TaskId};
use rand::Rng;

use crate::sample_work;

/// Scope workflow parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScopeParams {
    /// Number of stages (the paper's motivating jobs average ~20).
    pub stages: usize,
    /// Per-stage width range `U[lo, hi]` (data-parallel degree).
    pub width: (usize, usize),
    /// Maximum upstream partitions a task reads (`U[1, max_fanin]`).
    pub max_fanin: usize,
}

impl ScopeParams {
    /// Samples instance parameters: `stages ∈ U[16, 24]`, width from the
    /// caller's size-scaled range, fanin ≤ 3.
    pub fn sample<R: Rng>(rng: &mut R, width: (usize, usize)) -> Self {
        ScopeParams {
            stages: rng.gen_range(16..=24),
            width,
            max_fanin: 3,
        }
    }
}

/// Stage-to-class assignment: ingest (0) → compute (1,…,K−2 cycling) →
/// output (K−1), repeating every 4 stages for K ≥ 3; round-robin for
/// smaller K.
fn class_of(stage: usize, k: usize) -> usize {
    if k >= 3 {
        match stage % 4 {
            0 => 0,
            1 | 2 => 1 + (stage / 4) % (k - 2),
            _ => k - 1,
        }
    } else {
        stage % k
    }
}

/// Generates a Scope-style K-DAG.
pub fn generate<R: Rng>(k: usize, params: &ScopeParams, rng: &mut R) -> KDag {
    assert!(k >= 1);
    let mut b = KDagBuilder::new(k);
    let mut prev: Vec<TaskId> = Vec::new();
    for stage in 0..params.stages.max(1) {
        let class = class_of(stage, k);
        let width = rng.gen_range(params.width.0..=params.width.1).max(1);
        let tasks: Vec<TaskId> = (0..width)
            .map(|_| b.add_task(class, sample_work(rng)))
            .collect();
        if !prev.is_empty() {
            for &t in &tasks {
                let fanin = rng.gen_range(1..=params.max_fanin.min(prev.len()).max(1));
                let mut picked = std::collections::BTreeSet::new();
                while picked.len() < fanin {
                    picked.insert(prev[rng.gen_range(0..prev.len())]);
                }
                for p in picked {
                    b.add_edge(p, t).expect("stage wiring is forward");
                }
            }
        }
        prev = tasks;
    }
    b.build().expect("stage-ordered wiring is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::topo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> ScopeParams {
        ScopeParams {
            stages: 20,
            width: (4, 12),
            max_fanin: 3,
        }
    }

    #[test]
    fn stage_structure_holds() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generate(3, &params(), &mut rng);
        assert!(topo::topological_order(&g).is_some());
        // depth equals stage count: every task reads from the previous
        // stage only
        let layers = topo::layers(&g);
        assert_eq!(layers.len(), 20);
        // every layer is one class
        for layer in &layers {
            let class = g.rtype(layer[0]);
            assert!(layer.iter().all(|&v| g.rtype(v) == class));
        }
    }

    #[test]
    fn class_assignment_covers_all_classes() {
        let classes: std::collections::HashSet<usize> = (0..20).map(|s| class_of(s, 4)).collect();
        assert_eq!(classes, (0..4).collect());
        // K = 2 round-robins
        assert_eq!(class_of(0, 2), 0);
        assert_eq!(class_of(1, 2), 1);
        assert_eq!(class_of(2, 2), 0);
    }

    #[test]
    fn every_nonfirst_task_reads_upstream_partitions() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generate(3, &params(), &mut rng);
        let depths = topo::depths(&g);
        for v in g.tasks() {
            if depths[v.index()] > 0 {
                let fanin = g.num_parents(v);
                assert!((1..=3).contains(&fanin), "{v}: fanin {fanin}");
            }
        }
    }

    #[test]
    fn single_stage_has_no_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = ScopeParams {
            stages: 1,
            width: (5, 5),
            max_fanin: 3,
        };
        let g = generate(2, &p, &mut rng);
        assert_eq!(g.num_tasks(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn schedulers_differentiate_on_scope_jobs() {
        use fhs_sim::{metrics, MachineConfig, Mode};
        let mut kg_sum = 0.0;
        let mut mqb_sum = 0.0;
        let cfg = MachineConfig::new(vec![3, 5, 2]);
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = ScopeParams::sample(&mut rng, (4, 16));
            let g = generate(3, &p, &mut rng);
            let mut kg = fhs_core_stub::kgreedy(seed);
            let mut mqb = fhs_core_stub::mqb();
            kg_sum += metrics::evaluate(&g, &cfg, kg.as_mut(), Mode::NonPreemptive, seed).ratio;
            mqb_sum += metrics::evaluate(&g, &cfg, mqb.as_mut(), Mode::NonPreemptive, seed).ratio;
        }
        assert!(
            mqb_sum < kg_sum,
            "MQB {mqb_sum} should beat KGreedy {kg_sum} on Scope jobs"
        );
    }

    /// `fhs-workloads` cannot depend on `fhs-core` (it is the other way
    /// round), so the scheduler smoke-test uses the simulator's built-in
    /// FIFO and a trivial local MQB-flavoured stand-in: FIFO vs LIFO by
    /// descendant mass, enough to check the family differentiates
    /// schedulers at all.
    mod fhs_core_stub {
        use fhs_sim::policy::{Assignments, EpochView, FifoPolicy, Policy};
        use fhs_sim::MachineConfig;
        use kdag::{descendants, KDag};

        pub fn kgreedy(_seed: u64) -> Box<dyn Policy> {
            Box::new(FifoPolicy)
        }

        #[derive(Default)]
        struct DescFirst {
            d: Vec<f64>,
            snap: Vec<fhs_sim::ReadyTask>,
        }

        impl Policy for DescFirst {
            fn name(&self) -> &str {
                "DescFirst"
            }
            fn init(&mut self, job: &KDag, _c: &MachineConfig, _s: u64) {
                self.d = descendants::type_blind_descendants(job);
            }
            fn assign(&mut self, view: &EpochView<'_>, out: &mut Assignments) {
                for alpha in 0..view.config.num_types() {
                    view.queues[alpha].collect_into(&mut self.snap);
                    let d = &self.d;
                    self.snap
                        .sort_by(|a, b| d[b.id.index()].total_cmp(&d[a.id.index()]));
                    for rt in self.snap.iter().take(view.slots[alpha]) {
                        out.push(alpha, rt.id);
                    }
                }
            }
        }

        pub fn mqb() -> Box<dyn Policy> {
            Box::new(DescFirst::default())
        }
    }
}
