//! Seeded job-arrival processes for the session engine.
//!
//! A streaming experiment needs *when* jobs arrive and *which* job arrives,
//! both reproducible from a seed. An [`ArrivalPlan`] is a finite, sorted
//! list of [`JobArrival`]s — each an arrival time plus the instance seed to
//! feed [`crate::WorkloadSpec::sample`] — produced by one of two processes:
//!
//! * [`ArrivalPlan::poisson`] — memoryless arrivals: inter-arrival gaps
//!   are i.i.d. exponential with the given mean, the classic open-system
//!   load model (offered load is then `mean job work / (gap × capacity)`).
//! * [`ArrivalPlan::random_order`] — the random-order (secretary) model of
//!   Im et al. (PAPERS.md): a *fixed* set of jobs, identified by seeds
//!   `base..base+n`, arrives as a uniformly random permutation at a fixed
//!   cadence. Adversarial job sets, stochastic order — exactly the regime
//!   where online policies beat their worst-case bounds.
//!
//! Determinism contract: the same constructor arguments produce the same
//! plan on every platform (the exponential draw uses the shim rng's fixed
//! 53-bit uniform; the permutation is a seeded Fisher–Yates).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One planned job arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobArrival {
    /// Simulation time the job is admitted.
    pub t: u64,
    /// Seed identifying the job instance (fed to `WorkloadSpec::sample`).
    pub seed: u64,
}

/// A finite, time-sorted arrival schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrivalPlan {
    arrivals: Vec<JobArrival>,
}

impl ArrivalPlan {
    /// Poisson process: `n` arrivals whose inter-arrival gaps are i.i.d.
    /// exponential with mean `mean_gap` time units (gaps are rounded up,
    /// so consecutive arrivals are at least 1 apart and strictly
    /// increasing). Job `i` carries instance seed `job_seed_base + i`.
    ///
    /// # Panics
    /// If `mean_gap` is not positive and finite.
    pub fn poisson(n: usize, mean_gap: f64, seed: u64, job_seed_base: u64) -> Self {
        assert!(
            mean_gap.is_finite() && mean_gap > 0.0,
            "mean_gap must be positive and finite, got {mean_gap}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0u64;
        let arrivals = (0..n)
            .map(|i| {
                // Inverse-CDF exponential: -mean · ln(1 - U), U ∈ [0, 1).
                let u: f64 = rng.gen();
                let gap = (-mean_gap * (1.0 - u).ln()).ceil();
                t += (gap as u64).max(1);
                JobArrival {
                    t,
                    seed: job_seed_base + i as u64,
                }
            })
            .collect();
        ArrivalPlan { arrivals }
    }

    /// Random-order model: the fixed job set `{job_seed_base, …,
    /// job_seed_base + n − 1}` arrives as a seeded uniformly random
    /// permutation, one job every `gap` time units starting at `gap`.
    ///
    /// # Panics
    /// If `gap` is zero.
    pub fn random_order(n: usize, gap: u64, seed: u64, job_seed_base: u64) -> Self {
        assert!(gap > 0, "gap must be positive");
        let mut order: Vec<u64> = (0..n as u64).map(|i| job_seed_base + i).collect();
        // Fisher–Yates with the seeded shim rng: uniform over permutations.
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let arrivals = order
            .into_iter()
            .enumerate()
            .map(|(i, seed)| JobArrival {
                t: (i as u64 + 1) * gap,
                seed,
            })
            .collect();
        ArrivalPlan { arrivals }
    }

    /// The arrivals, sorted by time (ties impossible by construction).
    pub fn arrivals(&self) -> &[JobArrival] {
        &self.arrivals
    }

    /// Number of planned arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Time of the last arrival (0 for an empty plan).
    pub fn horizon(&self) -> u64 {
        self.arrivals.last().map_or(0, |a| a.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_sorted_and_strictly_increasing() {
        let a = ArrivalPlan::poisson(64, 10.0, 7, 100);
        let b = ArrivalPlan::poisson(64, 10.0, 7, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.arrivals().windows(2).all(|w| w[0].t < w[1].t));
        assert_eq!(a.arrivals()[0].seed, 100);
        assert_eq!(a.arrivals()[63].seed, 163);
        // A different seed moves the times.
        let c = ArrivalPlan::poisson(64, 10.0, 8, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_gap_is_roughly_respected() {
        let a = ArrivalPlan::poisson(2000, 10.0, 42, 0);
        let mean = a.horizon() as f64 / a.len() as f64;
        // Exponential(10) gaps, ceiled: the empirical mean lands near
        // 10.5; allow generous slack for the fixed seed.
        assert!((8.0..14.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn random_order_is_a_permutation_of_the_fixed_set() {
        let a = ArrivalPlan::random_order(32, 5, 9, 50);
        assert_eq!(a.len(), 32);
        // Fixed cadence.
        assert!(a
            .arrivals()
            .iter()
            .enumerate()
            .all(|(i, ar)| ar.t == (i as u64 + 1) * 5));
        // Same multiset of seeds, not (for this seed) the identity order.
        let mut seeds: Vec<u64> = a.arrivals().iter().map(|ar| ar.seed).collect();
        assert!(seeds.windows(2).any(|w| w[0] > w[1]), "expected a shuffle");
        seeds.sort_unstable();
        assert_eq!(seeds, (50..82).collect::<Vec<u64>>());
        // Deterministic; different seed → different permutation.
        assert_eq!(a, ArrivalPlan::random_order(32, 5, 9, 50));
        assert_ne!(a, ArrivalPlan::random_order(32, 5, 10, 50));
    }

    #[test]
    fn empty_plans_are_well_formed() {
        let p = ArrivalPlan::poisson(0, 1.0, 0, 0);
        assert!(p.is_empty());
        assert_eq!(p.horizon(), 0);
        let r = ArrivalPlan::random_order(0, 1, 0, 0);
        assert!(r.is_empty());
    }
}
