//! Workload specifications: family × typing × system size, with the
//! size-scaled parameter ranges used throughout the experiments.

use fhs_sim::MachineConfig;
use kdag::KDag;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::resources::{self, SystemSize};
use crate::{ep, ir, tree};

/// DAG family (paper §V-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Embarrassingly parallel.
    Ep,
    /// Divide-and-conquer tree.
    Tree,
    /// Iterative reduction (MapReduce-like).
    Ir,
}

impl Family {
    /// The paper's display name.
    pub fn label(&self) -> &'static str {
        match self {
            Family::Ep => "EP",
            Family::Tree => "Tree",
            Family::Ir => "IR",
        }
    }
}

/// Task-type assignment discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Typing {
    /// Structured: types follow the DAG's layers/phases.
    Layered,
    /// Unstructured: each task's type is uniform over the `K` types.
    Random,
}

impl Typing {
    /// The paper's display name.
    pub fn label(&self) -> &'static str {
        match self {
            Typing::Layered => "Layered",
            Typing::Random => "Random",
        }
    }
}

/// A complete workload description; one `(spec, seed)` pair determines one
/// job instance and one machine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// DAG family.
    pub family: Family,
    /// Type-assignment discipline.
    pub typing: Typing,
    /// System size class.
    pub size: SystemSize,
    /// Number of resource types `K`.
    pub k: usize,
    /// Apply the §V-E skew (type 1's pool shrunk to 1/5)?
    pub skewed: bool,
}

impl WorkloadSpec {
    /// A non-skewed spec.
    pub fn new(family: Family, typing: Typing, size: SystemSize, k: usize) -> Self {
        WorkloadSpec {
            family,
            typing,
            size,
            k,
            skewed: false,
        }
    }

    /// Returns a copy with the §V-E skew applied to sampled configurations.
    pub fn skewed(mut self) -> Self {
        self.skewed = true;
        self
    }

    /// The paper's panel caption, e.g. `"Medium Layered IR"`.
    pub fn label(&self) -> String {
        let base = format!(
            "{} {} {}",
            self.size.label(),
            self.typing.label(),
            self.family.label()
        );
        if self.skewed {
            format!("{base} (skewed)")
        } else {
            base
        }
    }

    /// Instance-parameter ranges scaled to the system size so medium
    /// systems see proportionally wider DAGs (documented substitution —
    /// the paper gives only qualitative ranges).
    fn branch_range(&self) -> (usize, usize) {
        match self.size {
            SystemSize::Small => (8, 24),
            SystemSize::Medium => (20, 60),
            // ≥ 250 branches × K phases ⇒ ≥ 1000 tasks at K = 4.
            SystemSize::Large => (250, 500),
            // ~7000 branches × 4 phases × ~4 tasks ⇒ ~112k tasks on
            // average at K = 4 (`max_phase_len ∈ U[4, 10]`).
            SystemSize::Huge => (5000, 9000),
        }
    }

    fn tree_cap(&self) -> (usize, usize) {
        match self.size {
            SystemSize::Small => (30, 150),
            SystemSize::Medium => (300, 1200),
            SystemSize::Large => (3000, 12000),
            SystemSize::Huge => (30000, 120000),
        }
    }

    fn ir_ranges(&self) -> ((usize, usize), (usize, usize)) {
        match self.size {
            SystemSize::Small => ((4, 16), (2, 8)),
            SystemSize::Medium => ((20, 60), (10, 30)),
            // ≥ 2 iterations × (400 + 150) ⇒ ≥ 1100 tasks.
            SystemSize::Large => ((400, 700), (150, 300)),
            // ≥ 2 iterations × (15000 + 5000) ⇒ ≥ 40k tasks (~100k on
            // average over `iterations ∈ U[2, 5]`); wide enough to take
            // the generator's sparse wiring path.
            SystemSize::Huge => ((15000, 25000), (5000, 8000)),
        }
    }

    /// Deterministically samples one `(job, machine)` instance.
    pub fn sample(&self, seed: u64) -> (KDag, MachineConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = resources::sample_config(self.k, self.size, &mut rng);
        let config = if self.skewed {
            resources::skew(&config)
        } else {
            config
        };
        let job = match self.family {
            Family::Ep => {
                let p = ep::EpParams::sample(&mut rng, self.branch_range());
                ep::generate(self.k, &p, self.typing, &mut rng)
            }
            Family::Tree => {
                let p = tree::TreeParams::sample(&mut rng, self.tree_cap());
                tree::generate(self.k, &p, self.typing, &mut rng)
            }
            Family::Ir => {
                let (mr, rr) = self.ir_ranges();
                let p = ir::IrParams::sample(&mut rng, mr, rr);
                ir::generate(self.k, &p, self.typing, &mut rng)
            }
        };
        (job, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_papers_captions() {
        let s = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Medium, 4);
        assert_eq!(s.label(), "Medium Layered IR");
        assert_eq!(s.skewed().label(), "Medium Layered IR (skewed)");
        let s = WorkloadSpec::new(Family::Ep, Typing::Random, SystemSize::Small, 4);
        assert_eq!(s.label(), "Small Random EP");
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let s = WorkloadSpec::new(Family::Tree, Typing::Random, SystemSize::Small, 3);
        let (j1, c1) = s.sample(99);
        let (j2, c2) = s.sample(99);
        assert_eq!(c1, c2);
        assert_eq!(j1.num_tasks(), j2.num_tasks());
        assert_eq!(j1.num_edges(), j2.num_edges());
        let works1: Vec<u64> = j1.tasks().map(|v| j1.work(v)).collect();
        let works2: Vec<u64> = j2.tasks().map(|v| j2.work(v)).collect();
        assert_eq!(works1, works2);
        // different seed differs (overwhelmingly likely)
        let (j3, _) = s.sample(100);
        assert!(
            j3.num_tasks() != j1.num_tasks()
                || j3.tasks().map(|v| j3.work(v)).collect::<Vec<_>>() != works1
        );
    }

    #[test]
    fn skewed_configs_shrink_type_one() {
        let s = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Medium, 4).skewed();
        for seed in 0..10 {
            let (_, cfg) = s.sample(seed);
            assert!(cfg.procs(0) <= 4); // ceil(20/5)
            assert!(cfg.procs(1) >= 10);
        }
    }

    #[test]
    fn every_family_builds_valid_dags_across_seeds() {
        for family in [Family::Ep, Family::Tree, Family::Ir] {
            for typing in [Typing::Layered, Typing::Random] {
                for size in [SystemSize::Small, SystemSize::Medium] {
                    let s = WorkloadSpec::new(family, typing, size, 4);
                    for seed in 0..5 {
                        let (job, cfg) = s.sample(seed);
                        assert!(job.num_tasks() > 0);
                        assert_eq!(job.num_types(), 4);
                        assert_eq!(cfg.num_types(), 4);
                        assert!(kdag::topo::topological_order(&job).is_some());
                    }
                }
            }
        }
    }

    #[test]
    fn large_ep_and_ir_instances_have_at_least_1000_tasks() {
        // The sweep bench relies on Large EP/IR being ≥ 1000 tasks for
        // every seed (Tree only guarantees ≥ cap/5 and is excluded).
        for family in [Family::Ep, Family::Ir] {
            let s = WorkloadSpec::new(family, Typing::Layered, SystemSize::Large, 4);
            for seed in 0..5 {
                let (job, cfg) = s.sample(seed);
                assert!(
                    job.num_tasks() >= 1000,
                    "{} seed {seed}: only {} tasks",
                    s.label(),
                    job.num_tasks()
                );
                assert!(cfg.procs_per_type().iter().all(|&p| (30..=60).contains(&p)));
            }
        }
    }

    #[test]
    fn huge_instances_reach_the_100k_regime() {
        // The scale bench and the Huge smoke test rely on EP/IR landing
        // in the ~10⁵-task band with cluster-scale pools; IR must also be
        // wide enough to take the generator's sparse wiring path.
        for family in [Family::Ep, Family::Ir] {
            let s = WorkloadSpec::new(family, Typing::Layered, SystemSize::Huge, 4);
            for seed in 0..3 {
                let (job, cfg) = s.sample(seed);
                assert!(
                    job.num_tasks() >= 40_000,
                    "{} seed {seed}: only {} tasks",
                    s.label(),
                    job.num_tasks()
                );
                assert!(
                    job.num_edges() <= 4 * job.num_tasks(),
                    "{} seed {seed}: {} edges for {} tasks — sparse wiring broken?",
                    s.label(),
                    job.num_edges(),
                    job.num_tasks()
                );
                assert!(cfg
                    .procs_per_type()
                    .iter()
                    .all(|&p| (100..=200).contains(&p)));
            }
        }
    }

    #[test]
    fn k_one_works_for_changing_k_experiments() {
        for family in [Family::Ep, Family::Tree, Family::Ir] {
            let s = WorkloadSpec::new(family, Typing::Layered, SystemSize::Small, 1);
            let (job, cfg) = s.sample(7);
            assert_eq!(job.num_types(), 1);
            assert_eq!(cfg.num_types(), 1);
        }
    }
}
