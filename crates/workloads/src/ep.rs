//! Embarrassingly parallel (EP) workloads: independent branches, each a
//! chain of tasks (paper §V-B, Fig. 3a).
//!
//! A branch is a chain of `K` *phases* — "different phases of an EP branch
//! can be executed on different resource types" — each phase a run of
//! consecutive tasks, with per-(branch, phase) lengths drawn
//! independently, so branches are heterogeneous in both length and the
//! type mix of their remainders:
//!
//! * **Layered** EP: phase `i` of every branch has type `i` — the fixed
//!   "1 to K" sequence of the paper. A branch's remaining work therefore
//!   has a *position-dependent type distribution* (a branch still in
//!   phase 0 carries all of types 1…K−1 ahead; one in its last phase
//!   carries only type K−1), which is exactly the information MQB
//!   exploits and type-blind heuristics (MaxDP, LSpan) cannot.
//! * **Random** EP: identical chain structure, but every task's type is
//!   uniform over the `K` types.

use kdag::{KDag, KDagBuilder};
use rand::Rng;

use crate::sample_work;
use crate::spec::Typing;

/// EP generation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpParams {
    /// Number of independent branches.
    pub branches: usize,
    /// Upper bound of the per-(branch, phase) length `U[1, max_phase_len]`.
    pub max_phase_len: usize,
}

impl EpParams {
    /// Samples instance parameters: `branches ∈ U[lo, hi]` (size-scaled by
    /// the caller) and `max_phase_len ∈ U[4, 10]`.
    pub fn sample<R: Rng>(rng: &mut R, branch_range: (usize, usize)) -> Self {
        EpParams {
            branches: rng.gen_range(branch_range.0..=branch_range.1),
            max_phase_len: rng.gen_range(4..=10),
        }
    }
}

/// Generates an EP K-DAG: `params.branches` independent chains, each made
/// of `K` phases of `U[1, max_phase_len]` tasks, typed per `typing`, with
/// works drawn from [`crate::WORK_RANGE`].
pub fn generate<R: Rng>(k: usize, params: &EpParams, typing: Typing, rng: &mut R) -> KDag {
    // Expected size: branches × K phases × (1 + max_phase_len)/2 tasks;
    // matters at Huge scale (~100k tasks) where repeated regrowth of the
    // builder's arrays would dominate generation.
    let expect = params.branches * k * (1 + params.max_phase_len).div_ceil(2);
    let mut b = KDagBuilder::with_capacity(k, expect, expect);
    for _ in 0..params.branches {
        let mut prev = None;
        for phase in 0..k {
            let len = rng.gen_range(1..=params.max_phase_len.max(1));
            for _ in 0..len {
                let rtype = match typing {
                    Typing::Layered => phase,
                    Typing::Random => rng.gen_range(0..k),
                };
                let v = b.add_task(rtype, sample_work(rng));
                if let Some(p) = prev {
                    b.add_edge(p, v).expect("chain edges are valid");
                }
                prev = Some(v);
            }
        }
    }
    b.build().expect("EP graphs are forward chains")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::{metrics, topo, TaskId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn structure_is_branches_of_chains() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = EpParams {
            branches: 5,
            max_phase_len: 3,
        };
        let g = generate(3, &p, Typing::Random, &mut rng);
        assert_eq!(g.roots().count(), 5);
        assert_eq!(g.sinks().count(), 5);
        assert_eq!(g.num_edges(), g.num_tasks() - 5);
        for v in g.tasks() {
            assert!(g.num_parents(v) <= 1);
            assert!(g.num_children(v) <= 1);
        }
        // every branch has between K and K·max_phase_len tasks
        assert!(g.num_tasks() >= 5 * 3 && g.num_tasks() <= 5 * 9);
    }

    #[test]
    fn layered_branches_walk_phases_in_order() {
        let mut rng = StdRng::seed_from_u64(2);
        let k = 4;
        let p = EpParams {
            branches: 6,
            max_phase_len: 4,
        };
        let g = generate(k, &p, Typing::Layered, &mut rng);
        // follow each chain from its root: types must be non-decreasing
        // and cover 0..K in order.
        for root in g.roots() {
            let mut cur = root;
            let mut types = vec![g.rtype(cur)];
            while let Some(&c) = g.children(cur).first() {
                types.push(g.rtype(c));
                cur = c;
            }
            assert_eq!(types[0], 0, "branches start in phase 0");
            assert_eq!(*types.last().unwrap(), k - 1, "branches end in phase K-1");
            assert!(types.windows(2).all(|w| w[1] == w[0] || w[1] == w[0] + 1));
            // all phases present
            for alpha in 0..k {
                assert!(types.contains(&alpha));
            }
        }
    }

    #[test]
    fn phase_lengths_vary_across_branches() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = EpParams {
            branches: 20,
            max_phase_len: 6,
        };
        let g = generate(2, &p, Typing::Layered, &mut rng);
        let mut lengths = std::collections::HashSet::new();
        for root in g.roots() {
            let mut cur = root;
            let mut len = 1;
            while let Some(&c) = g.children(cur).first() {
                len += 1;
                cur = c;
            }
            lengths.insert(len);
        }
        assert!(lengths.len() > 2, "branches should be heterogeneous");
    }

    #[test]
    fn span_equals_longest_branch_work() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = EpParams {
            branches: 4,
            max_phase_len: 3,
        };
        let g = generate(2, &p, Typing::Random, &mut rng);
        let mut best = 0u64;
        for root in g.roots() {
            let mut cur = root;
            let mut total = g.work(cur);
            while let Some(&c) = g.children(cur).first() {
                total += g.work(c);
                cur = c;
            }
            best = best.max(total);
        }
        assert_eq!(metrics::span(&g), best);
    }

    #[test]
    fn random_typing_uses_all_types_eventually() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = EpParams {
            branches: 10,
            max_phase_len: 5,
        };
        let g = generate(4, &p, Typing::Random, &mut rng);
        for alpha in 0..4 {
            assert!(g.num_tasks_of_type(alpha) > 0, "type {alpha} unused");
        }
        assert!(topo::topological_order(&g).is_some());
        // spot-check a task id is in range
        assert!(g.rtype(TaskId::from_index(0)) < 4);
    }

    #[test]
    fn sampled_params_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let p = EpParams::sample(&mut rng, (4, 16));
            assert!((4..=16).contains(&p.branches));
            assert!((4..=10).contains(&p.max_phase_len));
        }
    }
}
