//! Tree workloads: divide-and-conquer out-trees with probabilistic fanout
//! (paper §V-B, Fig. 3b).
//!
//! Starting from a root, every node has probability `p` of spawning `m`
//! children and probability `1 − p` of being a leaf; generation is
//! breadth-first and truncated at `max_tasks` so instances stay bounded.
//!
//! * **Layered** trees: all nodes at one depth share a type; depth `d` has
//!   type `d mod K`.
//! * **Random** trees: each node's type is uniform over the `K` types.

use kdag::{KDag, KDagBuilder, TaskId};
use rand::Rng;

use crate::sample_work;
use crate::spec::Typing;

/// Tree generation parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeParams {
    /// Fanout `m`: number of children a spawning node gets.
    pub fanout: usize,
    /// Fanout probability `p`.
    pub fanout_prob: f64,
    /// Hard cap on the number of tasks (generation truncates here).
    pub max_tasks: usize,
}

impl TreeParams {
    /// Samples instance parameters: `m ∈ U[2, 4]` and a *branching factor*
    /// `b = p·m ∈ U[1.15, 1.65]` from which `p` is derived, plus the
    /// caller's size-scaled task cap.
    ///
    /// Keeping the expected branching factor just above 1 produces deep,
    /// moderately wide trees whose per-level widths are comparable to the
    /// processor pools — the regime where the choice of which frontier
    /// task to run actually matters. Strongly supercritical trees put
    /// almost all work in the fringe and saturate every pool, flattening
    /// all schedulers to ratio ≈ 1.
    pub fn sample<R: Rng>(rng: &mut R, task_cap: (usize, usize)) -> Self {
        let fanout = rng.gen_range(2..=4usize);
        let b: f64 = rng.gen_range(1.15..1.65);
        TreeParams {
            fanout,
            fanout_prob: (b / fanout as f64).min(1.0),
            max_tasks: rng.gen_range(task_cap.0..=task_cap.1),
        }
    }
}

/// Generates a tree K-DAG per the module description, conditioned on
/// survival: branching processes with factor near 1 go extinct early with
/// substantial probability, so generation retries (up to 64 attempts,
/// advancing the RNG deterministically) until the tree reaches at least
/// `max_tasks / 5` tasks, keeping the largest attempt otherwise. The
/// experiments thus sample the paper's "useful applications" regime —
/// jobs with real parallelism — rather than near-empty stubs.
pub fn generate<R: Rng>(k: usize, params: &TreeParams, typing: Typing, rng: &mut R) -> KDag {
    let min_tasks = (params.max_tasks / 5).max(1);
    let mut best: Option<KDag> = None;
    for _ in 0..64 {
        let t = generate_once(k, params, typing, rng);
        if t.num_tasks() >= min_tasks {
            return t;
        }
        if best.as_ref().is_none_or(|b| t.num_tasks() > b.num_tasks()) {
            best = Some(t);
        }
    }
    best.expect("at least one attempt ran")
}

fn generate_once<R: Rng>(k: usize, params: &TreeParams, typing: Typing, rng: &mut R) -> KDag {
    let cap = params.max_tasks.max(1);
    let mut b = KDagBuilder::with_capacity(k, cap, cap.saturating_sub(1));

    let type_at = |depth: usize, rng: &mut R| match typing {
        Typing::Layered => depth % k,
        Typing::Random => rng.gen_range(0..k),
    };

    let root = b.add_task(type_at(0, rng), sample_work(rng));
    // BFS frontier of (node, depth).
    let mut frontier: std::collections::VecDeque<(TaskId, usize)> =
        std::collections::VecDeque::from([(root, 0)]);
    let mut count = 1usize;
    'grow: while let Some((node, depth)) = frontier.pop_front() {
        if !rng.gen_bool(params.fanout_prob) {
            continue;
        }
        for _ in 0..params.fanout {
            if count >= cap {
                break 'grow;
            }
            let c = b.add_task(type_at(depth + 1, rng), sample_work(rng));
            b.add_edge(node, c).expect("tree edges are valid");
            frontier.push_back((c, depth + 1));
            count += 1;
        }
    }
    b.build().expect("trees are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::topo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> TreeParams {
        TreeParams {
            fanout: 3,
            fanout_prob: 0.6,
            max_tasks: 120,
        }
    }

    #[test]
    fn is_a_rooted_out_tree() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generate(3, &params(), Typing::Random, &mut rng);
        assert_eq!(g.roots().count(), 1);
        // every non-root has exactly one parent -> edges = tasks - 1
        assert_eq!(g.num_edges(), g.num_tasks() - 1);
        for v in g.tasks() {
            assert!(g.num_parents(v) <= 1);
        }
    }

    #[test]
    fn respects_the_task_cap() {
        for seed in 0..20u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let p = TreeParams {
                fanout: 4,
                fanout_prob: 0.9,
                max_tasks: 50,
            };
            let g = generate(2, &p, Typing::Random, &mut r);
            assert!(g.num_tasks() <= 50);
        }
    }

    #[test]
    fn layered_levels_share_types() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generate(4, &params(), Typing::Layered, &mut rng);
        let depths = topo::depths(&g);
        for v in g.tasks() {
            assert_eq!(g.rtype(v), depths[v.index()] as usize % 4);
        }
    }

    #[test]
    fn degenerate_prob_zero_gives_single_node() {
        let mut rng = StdRng::seed_from_u64(10);
        let p = TreeParams {
            fanout: 3,
            fanout_prob: 0.0,
            max_tasks: 100,
        };
        let g = generate(2, &p, Typing::Layered, &mut rng);
        assert_eq!(g.num_tasks(), 1);
    }

    #[test]
    fn nodes_have_zero_or_full_fanout_below_cap() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generate(3, &params(), Typing::Random, &mut rng);
        // except possibly at the truncation point, child counts are 0 or m
        let odd: Vec<usize> = g
            .tasks()
            .map(|v| g.num_children(v))
            .filter(|&c| c != 0 && c != 3)
            .collect();
        assert!(odd.len() <= 1, "at most the truncated node may be partial");
    }

    #[test]
    fn sampled_params_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..100 {
            let p = TreeParams::sample(&mut rng, (30, 150));
            assert!((2..=4).contains(&p.fanout));
            let b = p.fanout_prob * p.fanout as f64;
            assert!((1.15..1.65).contains(&b), "branching factor {b}");
            assert!((30..=150).contains(&p.max_tasks));
        }
    }
}
