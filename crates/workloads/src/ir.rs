//! Iterative reduction (IR) workloads: MapReduce-style iterations (paper
//! §V-B, Fig. 3c).
//!
//! Each iteration has a **map phase** (independent tasks) feeding a
//! **reduce phase**. Per the paper, "a reduce task depends on a subset of
//! all map tasks" and "tasks with a high fanout have a higher probability
//! of providing output to each reduce task": every map task draws a fanout
//! weight `u = 0.02 + 0.6·r³` with `r ∈ U[0,1]` (heavy-tailed: a few hot
//! maps feed most reduces, most maps feed none), and each (map, reduce)
//! edge exists independently with probability `u`. Every reduce is guaranteed at least one input
//! (the heaviest-weight map). The next iteration's maps each depend on a
//! random non-empty subset of the previous reduces.
//!
//! * **Layered** IR assigns one type per *phase* (map phase of iteration
//!   `t` gets type `2t mod K`, its reduce phase `2t+1 mod K`). The paper
//!   says "all nodes at each iteration … have the same type"; we refine to
//!   per-phase layers so that jobs with few iterations still exercise all
//!   `K` pools — the same structured-types regime, one level finer (see
//!   DESIGN.md).
//! * **Random** IR draws each task's type uniformly.
//!
//! Iterations whose `maps × reduces` product exceeds
//! [`DENSE_WIRING_LIMIT`] (only the Huge size class in practice) are
//! wired by a sparse path — each reduce draws a bounded number of
//! weighted map inputs instead of testing every pair — keeping edge
//! count and generation time O(tasks); narrower classes keep the exact
//! historical per-pair Bernoulli stream.

use kdag::{KDag, KDagBuilder, TaskId};
use rand::Rng;

use crate::sample_work;
use crate::spec::Typing;

/// Above this `maps × reduces` product an iteration is wired by the
/// sparse path (per-reduce weighted fanin draws) instead of the dense
/// per-pair Bernoulli pass, which costs O(maps·reduces) RNG draws and
/// emits Θ(maps·reduces) expected edges. Large instances (≤ 700 × 300)
/// stay far below the threshold, so every pre-Huge size class keeps its
/// exact historical RNG stream and golden outputs.
pub const DENSE_WIRING_LIMIT: usize = 1 << 20;

/// IR generation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IrParams {
    /// Number of map→reduce iterations.
    pub iterations: usize,
    /// Map tasks per iteration.
    pub maps: usize,
    /// Reduce tasks per iteration.
    pub reduces: usize,
}

impl IrParams {
    /// Samples instance parameters: `iterations ∈ U[2, 5]` and the
    /// caller's size-scaled phase widths.
    pub fn sample<R: Rng>(
        rng: &mut R,
        map_range: (usize, usize),
        reduce_range: (usize, usize),
    ) -> Self {
        IrParams {
            iterations: rng.gen_range(2..=5),
            maps: rng.gen_range(map_range.0..=map_range.1),
            reduces: rng.gen_range(reduce_range.0..=reduce_range.1),
        }
    }
}

/// Draws one index from the discrete distribution whose cumulative
/// weights are `cum` (strictly positive weights; `cum` is non-empty and
/// ends at the total). O(log n) per draw, one RNG draw.
fn pick_weighted<R: Rng>(rng: &mut R, cum: &[f64]) -> usize {
    let total = *cum.last().expect("non-empty distribution");
    let x: f64 = rng.gen_range(0.0..total);
    cum.partition_point(|&c| c <= x).min(cum.len() - 1)
}

/// Generates an IR K-DAG per the module description.
pub fn generate<R: Rng>(k: usize, params: &IrParams, typing: Typing, rng: &mut R) -> KDag {
    let iters = params.iterations.max(1);
    let maps = params.maps.max(1);
    let reduces = params.reduces.max(1);
    let n = iters * (maps + reduces);
    let mut b = KDagBuilder::with_capacity(k, n, n * 2);
    let sparse = maps.saturating_mul(reduces) > DENSE_WIRING_LIMIT;

    let type_of = |phase: usize, rng: &mut R| match typing {
        Typing::Layered => phase % k,
        Typing::Random => rng.gen_range(0..k),
    };

    let mut prev_reduces: Vec<TaskId> = Vec::new();
    for it in 0..iters {
        // Map phase.
        let map_phase = 2 * it;
        let map_ids: Vec<TaskId> = (0..maps)
            .map(|_| b.add_task(type_of(map_phase, rng), sample_work(rng)))
            .collect();
        // Wire maps to the previous iteration's reduces: each map takes 1–2
        // distinct parents, sampled with heavy-tailed reduce weights so a
        // few hot reduces gate most of the next iteration — finishing them
        // early is what good interleaving buys.
        if !prev_reduces.is_empty() {
            let rweights: Vec<f64> = (0..prev_reduces.len())
                .map(|_| {
                    let r: f64 = rng.gen_range(0.0..1.0);
                    0.05 + r * r * r
                })
                .collect();
            if sparse {
                // Same 1–2 weighted parents, binary-searched over the
                // cumulative distribution instead of a linear scan.
                let mut cum = rweights;
                let mut acc = 0.0;
                for w in &mut cum {
                    acc += *w;
                    *w = acc;
                }
                for &m in &map_ids {
                    let first = prev_reduces[pick_weighted(rng, &cum)];
                    b.add_edge(first, m).expect("cross-iteration edge");
                    if rng.gen_bool(0.5) {
                        let second = prev_reduces[pick_weighted(rng, &cum)];
                        if second != first {
                            b.add_edge(second, m).expect("cross-iteration edge");
                        }
                    }
                }
            } else {
                let total_w: f64 = rweights.iter().sum();
                let pick = |rng: &mut R| {
                    let mut x: f64 = rng.gen_range(0.0..total_w);
                    for (i, &w) in rweights.iter().enumerate() {
                        if x < w {
                            return prev_reduces[i];
                        }
                        x -= w;
                    }
                    *prev_reduces.last().expect("non-empty")
                };
                for &m in &map_ids {
                    let first = pick(rng);
                    b.add_edge(first, m).expect("cross-iteration edge");
                    if rng.gen_bool(0.5) {
                        let second = pick(rng);
                        if second != first {
                            b.add_edge(second, m).expect("cross-iteration edge");
                        }
                    }
                }
            }
        }

        // Per-map fanout weights: high-weight maps feed more reduces.
        let weights: Vec<f64> = (0..maps)
            .map(|_| {
                let r: f64 = rng.gen_range(0.0..1.0);
                0.02 + 0.6 * r * r * r
            })
            .collect();
        let heaviest = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("maps ≥ 1");

        // Reduce phase.
        let reduce_phase = 2 * it + 1;
        let reduce_ids: Vec<TaskId> = (0..reduces)
            .map(|_| b.add_task(type_of(reduce_phase, rng), sample_work(rng)))
            .collect();
        // Guarantee every map one output (uniform reduce), so no map is a
        // structural sink; track the edge set to avoid duplicates from
        // the weight-based pass.
        let mut edges = std::collections::HashSet::new();
        for &m in &map_ids {
            let r = reduce_ids[rng.gen_range(0..reduce_ids.len())];
            edges.insert((m, r));
            b.add_edge(m, r).expect("guaranteed map→reduce edge");
        }
        if sparse {
            // Sparse stand-in for the per-pair Bernoulli pass: each reduce
            // draws 1–4 extra inputs from the heavy-tailed map-fanout
            // distribution, so hot maps still feed most reduces but the
            // edge count stays O(maps + reduces) instead of
            // Θ(maps·reduces).
            let mut cum = weights;
            let mut acc = 0.0;
            for w in &mut cum {
                acc += *w;
                *w = acc;
            }
            for &r in &reduce_ids {
                let extra = rng.gen_range(1usize..=4);
                for _ in 0..extra {
                    let m = map_ids[pick_weighted(rng, &cum)];
                    if edges.insert((m, r)) {
                        b.add_edge(m, r).expect("map→reduce edge");
                    }
                }
            }
        } else {
            for &r in &reduce_ids {
                for (mi, &m) in map_ids.iter().enumerate() {
                    if rng.gen_bool(weights[mi]) && edges.insert((m, r)) {
                        b.add_edge(m, r).expect("map→reduce edge");
                    }
                }
                if !edges.iter().any(|&(_, rr)| rr == r) {
                    // unreachable in practice (guaranteed edges above), kept
                    // for robustness if reduce_ids were empty-fanin
                    let _ = edges.insert((map_ids[heaviest], r))
                        && b.add_edge(map_ids[heaviest], r).is_ok();
                }
            }
        }
        prev_reduces = reduce_ids;
    }

    b.build()
        .expect("IR graphs are phase-ordered, hence acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::topo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> IrParams {
        IrParams {
            iterations: 3,
            maps: 8,
            reduces: 4,
        }
    }

    #[test]
    fn task_count_is_phases_times_width() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = generate(4, &params(), Typing::Random, &mut rng);
        assert_eq!(g.num_tasks(), 3 * (8 + 4));
        assert!(topo::topological_order(&g).is_some());
    }

    #[test]
    fn every_reduce_has_at_least_one_map_input() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = generate(4, &params(), Typing::Random, &mut rng);
        // reduces of iteration it occupy ids [it*(12)+8, it*12+12)
        for it in 0..3 {
            for j in 0..4 {
                let r = TaskId::from_index(it * 12 + 8 + j);
                assert!(g.num_parents(r) >= 1, "reduce {r} has no inputs");
            }
        }
    }

    #[test]
    fn later_iterations_depend_on_earlier_reduces() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generate(4, &params(), Typing::Random, &mut rng);
        // every map of iterations ≥ 1 has at least one parent
        for it in 1..3 {
            for j in 0..8 {
                let m = TaskId::from_index(it * 12 + j);
                assert!(g.num_parents(m) >= 1, "map {m} of iter {it} is an orphan");
            }
        }
        // first-iteration maps are roots
        for j in 0..8 {
            assert_eq!(g.num_parents(TaskId::from_index(j)), 0);
        }
    }

    #[test]
    fn layered_phases_share_types_and_cycle() {
        let mut rng = StdRng::seed_from_u64(24);
        let k = 4;
        let g = generate(k, &params(), Typing::Layered, &mut rng);
        for it in 0..3 {
            for j in 0..8 {
                assert_eq!(g.rtype(TaskId::from_index(it * 12 + j)), (2 * it) % k);
            }
            for j in 0..4 {
                assert_eq!(
                    g.rtype(TaskId::from_index(it * 12 + 8 + j)),
                    (2 * it + 1) % k
                );
            }
        }
    }

    #[test]
    fn single_iteration_has_two_layers() {
        let mut rng = StdRng::seed_from_u64(25);
        let p = IrParams {
            iterations: 1,
            maps: 5,
            reduces: 2,
        };
        let g = generate(2, &p, Typing::Layered, &mut rng);
        let layers = topo::layers(&g);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].len(), 5);
        assert_eq!(layers[1].len(), 2);
    }

    #[test]
    fn sampled_params_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(26);
        for _ in 0..100 {
            let p = IrParams::sample(&mut rng, (4, 16), (2, 8));
            assert!((2..=5).contains(&p.iterations));
            assert!((4..=16).contains(&p.maps));
            assert!((2..=8).contains(&p.reduces));
        }
    }
}
