//! Resource-configuration samplers (paper §V-B, "Resource Configuration").
//!
//! * **Small** systems: 1–5 processors per type (so 4–20 total at K = 4).
//! * **Medium** systems: 10–20 per type (40–80 total at K = 4).
//! * **Large** systems (an extension beyond the paper, for the ≥1000-task
//!   sweep benchmarks): 30–60 per type.
//! * **Huge** systems (extension; cluster-scale, for the ~100k-task
//!   regime): 100–200 per type.
//!
//! The skewed-load experiments (§V-E) shrink type 1's pool to 1/5 of its
//! sampled size while leaving the others unchanged.

use fhs_sim::MachineConfig;
use rand::Rng;

/// System size class from the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SystemSize {
    /// 1–5 processors per type.
    Small,
    /// 10–20 processors per type.
    Medium,
    /// 30–60 processors per type (extension; sized for ≥1000-task jobs).
    Large,
    /// 100–200 processors per type (extension; sized for ~100k-task jobs).
    Huge,
}

impl SystemSize {
    /// The inclusive per-type processor range of this class.
    pub fn procs_range(&self) -> (usize, usize) {
        match self {
            SystemSize::Small => (1, 5),
            SystemSize::Medium => (10, 20),
            SystemSize::Large => (30, 60),
            SystemSize::Huge => (100, 200),
        }
    }

    /// The display word ("Small" / "Medium" / "Large" / "Huge").
    pub fn label(&self) -> &'static str {
        match self {
            SystemSize::Small => "Small",
            SystemSize::Medium => "Medium",
            SystemSize::Large => "Large",
            SystemSize::Huge => "Huge",
        }
    }
}

/// Samples a `K`-type machine configuration of the given class: one
/// processor count drawn uniformly from the class range and applied to
/// **every** type.
///
/// Equal pools keep the default workloads *well balanced* in
/// work-per-processor ratio, which §V-E establishes as the baseline the
/// skewed experiments deviate from; independently-sampled pools would
/// bake accidental skew into every experiment and (as §V-E shows) skew
/// compresses the very differences Figures 4–5 measure.
pub fn sample_config<R: Rng>(k: usize, size: SystemSize, rng: &mut R) -> MachineConfig {
    let (lo, hi) = size.procs_range();
    MachineConfig::uniform(k, rng.gen_range(lo..=hi))
}

/// The §V-E skew: type 1 (index 0) shrinks to ⌈P₁/5⌉ processors.
pub fn skew(config: &MachineConfig) -> MachineConfig {
    config.with_type_shrunk(0, 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_and_medium_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let c = sample_config(4, SystemSize::Small, &mut rng);
            assert_eq!(c.num_types(), 4);
            assert!(c.procs_per_type().iter().all(|&p| (1..=5).contains(&p)));
            let c = sample_config(4, SystemSize::Medium, &mut rng);
            assert!(c.procs_per_type().iter().all(|&p| (10..=20).contains(&p)));
        }
    }

    #[test]
    fn pools_are_balanced_across_types() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let c = sample_config(4, SystemSize::Medium, &mut rng);
            let first = c.procs(0);
            assert!((0..4).all(|a| c.procs(a) == first));
        }
    }

    #[test]
    fn skew_shrinks_only_type_one() {
        let c = MachineConfig::new(vec![15, 12, 18]);
        let s = skew(&c);
        assert_eq!(s.procs_per_type(), &[3, 12, 18]);
    }

    #[test]
    fn skew_never_zeroes_a_pool() {
        let c = MachineConfig::new(vec![2, 2]);
        assert_eq!(skew(&c).procs(0), 1);
    }

    #[test]
    fn labels() {
        assert_eq!(SystemSize::Small.label(), "Small");
        assert_eq!(SystemSize::Medium.label(), "Medium");
        assert_eq!(SystemSize::Huge.label(), "Huge");
    }

    #[test]
    fn huge_range_scales_past_large() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let c = sample_config(4, SystemSize::Huge, &mut rng);
            assert!(c.procs_per_type().iter().all(|&p| (100..=200).contains(&p)));
        }
    }
}
