//! Property tests over the workload generators: structural invariants
//! that must hold for every seed, size, and typing discipline.

use fhs_workloads::adversarial::{self, AdversarialParams};
use fhs_workloads::resources::SystemSize;
use fhs_workloads::{Family, Typing, WorkloadSpec, WORK_RANGE};
use kdag::topo;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        prop_oneof![Just(Family::Ep), Just(Family::Tree), Just(Family::Ir)],
        prop_oneof![Just(Typing::Layered), Just(Typing::Random)],
        prop_oneof![Just(SystemSize::Small), Just(SystemSize::Medium)],
        1usize..=6,
        any::<bool>(),
    )
        .prop_map(|(family, typing, size, k, skewed)| {
            let spec = WorkloadSpec::new(family, typing, size, k);
            if skewed {
                spec.skewed()
            } else {
                spec
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_instance_is_a_valid_kdag(spec in arb_spec(), seed in any::<u64>()) {
        let (job, cfg) = spec.sample(seed);
        prop_assert!(job.num_tasks() > 0);
        prop_assert_eq!(job.num_types(), spec.k);
        prop_assert_eq!(cfg.num_types(), spec.k);
        prop_assert!(topo::topological_order(&job).is_some());
        // works in the documented range
        for v in job.tasks() {
            prop_assert!(WORK_RANGE.contains(&job.work(v)));
        }
        // processor counts in the size class (type 0 may be skewed down)
        let (lo, hi) = spec.size.procs_range();
        for alpha in 0..spec.k {
            let p = cfg.procs(alpha);
            if alpha == 0 && spec.skewed {
                prop_assert!(p >= 1 && p <= hi);
            } else {
                prop_assert!((lo..=hi).contains(&p), "type {alpha}: {p}");
            }
        }
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_seed(spec in arb_spec(), seed in any::<u64>()) {
        let (a, ca) = spec.sample(seed);
        let (b, cb) = spec.sample(seed);
        prop_assert_eq!(ca, cb);
        prop_assert_eq!(&a, &b);
    }

    #[test]
    fn layered_ep_branches_traverse_types_in_order(seed in any::<u64>(), k in 2usize..=5) {
        let spec = WorkloadSpec::new(Family::Ep, Typing::Layered, SystemSize::Small, k);
        let (job, _) = spec.sample(seed);
        for root in job.roots() {
            let mut cur = root;
            let mut last_type = job.rtype(cur);
            prop_assert_eq!(last_type, 0, "branches start at type 0");
            while let Some(&c) = job.children(cur).first() {
                let t = job.rtype(c);
                prop_assert!(t == last_type || t == last_type + 1);
                last_type = t;
                cur = c;
            }
            prop_assert_eq!(last_type, k - 1, "branches end at type K-1");
        }
    }

    #[test]
    fn trees_are_trees(seed in any::<u64>()) {
        let spec = WorkloadSpec::new(Family::Tree, Typing::Random, SystemSize::Small, 3);
        let (job, _) = spec.sample(seed);
        prop_assert_eq!(job.roots().count(), 1);
        prop_assert_eq!(job.num_edges(), job.num_tasks() - 1);
    }

    #[test]
    fn ir_roots_are_maps_that_feed_reduces(seed in any::<u64>()) {
        // Roots are exactly the first iteration's maps, and the generator
        // guarantees every map at least one outgoing edge — so no root is
        // a sink, and (layered) every root has the phase-0 type.
        let spec = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Small, 4);
        let (job, _) = spec.sample(seed);
        let mut roots = 0;
        for v in job.roots() {
            roots += 1;
            prop_assert!(job.num_children(v) > 0, "root map {v} is a sink");
            prop_assert_eq!(job.rtype(v), 0, "first map phase is type 0");
        }
        prop_assert!(roots > 0);
        // depth alternates phases: children of roots are reduces (type 1)
        for v in job.roots() {
            for &c in job.children(v) {
                prop_assert_eq!(job.rtype(c), 1);
            }
        }
    }

    #[test]
    fn adversarial_counts_and_span(
        k in 1usize..=4,
        p in 1usize..=3,
        m in 1usize..=4,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let params = AdversarialParams::new(vec![p; k], m);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let job = adversarial::generate(&params, &mut rng);
        for alpha in 0..k {
            prop_assert_eq!(job.num_tasks_of_type(alpha), p * p * m);
        }
        prop_assert_eq!(kdag::metrics::span(&job), params.optimal_makespan());
        prop_assert_eq!(
            kdag::metrics::lower_bound(&job, &params.procs),
            params.optimal_makespan()
        );
    }
}
