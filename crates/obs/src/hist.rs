//! Log-bucketed histograms (HDR-style): fixed-size bucket arrays, no
//! allocation after construction, lossless merge.
//!
//! Values are binned with 3 sub-bucket bits: values below 8 are exact;
//! above, each power-of-two range is split into 8 sub-buckets, so every
//! recorded value is attributed with ≤ 12.5% relative error across the
//! whole `u64` range. That yields [`BUCKETS`] = 496 buckets — a 4 KB
//! array — which is why a [`LogHist`] can sit inside the engine
//! [`Recorder`](crate::Recorder) and be bumped from the zero-allocation
//! epoch loop: recording is one index computation and one `+= 1`.
//!
//! Two forms exist:
//!
//! * [`LogHist`] — the dense recording form. Lives in a workspace,
//!   `reset()` per run (capacity retained).
//! * [`HistSnapshot`] — the sparse, owned form (non-zero buckets only),
//!   cheap to ship out of a run and to merge across pool workers and
//!   sweep instances. Merging is exact: bucket counts add, so the merged
//!   percentiles equal the percentiles of the concatenated samples (up to
//!   bucket resolution).

/// Sub-bucket bits: each power-of-two range splits into `2^3 = 8` buckets.
const SUB_BITS: u32 = 3;
/// Values below `2^(SUB_BITS)` are recorded exactly.
const EXACT: u64 = 1 << SUB_BITS;

/// Total bucket count covering all of `u64`.
pub const BUCKETS: usize = 496;

/// Bucket index for a value (monotonic in `v`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        v as usize
    } else {
        // Highest set bit m ≥ 3; 8 sub-buckets per [2^m, 2^{m+1}) range.
        let m = 63 - v.leading_zeros() as u64;
        (8 * (m - 2) + ((v >> (m - 3)) & 7)) as usize
    }
}

/// Inclusive upper edge of a bucket: the largest value mapping into it.
/// Percentiles report this edge, so they never understate a quantile.
pub fn bucket_high(idx: usize) -> u64 {
    if idx < EXACT as usize {
        idx as u64
    } else {
        let m = (idx as u64) / 8 + 2;
        let sub = (idx as u64) % 8;
        // Low edge of the next sub-bucket, minus one. The top bucket's
        // "next low edge" is 2^64, so the wrapping arithmetic lands on
        // `u64::MAX` exactly.
        (1u64 << m)
            .wrapping_add((sub + 1) << (m - 3))
            .wrapping_sub(1)
    }
}

/// Dense log-bucketed histogram. `reset()` sizes the bucket array once;
/// after that, recording and re-resetting never allocate.
#[derive(Clone, Debug, Default)]
pub struct LogHist {
    counts: Vec<u64>,
    count: u64,
    max: u64,
    sum: u64,
}

impl LogHist {
    /// An empty, unsized histogram (no buckets allocated yet).
    pub fn new() -> Self {
        LogHist::default()
    }

    /// Clears all counts, allocating the bucket array on first use and
    /// retaining it afterwards.
    pub fn reset(&mut self) {
        self.counts.clear();
        self.counts.resize(BUCKETS, 0);
        self.count = 0;
        self.max = 0;
        self.sum = 0;
    }

    /// Records one value. Must be preceded by [`reset`](LogHist::reset)
    /// at least once; allocation-free afterwards.
    #[inline]
    pub fn record(&mut self, v: u64) {
        debug_assert_eq!(self.counts.len(), BUCKETS, "LogHist::reset not called");
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (exact, not bucketed); 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of recorded values (exact, wrapping on `u64` overflow —
    /// wrapping keeps merges order-independent).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Merges another histogram in (exact: per-bucket count sums). Handles
    /// unsized operands: merging an empty histogram is a no-op, and an
    /// unsized receiver is sized on first merge.
    pub fn merge(&mut self, other: &LogHist) {
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            self.reset();
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The sparse snapshot of the current counts.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            max: self.max,
            sum: self.sum,
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (i as u16, c))
                .collect(),
        }
    }
}

/// Sparse histogram: only the non-zero buckets, sorted by bucket index.
/// The mergeable/reportable form shipped across pool workers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total recorded values.
    pub count: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Sum of recorded values (wrapping on overflow; see
    /// [`LogHist::sum`]).
    pub sum: u64,
    /// `(bucket index, count)` pairs, ascending by index.
    buckets: Vec<(u16, u64)>,
}

impl HistSnapshot {
    /// Reassembles a snapshot from serialized parts (the inverse of
    /// reading `count`/`max`/`sum`/[`buckets`](HistSnapshot::buckets) —
    /// used by the shard-merge tool). `buckets` must be ascending by
    /// index with non-zero counts summing to `count`; debug-asserted.
    pub fn from_parts(count: u64, max: u64, sum: u64, buckets: Vec<(u16, u64)>) -> HistSnapshot {
        debug_assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "unsorted");
        debug_assert!(buckets
            .iter()
            .all(|&(i, c)| (i as usize) < BUCKETS && c > 0));
        debug_assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), count);
        HistSnapshot {
            count,
            max,
            sum,
            buckets,
        }
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The non-zero `(bucket index, count)` pairs, ascending.
    pub fn buckets(&self) -> &[(u16, u64)] {
        &self.buckets
    }

    /// Merges `other` into `self` (bucket counts add; max takes the max).
    /// Exact and order-independent — merging per-run snapshots in any
    /// grouping yields the histogram of all samples.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper edge; the exact
    /// maximum for `q = 1.0` (or any rank landing in the last non-empty
    /// bucket). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank (ceil) definition on 1-based ranks.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &(idx, c)) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // The true max is known exactly; use it for the top bucket
                // so p100 is never inflated past an observed value.
                if i + 1 == self.buckets.len() {
                    return self.max;
                }
                return bucket_high(idx as usize);
            }
        }
        self.max
    }

    /// Convenience: `(p50, p90, p99, max)`.
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn bucket_index_is_monotonic_and_bounded() {
        let mut prev = 0usize;
        let mut v = 0u64;
        while v < 1 << 40 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            assert!(idx < BUCKETS);
            prev = idx;
            v = (v * 2).max(v + 1);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn top_bucket_high_edge_is_u64_max() {
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_high_is_the_largest_member() {
        for idx in 0..BUCKETS - 1 {
            let hi = bucket_high(idx);
            assert_eq!(bucket_index(hi), idx, "high edge of {idx} maps elsewhere");
            assert_eq!(bucket_index(hi + 1), idx + 1, "edge {idx} not tight");
        }
    }

    #[test]
    fn relative_error_is_within_one_eighth() {
        for &v in &[9u64, 100, 1_000, 65_535, 1 << 30, (1 << 50) + 12345] {
            let hi = bucket_high(bucket_index(v));
            assert!(hi >= v);
            assert!(
                (hi - v) as f64 <= v as f64 / 8.0 + 1.0,
                "error too big at {v}"
            );
        }
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = LogHist::new();
        h.reset();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        assert!((440..=560).contains(&p50), "p50 {p50} too far from 500");
        let p99 = s.quantile(0.99);
        assert!((980..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn reset_clears_but_keeps_capacity() {
        let mut h = LogHist::new();
        h.reset();
        h.record(42);
        let cap = h.counts.capacity();
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.counts.capacity(), cap);
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn snapshot_merge_equals_concatenated_recording() {
        let mut a = LogHist::new();
        let mut b = LogHist::new();
        let mut both = LogHist::new();
        a.reset();
        b.reset();
        both.reset();
        for v in [3u64, 9, 9, 17, 100, 1 << 20] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 9, 55, 1 << 33] {
            b.record(v);
            both.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, both.snapshot());
    }

    #[test]
    fn merge_is_order_independent() {
        let snaps: Vec<HistSnapshot> = (0..4)
            .map(|i| {
                let mut h = LogHist::new();
                h.reset();
                for v in 0..50u64 {
                    h.record(v * (i + 1));
                }
                h.snapshot()
            })
            .collect();
        let mut fwd = HistSnapshot::default();
        for s in &snaps {
            fwd.merge(s);
        }
        let mut rev = HistSnapshot::default();
        for s in snaps.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = HistSnapshot::default();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.percentiles(), (0, 0, 0, 0));
        assert_eq!(s.sum, 0);
    }

    #[test]
    fn sum_tracks_recorded_values_and_merges() {
        let mut a = LogHist::new();
        a.reset();
        for v in [5u64, 7, 100] {
            a.record(v);
        }
        assert_eq!(a.sum(), 112);
        let mut b = LogHist::new();
        b.reset();
        b.record(8);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.sum, 120);
        a.merge(&b);
        assert_eq!(a.sum(), 120);
        a.reset();
        assert_eq!(a.sum(), 0);
    }
}
