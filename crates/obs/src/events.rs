//! Structured event trace: bounded, epoch-stamped engine events with
//! Chrome-trace/Perfetto JSON and JSONL exporters.
//!
//! Events are recorded into a fixed-capacity [`EventBuf`]: the first
//! `cap` events are kept and the rest are counted in `dropped` (first-N
//! bounding — for `Huge` workloads a trace prefix is what fits in memory
//! and what a human actually inspects; the drop counter makes the
//! truncation explicit). The buffer is sized once and retained across
//! runs, preserving the engine's zero-allocation steady state.
//!
//! Sim time is exported as Chrome-trace microseconds verbatim (1 tick =
//! 1 µs), so Perfetto's timeline shows sim ticks directly. Each sweep
//! cell becomes one Chrome `pid` with named thread lanes: lane 0 is the
//! engine, lanes `1..=k` are per-type ready queues, and the remaining
//! lanes are individual processors (only meaningful for non-preemptive
//! runs, where a task occupies one processor for its whole span).

/// What happened. Discriminants are stable (used by the JSONL exporter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Engine run began (`arg` = 1 when the workspace was warm-reused).
    RunBegin = 0,
    /// Engine run finished (`arg` = makespan).
    RunEnd = 1,
    /// Policy per-run initialization (cold artifact build or reuse;
    /// `arg` = 1 when per-instance artifacts were reused).
    PolicyInit = 2,
    /// One scheduling epoch decided (`arg` = tasks assigned this epoch).
    Epoch = 3,
    /// Task became ready (`task`, `rtype`; queue lane).
    Release = 4,
    /// Task started on a processor (`task`, `rtype`, `arg` = remaining
    /// work; begins a span on a processor lane for non-preemptive runs).
    Start = 5,
    /// Task completed (`task`, `rtype`; ends the processor span for
    /// non-preemptive runs, instant on the queue lane for preemptive).
    Complete = 6,
    /// Workspace steady-state reuse event (`arg` = reuse count so far).
    WorkspaceReuse = 7,
}

impl EventKind {
    /// Stable lowercase name (JSONL `kind` field, Chrome event name).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RunBegin => "run_begin",
            EventKind::RunEnd => "run_end",
            EventKind::PolicyInit => "policy_init",
            EventKind::Epoch => "epoch",
            EventKind::Release => "release",
            EventKind::Start => "start",
            EventKind::Complete => "complete",
            EventKind::WorkspaceReuse => "workspace_reuse",
        }
    }
}

/// Sentinel for "no task" / "no type" in [`Event`] fields.
pub const NONE: u32 = u32::MAX;

/// One trace event. Plain integers only: the recorder sits below the
/// simulator in the dependency graph and the engine precomputes lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Sim time (engine ticks).
    pub t: u64,
    /// Scheduling epoch counter at record time.
    pub epoch: u64,
    /// Task id, or [`NONE`].
    pub task: u32,
    /// Resource type, or [`NONE`].
    pub rtype: u32,
    /// Display lane: 0 = engine, `1..=k` = per-type ready queues,
    /// `1+k..` = processors.
    pub lane: u32,
    /// Kind-specific payload (see [`EventKind`]).
    pub arg: u64,
}

/// Fixed-capacity first-N event buffer with an overflow counter.
#[derive(Clone, Debug, Default)]
pub struct EventBuf {
    events: Vec<Event>,
    cap: usize,
    dropped: u64,
}

impl EventBuf {
    /// An empty, capacity-0 buffer (records nothing until `begin`).
    pub fn new() -> Self {
        EventBuf::default()
    }

    /// Clears for a new run with capacity `cap`. The backing storage is
    /// reserved here (outside the engine's metered epoch loop) and
    /// retained across runs.
    pub fn begin(&mut self, cap: usize) {
        self.events.clear();
        self.cap = cap;
        if self.events.capacity() < cap {
            self.events.reserve_exact(cap - self.events.capacity());
        }
        self.dropped = 0;
    }

    /// Records one event, or bumps the drop counter once full. Never
    /// allocates (capacity was reserved by `begin`).
    #[inline]
    pub fn push(&mut self, ev: Event) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Events recorded so far (at most `cap`).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events that did not fit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// One sweep cell's trace: the events of a representative run plus the
/// machine shape needed to lay out lanes.
#[derive(Clone, Debug)]
pub struct TraceCell {
    /// Chrome-trace process id (one per cell).
    pub pid: u32,
    /// Cell label, e.g. `"MQB/np"` (becomes the Chrome process name).
    pub name: String,
    /// Number of resource types.
    pub k: u32,
    /// Processors per type (defines processor-lane layout).
    pub procs: Vec<u32>,
    /// The recorded events (first-N of the run).
    pub events: Vec<Event>,
    /// Events dropped past the cap.
    pub dropped: u64,
}

fn push_common(out: &mut String, ev: &Event, pid: u32) {
    use std::fmt::Write;
    let _ = write!(
        out,
        r#""pid":{},"tid":{},"ts":{},"args":{{"epoch":{}"#,
        pid, ev.lane, ev.t, ev.epoch
    );
    if ev.task != NONE {
        let _ = write!(out, r#","task":{}"#, ev.task);
    }
    if ev.rtype != NONE {
        let _ = write!(out, r#","type":{}"#, ev.rtype);
    }
    let _ = write!(out, r#","arg":{}}}"#, ev.arg);
}

/// Renders cells as a Chrome-trace (Perfetto-loadable) JSON document.
///
/// Non-preemptive `Start`/`Complete` pairs become duration (`B`/`E`)
/// spans on processor lanes; everything else is an instant (`i`). Lane
/// metadata names each `tid`. Times are sim ticks exported as µs.
pub fn chrome_trace_json(cells: &[TraceCell]) -> String {
    use std::fmt::Write;
    fn sep(out: &mut String, first: &mut bool) {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
    }
    fn lane_meta(out: &mut String, first: &mut bool, pid: u32, tid: u32, name: &str) {
        sep(out, first);
        let _ = write!(
            out,
            r#"{{"name":"thread_name","ph":"M","pid":{},"tid":{},"args":{{"name":{}}}}}"#,
            pid,
            tid,
            crate::json::json_string(name)
        );
    }
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for cell in cells {
        // Process + lane metadata.
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            r#"{{"name":"process_name","ph":"M","pid":{},"args":{{"name":{}}}}}"#,
            cell.pid,
            crate::json::json_string(&cell.name)
        );
        lane_meta(&mut out, &mut first, cell.pid, 0, "engine");
        let mut lane = 1u32;
        for alpha in 0..cell.k {
            lane_meta(
                &mut out,
                &mut first,
                cell.pid,
                lane,
                &format!("queue[{alpha}]"),
            );
            lane += 1;
        }
        for (alpha, &p) in cell.procs.iter().enumerate() {
            for i in 0..p {
                lane_meta(
                    &mut out,
                    &mut first,
                    cell.pid,
                    lane,
                    &format!("proc[{alpha}][{i}]"),
                );
                lane += 1;
            }
        }
        for ev in &cell.events {
            sep(&mut out, &mut first);
            let (ph, name): (&str, String) = match ev.kind {
                EventKind::Start if ev.lane > cell.k => ("B", format!("task {}", ev.task)),
                EventKind::Complete if ev.lane > cell.k => ("E", format!("task {}", ev.task)),
                k => ("i", k.name().to_string()),
            };
            let _ = write!(
                out,
                r#"{{"name":{},"ph":"{}","#,
                crate::json::json_string(&name),
                ph
            );
            if ph == "i" {
                out.push_str(r#""s":"t","#);
            }
            push_common(&mut out, ev, cell.pid);
            out.push('}');
        }
        if cell.dropped > 0 {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                r#"{{"name":"trace truncated: {} events dropped","ph":"i","s":"p","pid":{},"tid":0,"ts":{},"args":{{}}}}"#,
                cell.dropped,
                cell.pid,
                cell.events.last().map_or(0, |e| e.t)
            );
        }
    }
    out.push_str("]}");
    out
}

/// Renders cells as JSON Lines: one self-contained object per event,
/// prefixed by one header object per cell (`{"cell":...}`).
pub fn events_jsonl(cells: &[TraceCell]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for cell in cells {
        let _ = write!(
            out,
            r#"{{"cell":{},"pid":{},"k":{},"procs":["#,
            crate::json::json_string(&cell.name),
            cell.pid,
            cell.k
        );
        for (i, p) in cell.procs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{p}");
        }
        let _ = writeln!(
            out,
            r#"],"events":{},"dropped":{}}}"#,
            cell.events.len(),
            cell.dropped
        );
        for ev in &cell.events {
            let _ = write!(
                out,
                r#"{{"pid":{},"kind":"{}","t":{},"epoch":{},"lane":{}"#,
                cell.pid,
                ev.kind.name(),
                ev.t,
                ev.epoch,
                ev.lane
            );
            if ev.task != NONE {
                let _ = write!(out, r#","task":{}"#, ev.task);
            }
            if ev.rtype != NONE {
                let _ = write!(out, r#","type":{}"#, ev.rtype);
            }
            let _ = writeln!(out, r#","arg":{}}}"#, ev.arg);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, t: u64, lane: u32) -> Event {
        Event {
            kind,
            t,
            epoch: 1,
            task: if matches!(
                kind,
                EventKind::Start | EventKind::Complete | EventKind::Release
            ) {
                7
            } else {
                NONE
            },
            rtype: 0,
            lane,
            arg: 3,
        }
    }

    fn tiny_cell() -> TraceCell {
        TraceCell {
            pid: 1,
            name: "MQB/np".into(),
            k: 1,
            procs: vec![2],
            events: vec![
                ev(EventKind::RunBegin, 0, 0),
                ev(EventKind::Release, 0, 1),
                ev(EventKind::Start, 0, 2),
                ev(EventKind::Complete, 3, 2),
                ev(EventKind::RunEnd, 3, 0),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn buf_caps_and_counts_drops() {
        let mut b = EventBuf::new();
        b.begin(2);
        for i in 0..5 {
            b.push(ev(EventKind::Epoch, i, 0));
        }
        assert_eq!(b.events().len(), 2);
        assert_eq!(b.dropped(), 3);
        b.begin(2);
        assert!(b.events().is_empty());
        assert_eq!(b.dropped(), 0);
    }

    #[test]
    fn buf_begin_reserves_once() {
        let mut b = EventBuf::new();
        b.begin(8);
        let cap = b.events.capacity();
        assert!(cap >= 8);
        b.begin(8);
        assert_eq!(b.events.capacity(), cap);
    }

    #[test]
    fn chrome_trace_parses_and_balances_spans() {
        let doc = chrome_trace_json(&[tiny_cell()]);
        let v = crate::json::parse(&doc).expect("valid JSON");
        let evs = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let mut depth = 0i64;
        for e in evs {
            match e.get("ph").and_then(|p| p.as_str()) {
                Some("B") => depth += 1,
                Some("E") => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "E before B");
        }
        assert_eq!(depth, 0, "unbalanced B/E spans");
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let doc = events_jsonl(&[tiny_cell()]);
        let mut n = 0;
        for line in doc.lines() {
            let v = crate::json::parse(line).expect("each line is valid JSON");
            assert!(v.get("cell").is_some() || v.get("kind").is_some());
            n += 1;
        }
        assert_eq!(n, 6); // 1 header + 5 events
    }

    #[test]
    fn truncation_is_flagged_in_chrome_trace() {
        let mut cell = tiny_cell();
        cell.dropped = 12;
        let doc = chrome_trace_json(&[cell]);
        assert!(doc.contains("12 events dropped"));
        crate::json::parse(&doc).expect("still valid JSON");
    }
}
