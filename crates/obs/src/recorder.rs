//! The [`Recorder`]: all observability state for one engine run, owned
//! by the simulator's `Workspace` so the warm epoch loop stays
//! allocation-free.
//!
//! The engine calls the `record_*`/`timeline_set`/event methods from
//! inside its metered loop; every one of them is an early-return no-op
//! when the corresponding [`ObsConfig`] channel is off, so an
//! unconfigured recorder costs a branch per call site. All storage is
//! sized in [`Recorder::begin_run`] (which the engine invokes *before*
//! sampling its allocation probe) and retained across runs.
//!
//! Recording is observe-only by construction: the recorder exposes no
//! state the engine reads back, so an instrumented run is bit-identical
//! to an uninstrumented one (pinned by proptests in `fhs-core`).

use crate::events::{Event, EventBuf, EventKind, NONE};
use crate::hist::{HistSnapshot, LogHist};
use crate::timeline::{UtilTimeline, UtilizationReport};

/// Which observability channels to record. `Default` is everything off
/// (the recorder no-ops).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record per-type utilization timelines.
    pub utilization: bool,
    /// Record wall-clock latency histograms (assign latency, epoch
    /// duration) and the ready-queue depth histogram.
    pub latency: bool,
    /// Record the structured event trace.
    pub events: bool,
    /// Event capacity (first-N bound); only meaningful with `events`.
    pub event_cap: usize,
}

impl ObsConfig {
    /// Default event capacity when tracing is requested without an
    /// explicit bound: enough for a Large instance's full trace while
    /// keeping a Huge run's prefix to a few MB.
    pub const DEFAULT_EVENT_CAP: usize = 1 << 16;

    /// `true` when any channel is on.
    pub fn any(&self) -> bool {
        self.utilization || self.latency || self.events
    }

    /// Everything on (used by tests and the overhead bench).
    pub fn all() -> Self {
        ObsConfig {
            utilization: true,
            latency: true,
            events: true,
            event_cap: Self::DEFAULT_EVENT_CAP,
        }
    }
}

/// Per-run observability recorder. Lives in the simulator `Workspace`.
#[derive(Debug, Default)]
pub struct Recorder {
    cfg: ObsConfig,
    timeline: UtilTimeline,
    assign_ns: LogHist,
    epoch_ns: LogHist,
    queue_depth: LogHist,
    events: EventBuf,
    /// Processors per type, captured at `begin_run` (for the report and
    /// processor-lane layout).
    procs: Vec<u32>,
    /// Lane base per type: processor `(alpha, p)` renders on lane
    /// `1 + k + proc_base[alpha] + p`.
    proc_base: Vec<u32>,
}

impl Recorder {
    /// A recorder with everything off.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// The active configuration.
    pub fn config(&self) -> ObsConfig {
        self.cfg
    }

    /// `true` when the event channel is live (callers can skip building
    /// event payloads otherwise).
    #[inline]
    pub fn events_on(&self) -> bool {
        self.cfg.events
    }

    /// `true` when wall-clock latency recording is live (callers can
    /// skip `Instant::now()` otherwise).
    #[inline]
    pub fn latency_on(&self) -> bool {
        self.cfg.latency
    }

    /// `true` when utilization timelines are live.
    #[inline]
    pub fn utilization_on(&self) -> bool {
        self.cfg.utilization
    }

    /// Re-arms the recorder for a run over a machine with
    /// `procs[alpha]` processors of each type. All storage is sized
    /// here; the engine must call this before sampling its allocation
    /// probe. With a default (`any() == false`) config this clears
    /// nothing and the recorder stays inert.
    pub fn begin_run(&mut self, cfg: ObsConfig, procs: &[usize], reused: bool) {
        self.cfg = cfg;
        if !cfg.any() {
            return;
        }
        let k = procs.len();
        self.procs.clear();
        self.proc_base.clear();
        let mut base = 0u32;
        for &p in procs {
            self.procs.push(p as u32);
            self.proc_base.push(base);
            base += p as u32;
        }
        if cfg.utilization {
            self.timeline.begin(k);
        }
        if cfg.latency {
            self.assign_ns.reset();
            self.epoch_ns.reset();
            self.queue_depth.reset();
        }
        if cfg.events {
            self.events.begin(if cfg.event_cap == 0 {
                ObsConfig::DEFAULT_EVENT_CAP
            } else {
                cfg.event_cap
            });
            self.events.push(Event {
                kind: EventKind::RunBegin,
                t: 0,
                epoch: 0,
                task: NONE,
                rtype: NONE,
                lane: 0,
                arg: reused as u64,
            });
        }
    }

    /// Number of types the recorder was armed for.
    pub fn num_types(&self) -> usize {
        self.procs.len()
    }

    /// Lane of type `alpha`'s ready queue.
    #[inline]
    fn queue_lane(&self, alpha: usize) -> u32 {
        1 + alpha as u32
    }

    /// Lane of processor `p` of type `alpha`.
    #[inline]
    fn proc_lane(&self, alpha: usize, p: usize) -> u32 {
        1 + self.procs.len() as u32 + self.proc_base[alpha] + p as u32
    }

    /// Records one assign-latency sample (nanoseconds).
    #[inline]
    pub fn record_assign_ns(&mut self, ns: u64) {
        if self.cfg.latency {
            self.assign_ns.record(ns);
        }
    }

    /// Records one epoch-duration sample (nanoseconds).
    #[inline]
    pub fn record_epoch_ns(&mut self, ns: u64) {
        if self.cfg.latency {
            self.epoch_ns.record(ns);
        }
    }

    /// Records one ready-queue depth sample.
    #[inline]
    pub fn record_depth(&mut self, depth: u64) {
        if self.cfg.latency {
            self.queue_depth.record(depth);
        }
    }

    /// Records that type `alpha` has `busy` busy processors from sim
    /// time `t`.
    #[inline]
    pub fn timeline_set(&mut self, alpha: usize, t: u64, busy: u32) {
        if self.cfg.utilization {
            self.timeline.set(alpha, t, busy);
        }
    }

    /// Records a policy-init instant (`reused`: per-instance artifacts
    /// were warm).
    #[inline]
    pub fn policy_init(&mut self, reused: bool) {
        if self.cfg.events {
            self.events.push(Event {
                kind: EventKind::PolicyInit,
                t: 0,
                epoch: 0,
                task: NONE,
                rtype: NONE,
                lane: 0,
                arg: reused as u64,
            });
        }
    }

    /// Records a workspace steady-state reuse instant.
    #[inline]
    pub fn workspace_reuse(&mut self, reuses: u64) {
        if self.cfg.events {
            self.events.push(Event {
                kind: EventKind::WorkspaceReuse,
                t: 0,
                epoch: 0,
                task: NONE,
                rtype: NONE,
                lane: 0,
                arg: reuses,
            });
        }
    }

    /// Records an epoch instant (`assigned`: tasks assigned this epoch).
    #[inline]
    pub fn epoch_event(&mut self, t: u64, epoch: u64, assigned: u64) {
        if self.cfg.events {
            self.events.push(Event {
                kind: EventKind::Epoch,
                t,
                epoch,
                task: NONE,
                rtype: NONE,
                lane: 0,
                arg: assigned,
            });
        }
    }

    /// Records a task-release instant on the type's queue lane.
    #[inline]
    pub fn release(&mut self, t: u64, epoch: u64, task: u32, alpha: usize) {
        if self.cfg.events {
            self.events.push(Event {
                kind: EventKind::Release,
                t,
                epoch,
                task,
                rtype: alpha as u32,
                lane: self.queue_lane(alpha),
                arg: 0,
            });
        }
    }

    /// Records a task start. With `proc = Some(p)` (non-preemptive) this
    /// begins a span on the processor lane; otherwise it is an instant
    /// on the queue lane. `arg` carries the remaining work.
    #[inline]
    pub fn start(
        &mut self,
        t: u64,
        epoch: u64,
        task: u32,
        alpha: usize,
        proc: Option<usize>,
        rem: u64,
    ) {
        if self.cfg.events {
            let lane = match proc {
                Some(p) => self.proc_lane(alpha, p),
                None => self.queue_lane(alpha),
            };
            self.events.push(Event {
                kind: EventKind::Start,
                t,
                epoch,
                task,
                rtype: alpha as u32,
                lane,
                arg: rem,
            });
        }
    }

    /// Records a task completion. With `proc = Some(p)` this ends the
    /// processor-lane span opened by `start`.
    #[inline]
    pub fn complete(&mut self, t: u64, epoch: u64, task: u32, alpha: usize, proc: Option<usize>) {
        if self.cfg.events {
            let lane = match proc {
                Some(p) => self.proc_lane(alpha, p),
                None => self.queue_lane(alpha),
            };
            self.events.push(Event {
                kind: EventKind::Complete,
                t,
                epoch,
                task,
                rtype: alpha as u32,
                lane,
                arg: 0,
            });
        }
    }

    /// Records the run-end instant (`arg` = makespan).
    #[inline]
    pub fn run_end(&mut self, t: u64, epoch: u64) {
        if self.cfg.events {
            self.events.push(Event {
                kind: EventKind::RunEnd,
                t,
                epoch,
                task: NONE,
                rtype: NONE,
                lane: 0,
                arg: t,
            });
        }
    }

    /// Extracts the run's observability payload and disarms the
    /// recorder. Returns `None` when nothing was configured. Called by
    /// the engine *after* its allocation probe sample, so the clones
    /// here are unmetered.
    pub fn take_run(&mut self, makespan: u64) -> Option<Box<RunObs>> {
        if !self.cfg.any() {
            return None;
        }
        let cfg = self.cfg;
        self.cfg = ObsConfig::default();
        Some(Box::new(RunObs {
            util: cfg
                .utilization
                .then(|| self.timeline.report(&self.procs, makespan)),
            assign_ns: if cfg.latency {
                self.assign_ns.snapshot()
            } else {
                HistSnapshot::default()
            },
            epoch_ns: if cfg.latency {
                self.epoch_ns.snapshot()
            } else {
                HistSnapshot::default()
            },
            queue_depth: if cfg.latency {
                self.queue_depth.snapshot()
            } else {
                HistSnapshot::default()
            },
            events: if cfg.events {
                self.events.events().to_vec()
            } else {
                Vec::new()
            },
            events_dropped: if cfg.events { self.events.dropped() } else { 0 },
            k: self.procs.len() as u32,
            procs: self.procs.clone(),
        }))
    }
}

/// One run's extracted observability payload.
#[derive(Clone, Debug)]
pub struct RunObs {
    /// Per-type utilization report (when configured).
    pub util: Option<UtilizationReport>,
    /// Assign-latency histogram (ns), empty when latency was off.
    pub assign_ns: HistSnapshot,
    /// Epoch wall-duration histogram (ns), empty when latency was off.
    pub epoch_ns: HistSnapshot,
    /// Ready-queue depth histogram (per-type samples each epoch), empty
    /// when latency was off.
    pub queue_depth: HistSnapshot,
    /// Recorded events (first-N of the run), empty when tracing was off.
    pub events: Vec<Event>,
    /// Events dropped past the cap.
    pub events_dropped: u64,
    /// Number of resource types.
    pub k: u32,
    /// Processors per type.
    pub procs: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_recorder_is_inert() {
        let mut r = Recorder::new();
        r.begin_run(ObsConfig::default(), &[2, 2], false);
        r.record_assign_ns(5);
        r.timeline_set(0, 0, 1);
        r.release(0, 1, 3, 0);
        assert!(r.take_run(10).is_none());
    }

    #[test]
    fn full_recording_round_trip() {
        let mut r = Recorder::new();
        r.begin_run(ObsConfig::all(), &[2, 1], true);
        r.policy_init(false);
        r.record_depth(3);
        r.record_assign_ns(100);
        r.timeline_set(0, 0, 2);
        r.release(0, 1, 5, 1);
        r.start(0, 1, 5, 1, Some(0), 7);
        r.complete(7, 2, 5, 1, Some(0));
        r.timeline_set(0, 7, 0);
        r.run_end(7, 2);
        let obs = r.take_run(7).expect("payload");
        let util = obs.util.as_ref().expect("util report");
        assert_eq!(util.per_type.len(), 2);
        assert_eq!(util.per_type[0].busy, 14);
        assert_eq!(obs.assign_ns.count, 1);
        assert_eq!(obs.queue_depth.count, 1);
        // RunBegin + PolicyInit + Release + Start + Complete + RunEnd
        assert_eq!(obs.events.len(), 6);
        assert_eq!(obs.events[0].kind, EventKind::RunBegin);
        assert_eq!(obs.events[0].arg, 1); // reused
                                          // Start landed on type-1 processor lane: 1 + k(2) + base(2) + 0.
        assert_eq!(obs.events[3].lane, 5);
        // take_run disarms.
        assert!(r.take_run(7).is_none());
    }

    #[test]
    fn event_cap_zero_uses_default() {
        let mut r = Recorder::new();
        let cfg = ObsConfig {
            events: true,
            ..ObsConfig::default()
        };
        r.begin_run(cfg, &[1], false);
        for i in 0..10 {
            r.epoch_event(i, i, 0);
        }
        let obs = r.take_run(10).unwrap();
        assert_eq!(obs.events.len(), 11); // RunBegin + 10 epochs, well under cap
        assert_eq!(obs.events_dropped, 0);
    }

    #[test]
    fn tight_event_cap_counts_drops() {
        let mut r = Recorder::new();
        let cfg = ObsConfig {
            events: true,
            event_cap: 3,
            ..ObsConfig::default()
        };
        r.begin_run(cfg, &[1], false);
        for i in 0..10 {
            r.epoch_event(i, i, 0);
        }
        let obs = r.take_run(10).unwrap();
        assert_eq!(obs.events.len(), 3);
        assert_eq!(obs.events_dropped, 8); // RunBegin took one slot
    }
}
