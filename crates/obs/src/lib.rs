//! `fhs-obs` — the observability layer of the FHS reproduction.
//!
//! The paper's thesis is *utilization balancing*: MQB wins because it
//! keeps per-type utilizations even. This crate provides the
//! instruments to actually see that happen:
//!
//! * [`UtilTimeline`] / [`UtilizationReport`] — per-type busy-processor
//!   timelines recorded live from the engine's epoch loop (RLE
//!   compressed), with derived utilization, idle-time decomposition
//!   (`busy + idle_active + idle_tail = P_α × makespan`), time-to-drain
//!   and cross-type imbalance indices (max−min, CoV).
//! * [`LogHist`] / [`HistSnapshot`] — HDR-style log-bucketed histograms
//!   (fixed-size arrays, allocation-free recording, exact merging) for
//!   assign latency, epoch duration and ready-queue depth across pool
//!   workers.
//! * [`Event`] / [`EventBuf`] / [`TraceCell`] — a bounded structured
//!   event trace with Chrome-trace/Perfetto ([`chrome_trace_json`]) and
//!   JSONL ([`events_jsonl`]) exporters.
//! * [`Recorder`] / [`ObsConfig`] / [`RunObs`] — the per-run façade the
//!   simulator `Workspace` owns. Every channel is individually gated
//!   and off by default; recording is observe-only and allocation-free
//!   in the warm epoch loop (storage is sized in
//!   [`Recorder::begin_run`]).
//! * [`telemetry`] — a hand-rolled Prometheus text-format
//!   [`Exposition`] builder (with a structural [`validate`]r) plus
//!   atomic tmp+rename snapshot publication ([`write_atomic`]), the
//!   substrate of the live telemetry service in `fhs-experiments`.
//!
//! The crate deliberately has **zero dependencies** — it sits *below*
//! `fhs-sim` in the dependency graph and speaks plain integers, so the
//! simulator can own a recorder without a dependency cycle. JSON is
//! hand-rolled (see [`json`]) because the build environment has no
//! crates.io access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod hist;
pub mod jobs;
pub mod json;
pub mod recorder;
pub mod telemetry;
pub mod timeline;

pub use events::{chrome_trace_json, events_jsonl, Event, EventBuf, EventKind, TraceCell, NONE};
pub use hist::{bucket_high, bucket_index, HistSnapshot, LogHist, BUCKETS};
pub use jobs::{JobRecord, StreamStats};
pub use recorder::{ObsConfig, Recorder, RunObs};
pub use telemetry::{validate, write_atomic, Exposition, SNAPSHOT_SCHEMA_VERSION};
pub use timeline::{TypeUtilization, UtilSummary, UtilTimeline, UtilizationReport};
