//! Minimal hand-rolled JSON support: a string escaper for the exporters
//! and a small recursive-descent parser used by tests and the CI schema
//! check. The build environment has no crates.io access, so there is no
//! serde; this keeps "emitted documents actually parse" testable without
//! trusting the emitter's own formatting.

use std::collections::BTreeMap;

/// Escapes `s` as a JSON string literal, including the surrounding
/// quotes.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number token: finite values render via
/// `Display` (shortest round-trip form), non-finite values — which JSON
/// cannot represent — render as `null`. Shared by every JSON emitter in
/// the workspace so numeric formatting stays byte-identical across them.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. Numbers keep their raw text (the schema checks
/// only need integer/float classification, and `u64` values must not go
/// through `f64`).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as its raw source text.
    Number(String),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` for deterministic iteration.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.parse().ok(),
            _ => None,
        }
    }
}

/// Parses one JSON document. Errors carry a byte offset and message.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if text.parse::<f64>().is_err() {
            return Err(format!("bad number '{text}' at byte {start}"));
        }
        Ok(Value::Number(text.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5]).unwrap();
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.i))?;
                            // Surrogates are not needed by our own emitters;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            out.insert(key, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_round_trip() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\tnl\n",
            "back\\slash",
            "\u{1}",
        ] {
            let lit = json_string(s);
            let v = parse(&lit).expect("escaped string parses");
            assert_eq!(v.as_str(), Some(s));
        }
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":null,"d":true},"e":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn u64_values_survive_exactly() {
        let v = parse(&format!(r#"{{"n":{}}}"#, u64::MAX)).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse("nul").is_err());
    }
}
