//! Per-job stream metrics for the session engine.
//!
//! A single-job run is summarized by its makespan ratio; a *stream* of
//! jobs flowing through a shared machine is summarized by how each job
//! experienced the service:
//!
//! * **response time** — retirement minus arrival: the latency the
//!   submitting user observes;
//! * **queueing delay** — first dispatch minus arrival: how long the job
//!   waited before any of its tasks ran;
//! * **slowdown** — response over the job's *isolated* lower bound
//!   `L(J) = max(span, max_α T¹_α/P_α)`: the stretch contention imposed
//!   relative to the best the job could do on an empty machine. Always
//!   ≥ 1 (a job cannot finish faster than its lower bound from arrival).
//!
//! [`JobRecord`] captures one retired job; [`StreamStats`] folds records
//! into mergeable [`LogHist`] histograms (same exact-merge property as the
//! latency channel, so per-worker streams can be combined), with slowdown
//! recorded in **milli-units** (slowdown × 1000) to fit the integer
//! buckets.

use crate::hist::LogHist;

/// One retired job, as observed by a session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRecord {
    /// Session-unique job id, in admission order.
    pub id: u64,
    /// Simulation time the job was admitted.
    pub arrival: u64,
    /// First time any of its tasks was dispatched (`None` for empty jobs).
    pub first_start: Option<u64>,
    /// Time its last task completed (== arrival for empty jobs).
    pub finish: u64,
    /// Number of tasks in the job.
    pub tasks: u64,
    /// Total work across its tasks.
    pub work: u64,
    /// Isolated lower bound `L(J)` on the session's machine.
    pub lower_bound: u64,
}

impl JobRecord {
    /// Response time: retirement minus arrival.
    pub fn response(&self) -> u64 {
        self.finish - self.arrival
    }

    /// Queueing delay: first dispatch minus arrival (0 for empty jobs).
    pub fn queueing(&self) -> u64 {
        self.first_start.map_or(0, |s| s - self.arrival)
    }

    /// Slowdown: response over the isolated lower bound, ≥ 1.0. Zero-work
    /// jobs (lower bound 0, response 0) report 1.0.
    pub fn slowdown(&self) -> f64 {
        self.response().max(1) as f64 / self.lower_bound.max(1) as f64
    }

    /// [`slowdown`](JobRecord::slowdown) in milli-units (×1000, rounded),
    /// the integer form recorded into [`StreamStats`].
    pub fn slowdown_milli(&self) -> u64 {
        (self.slowdown() * 1000.0).round() as u64
    }
}

/// Mergeable aggregate over a stream of retired jobs.
#[derive(Clone, Debug)]
pub struct StreamStats {
    /// Jobs folded in.
    pub completed: u64,
    /// Total tasks across those jobs.
    pub tasks: u64,
    /// Total work across those jobs.
    pub work: u64,
    /// Response-time histogram (time units).
    pub response: LogHist,
    /// Queueing-delay histogram (time units).
    pub queueing: LogHist,
    /// Slowdown histogram in milli-units (1000 = no stretch).
    pub slowdown_milli: LogHist,
}

impl Default for StreamStats {
    fn default() -> Self {
        // Histograms are pre-sized here so `record` stays allocation-free
        // (`LogHist::record` requires a prior `reset`).
        let mut response = LogHist::new();
        let mut queueing = LogHist::new();
        let mut slowdown_milli = LogHist::new();
        response.reset();
        queueing.reset();
        slowdown_milli.reset();
        StreamStats {
            completed: 0,
            tasks: 0,
            work: 0,
            response,
            queueing,
            slowdown_milli,
        }
    }
}

impl StreamStats {
    /// An empty aggregate.
    pub fn new() -> Self {
        StreamStats::default()
    }

    /// Folds one retired job in.
    pub fn record(&mut self, job: &JobRecord) {
        self.completed += 1;
        self.tasks += job.tasks;
        self.work += job.work;
        self.response.record(job.response());
        self.queueing.record(job.queueing());
        self.slowdown_milli.record(job.slowdown_milli());
    }

    /// Merges another aggregate in (exact: histograms are bucket sums).
    pub fn merge(&mut self, other: &StreamStats) {
        self.completed += other.completed;
        self.tasks += other.tasks;
        self.work += other.work;
        self.response.merge(&other.response);
        self.queueing.merge(&other.queueing);
        self.slowdown_milli.merge(&other.slowdown_milli);
    }

    /// Sustained throughput in jobs per 1000 simulated time units over a
    /// horizon of `makespan` (0 for an empty stream or zero horizon).
    pub fn jobs_per_kilotime(&self, makespan: u64) -> f64 {
        if makespan == 0 {
            0.0
        } else {
            self.completed as f64 * 1000.0 / makespan as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(arrival: u64, first: u64, finish: u64, lb: u64) -> JobRecord {
        JobRecord {
            id: 0,
            arrival,
            first_start: Some(first),
            finish,
            tasks: 3,
            work: 6,
            lower_bound: lb,
        }
    }

    #[test]
    fn derived_metrics() {
        let j = job(10, 12, 22, 6);
        assert_eq!(j.response(), 12);
        assert_eq!(j.queueing(), 2);
        assert!((j.slowdown() - 2.0).abs() < 1e-12);
        assert_eq!(j.slowdown_milli(), 2000);
    }

    #[test]
    fn empty_job_is_neutral() {
        let j = JobRecord {
            id: 0,
            arrival: 5,
            first_start: None,
            finish: 5,
            tasks: 0,
            work: 0,
            lower_bound: 0,
        };
        assert_eq!(j.response(), 0);
        assert_eq!(j.queueing(), 0);
        assert_eq!(j.slowdown(), 1.0);
    }

    #[test]
    fn stream_stats_fold_and_merge_exactly() {
        let mut a = StreamStats::new();
        let mut b = StreamStats::new();
        let mut all = StreamStats::new();
        for (i, j) in [job(0, 0, 6, 6), job(2, 4, 14, 6), job(9, 9, 30, 7)]
            .iter()
            .enumerate()
        {
            if i % 2 == 0 {
                a.record(j);
            } else {
                b.record(j);
            }
            all.record(j);
        }
        a.merge(&b);
        assert_eq!(a.completed, all.completed);
        assert_eq!(a.work, all.work);
        assert_eq!(
            a.response.snapshot().percentiles(),
            all.response.snapshot().percentiles()
        );
        assert_eq!(
            a.slowdown_milli.snapshot().percentiles(),
            all.slowdown_milli.snapshot().percentiles()
        );
        assert!(a.jobs_per_kilotime(30) > 0.0);
        assert_eq!(StreamStats::new().jobs_per_kilotime(0), 0.0);
    }
}
