//! Per-type utilization timelines: piecewise-constant busy-processor
//! counts, run-length encoded, recorded live from the engine's epoch loop.
//!
//! The engine reports every change of a type's busy-processor count as
//! `(type, time, count)`; the timeline keeps one `(start_time, count)`
//! entry per *change* (consecutive equal counts coalesce, same-time
//! updates overwrite), so the storage is proportional to the number of
//! schedule transitions, not to the makespan. Re-running the same
//! instance on a warm timeline pushes the same entries into retained
//! capacity — zero allocations in steady state, which is what lets the
//! recorder sit inside the engine's metered epoch loop.
//!
//! [`UtilTimeline::report`] derives the per-type accounting the paper's
//! thesis is about: utilization, an idle-time decomposition (idle while
//! the type still had work in flight vs. idle after it drained), the
//! time-to-drain, and cross-type imbalance indices (max−min and
//! coefficient of variation).

/// Run-length-encoded per-type busy-count timelines.
#[derive(Clone, Debug, Default)]
pub struct UtilTimeline {
    /// Per type: `(start_time, busy_count)`, strictly increasing in time.
    /// The count before the first entry is 0; the last entry extends to
    /// the makespan.
    segs: Vec<Vec<(u64, u32)>>,
}

impl UtilTimeline {
    /// An empty timeline (no per-type storage until `begin`).
    pub fn new() -> Self {
        UtilTimeline::default()
    }

    /// Clears for a run over `k` types, retaining per-type capacity.
    pub fn begin(&mut self, k: usize) {
        for s in &mut self.segs {
            s.clear();
        }
        self.segs.truncate(k);
        self.segs.resize_with(k, Vec::new);
    }

    /// Number of types the timeline is tracking.
    pub fn num_types(&self) -> usize {
        self.segs.len()
    }

    /// Records that type `alpha` has `busy` busy processors from time `t`
    /// on. Times must be non-decreasing per type; same-time updates
    /// overwrite (the last write at an instant wins) and no-op updates
    /// coalesce away.
    #[inline]
    pub fn set(&mut self, alpha: usize, t: u64, busy: u32) {
        let v = &mut self.segs[alpha];
        if let Some(&mut (last_t, ref mut last_c)) = v.last_mut() {
            debug_assert!(t >= last_t, "timeline time went backwards");
            if last_t == t {
                *last_c = busy;
                // Overwriting may have made the entry redundant with its
                // predecessor; drop it to keep the encoding canonical.
                if v.len() >= 2 && v[v.len() - 2].1 == busy {
                    v.pop();
                }
                return;
            }
            if *last_c == busy {
                return;
            }
        } else if busy == 0 {
            // Leading zero-count segments are implicit.
            return;
        }
        v.push((t, busy));
    }

    /// The RLE segments of one type: `(start_time, busy_count)` pairs.
    pub fn segments(&self, alpha: usize) -> &[(u64, u32)] {
        &self.segs[alpha]
    }

    /// Integral of the busy count of `alpha` over `[0, makespan)` — the
    /// type's busy processor-time.
    pub fn busy_integral(&self, alpha: usize, makespan: u64) -> u64 {
        let segs = &self.segs[alpha];
        let mut busy = 0u64;
        for (i, &(t, c)) in segs.iter().enumerate() {
            let end = segs.get(i + 1).map_or(makespan, |&(t2, _)| t2);
            busy += c as u64 * end.saturating_sub(t);
        }
        busy
    }

    /// The last instant at which type `alpha` still had a busy processor
    /// (its time-to-drain); 0 if it was never busy.
    pub fn drain_time(&self, alpha: usize, makespan: u64) -> u64 {
        let segs = &self.segs[alpha];
        for (i, &(t, c)) in segs.iter().enumerate().rev() {
            if c > 0 {
                return segs.get(i + 1).map_or(makespan, |&(t2, _)| t2);
            }
            let _ = t;
        }
        0
    }

    /// Derives the full per-type report for a machine with `procs[alpha]`
    /// processors of each type and the given run `makespan`.
    pub fn report(&self, procs: &[u32], makespan: u64) -> UtilizationReport {
        assert_eq!(procs.len(), self.segs.len(), "type count mismatch");
        let per_type = procs
            .iter()
            .enumerate()
            .map(|(alpha, &p)| {
                let busy = self.busy_integral(alpha, makespan);
                let drain = self.drain_time(alpha, makespan);
                let capacity = p as u64 * makespan;
                let idle_tail = p as u64 * makespan.saturating_sub(drain);
                let idle_active = (p as u64 * drain).saturating_sub(busy);
                TypeUtilization {
                    procs: p,
                    busy,
                    idle_active,
                    idle_tail,
                    drain_time: drain,
                    utilization: if capacity == 0 {
                        1.0
                    } else {
                        busy as f64 / capacity as f64
                    },
                }
            })
            .collect();
        UtilizationReport { makespan, per_type }
    }
}

/// One type's utilization accounting over a run. The three time terms
/// decompose the type's whole capacity:
/// `busy + idle_active + idle_tail = procs × makespan`.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeUtilization {
    /// Processors of this type (`P_α`).
    pub procs: u32,
    /// Busy processor-time (`busy_α`).
    pub busy: u64,
    /// Idle processor-time before the type drained — capacity the
    /// schedule left unused while this type still had work in flight.
    pub idle_active: u64,
    /// Idle processor-time after the type drained — the tail this type
    /// spends waiting for the rest of the job to finish.
    pub idle_tail: u64,
    /// Time-to-drain: the last instant any processor of the type was
    /// busy.
    pub drain_time: u64,
    /// `busy_α / (P_α · makespan)`; 1.0 for a zero-makespan run (the
    /// convention of `SimOutcome::utilization`).
    pub utilization: f64,
}

/// Per-type utilization report of one run (or, aggregated, of a cell).
#[derive(Clone, Debug, PartialEq)]
pub struct UtilizationReport {
    /// The run's makespan.
    pub makespan: u64,
    /// One entry per type `α`.
    pub per_type: Vec<TypeUtilization>,
}

impl UtilizationReport {
    /// Utilization-imbalance index: `max_α u_α − min_α u_α` (0 for < 2
    /// types).
    pub fn imbalance(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for t in &self.per_type {
            min = min.min(t.utilization);
            max = max.max(t.utilization);
        }
        if self.per_type.is_empty() {
            0.0
        } else {
            max - min
        }
    }

    /// Coefficient of variation of the per-type utilizations
    /// (population std / mean); 0 when the mean is 0.
    pub fn cov(&self) -> f64 {
        let n = self.per_type.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.per_type.iter().map(|t| t.utilization).sum::<f64>() / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .per_type
            .iter()
            .map(|t| (t.utilization - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }

    /// Mean per-type utilization.
    pub fn mean_utilization(&self) -> f64 {
        let n = self.per_type.len();
        if n == 0 {
            return 1.0;
        }
        self.per_type.iter().map(|t| t.utilization).sum::<f64>() / n as f64
    }
}

/// Cross-instance aggregation of [`UtilizationReport`]s for one sweep
/// cell. Sums are accumulated in instance order (deterministic for a
/// fixed instance stream); merging across groups is supported for
/// cross-worker reduction where exact float reproducibility is not
/// asserted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UtilSummary {
    /// Aggregated runs.
    pub runs: u64,
    /// Per-type sum of utilizations across runs.
    pub sum_util: Vec<f64>,
    /// Per-type sum of `drain_time / makespan` across runs (a type's
    /// normalized time-to-drain; 1.0 when it drains at the makespan).
    pub sum_drain_frac: Vec<f64>,
    /// Sum of per-run imbalance indices (max−min).
    pub sum_imbalance: f64,
    /// Sum of per-run coefficients of variation.
    pub sum_cov: f64,
}

impl UtilSummary {
    /// An empty summary over `k` types.
    pub fn new(k: usize) -> Self {
        UtilSummary {
            runs: 0,
            sum_util: vec![0.0; k],
            sum_drain_frac: vec![0.0; k],
            sum_imbalance: 0.0,
            sum_cov: 0.0,
        }
    }

    /// Folds one run's report in.
    pub fn add(&mut self, r: &UtilizationReport) {
        if self.sum_util.len() != r.per_type.len() {
            assert_eq!(self.runs, 0, "type count changed mid-summary");
            *self = UtilSummary::new(r.per_type.len());
        }
        self.runs += 1;
        for (alpha, t) in r.per_type.iter().enumerate() {
            self.sum_util[alpha] += t.utilization;
            self.sum_drain_frac[alpha] += if r.makespan == 0 {
                1.0
            } else {
                t.drain_time as f64 / r.makespan as f64
            };
        }
        self.sum_imbalance += r.imbalance();
        self.sum_cov += r.cov();
    }

    /// Merges another summary (e.g. from another worker's share).
    pub fn merge(&mut self, other: &UtilSummary) {
        if other.runs == 0 {
            return;
        }
        if self.runs == 0 {
            *self = other.clone();
            return;
        }
        assert_eq!(self.sum_util.len(), other.sum_util.len());
        self.runs += other.runs;
        for (a, b) in self.sum_util.iter_mut().zip(&other.sum_util) {
            *a += b;
        }
        for (a, b) in self.sum_drain_frac.iter_mut().zip(&other.sum_drain_frac) {
            *a += b;
        }
        self.sum_imbalance += other.sum_imbalance;
        self.sum_cov += other.sum_cov;
    }

    /// Mean utilization of type `alpha` across runs.
    pub fn mean_util(&self, alpha: usize) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.sum_util[alpha] / self.runs as f64
        }
    }

    /// Mean normalized time-to-drain of type `alpha` across runs.
    pub fn mean_drain_frac(&self, alpha: usize) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.sum_drain_frac[alpha] / self.runs as f64
        }
    }

    /// Mean imbalance index across runs.
    pub fn mean_imbalance(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.sum_imbalance / self.runs as f64
        }
    }

    /// Mean coefficient of variation across runs.
    pub fn mean_cov(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.sum_cov / self.runs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_equal_counts_and_overwrites_same_time() {
        let mut tl = UtilTimeline::new();
        tl.begin(1);
        tl.set(0, 0, 0); // implicit leading zero: dropped
        tl.set(0, 2, 1);
        tl.set(0, 2, 2); // same-time overwrite
        tl.set(0, 5, 2); // no-op
        tl.set(0, 7, 0);
        assert_eq!(tl.segments(0), &[(2, 2), (7, 0)]);
    }

    #[test]
    fn same_time_overwrite_back_to_previous_count_pops() {
        let mut tl = UtilTimeline::new();
        tl.begin(1);
        tl.set(0, 0, 1);
        tl.set(0, 4, 2);
        tl.set(0, 4, 1); // transient blip at t=4 cancels out
        assert_eq!(tl.segments(0), &[(0, 1)]);
    }

    #[test]
    fn busy_integral_and_drain() {
        let mut tl = UtilTimeline::new();
        tl.begin(2);
        // type 0: 2 busy on [1,4), 1 busy on [4,6), idle after.
        tl.set(0, 1, 2);
        tl.set(0, 4, 1);
        tl.set(0, 6, 0);
        // type 1: never busy.
        let makespan = 10;
        assert_eq!(tl.busy_integral(0, makespan), 2 * 3 + 2);
        assert_eq!(tl.drain_time(0, makespan), 6);
        assert_eq!(tl.busy_integral(1, makespan), 0);
        assert_eq!(tl.drain_time(1, makespan), 0);
    }

    #[test]
    fn report_decomposition_sums_to_capacity() {
        let mut tl = UtilTimeline::new();
        tl.begin(2);
        tl.set(0, 0, 3);
        tl.set(0, 5, 1);
        tl.set(0, 8, 0);
        tl.set(1, 2, 1);
        tl.set(1, 12, 0);
        let r = tl.report(&[3, 2], 12);
        for (alpha, t) in r.per_type.iter().enumerate() {
            assert_eq!(
                t.busy + t.idle_active + t.idle_tail,
                t.procs as u64 * r.makespan,
                "type {alpha}"
            );
        }
        assert_eq!(r.per_type[0].busy, 15 + 3);
        assert_eq!(r.per_type[0].drain_time, 8);
        assert_eq!(r.per_type[0].idle_tail, 3 * 4);
        assert_eq!(r.per_type[1].drain_time, 12);
        assert_eq!(r.per_type[1].idle_tail, 0);
    }

    #[test]
    fn busy_still_open_at_makespan() {
        let mut tl = UtilTimeline::new();
        tl.begin(1);
        tl.set(0, 0, 1);
        assert_eq!(tl.busy_integral(0, 9), 9);
        assert_eq!(tl.drain_time(0, 9), 9);
    }

    #[test]
    fn zero_makespan_reports_full_utilization() {
        let tl = {
            let mut t = UtilTimeline::new();
            t.begin(2);
            t
        };
        let r = tl.report(&[2, 3], 0);
        assert!(r.per_type.iter().all(|t| t.utilization == 1.0));
        assert_eq!(r.imbalance(), 0.0);
    }

    #[test]
    fn imbalance_and_cov() {
        let r = UtilizationReport {
            makespan: 10,
            per_type: vec![
                TypeUtilization {
                    procs: 1,
                    busy: 10,
                    idle_active: 0,
                    idle_tail: 0,
                    drain_time: 10,
                    utilization: 1.0,
                },
                TypeUtilization {
                    procs: 1,
                    busy: 5,
                    idle_active: 5,
                    idle_tail: 0,
                    drain_time: 10,
                    utilization: 0.5,
                },
            ],
        };
        assert!((r.imbalance() - 0.5).abs() < 1e-12);
        assert!((r.mean_utilization() - 0.75).abs() < 1e-12);
        // population std of {1.0, 0.5} is 0.25; CoV = 0.25/0.75
        assert!((r.cov() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_means_and_merge() {
        let report = |u0: f64, u1: f64| UtilizationReport {
            makespan: 10,
            per_type: vec![
                TypeUtilization {
                    procs: 1,
                    busy: (u0 * 10.0) as u64,
                    idle_active: 0,
                    idle_tail: 0,
                    drain_time: 10,
                    utilization: u0,
                },
                TypeUtilization {
                    procs: 1,
                    busy: (u1 * 10.0) as u64,
                    idle_active: 0,
                    idle_tail: 0,
                    drain_time: 5,
                    utilization: u1,
                },
            ],
        };
        let mut s = UtilSummary::new(2);
        s.add(&report(1.0, 0.5));
        s.add(&report(0.8, 0.7));
        assert_eq!(s.runs, 2);
        assert!((s.mean_util(0) - 0.9).abs() < 1e-12);
        assert!((s.mean_util(1) - 0.6).abs() < 1e-12);
        assert!((s.mean_drain_frac(1) - 0.5).abs() < 1e-12);
        let mut a = UtilSummary::new(2);
        a.add(&report(1.0, 0.5));
        let mut b = UtilSummary::new(2);
        b.add(&report(0.8, 0.7));
        a.merge(&b);
        assert_eq!(a, s);
    }

    #[test]
    fn begin_retains_capacity() {
        let mut tl = UtilTimeline::new();
        tl.begin(2);
        for t in 0..100u64 {
            tl.set(0, t, (t % 3) as u32);
        }
        let cap = tl.segs[0].capacity();
        tl.begin(2);
        assert!(tl.segments(0).is_empty());
        assert_eq!(tl.segs[0].capacity(), cap);
    }
}
