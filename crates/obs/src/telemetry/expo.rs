//! Prometheus text-format exposition: builder and validator.

use std::collections::BTreeSet;
use std::collections::HashMap;

use crate::hist::{bucket_high, HistSnapshot};

/// Metric sample types a family can declare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FamilyType {
    Counter,
    Gauge,
    Histogram,
}

impl FamilyType {
    fn label(self) -> &'static str {
        match self {
            FamilyType::Counter => "counter",
            FamilyType::Gauge => "gauge",
            FamilyType::Histogram => "histogram",
        }
    }
}

/// Append-only builder for Prometheus text exposition (format 0.0.4).
///
/// `# HELP` and `# TYPE` headers are emitted once per family, on the
/// first sample of that family; later samples of the same family (e.g.
/// the same counter under different label sets) append bare sample
/// lines. Callers should emit all samples of a family consecutively —
/// the format requires family lines to be grouped, and [`validate`]
/// checks that.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
    seen: BTreeSet<String>,
}

/// `true` iff `name` is a legal metric/label name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (labels additionally may not contain `:`,
/// which no caller here uses anyway).
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Renders a sample value: Prometheus accepts `NaN`, `+Inf`, `-Inf`
/// spellings for the non-finite cases; finite values use Rust's shortest
/// round-trip `Display`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escapes a label value: backslash, double-quote, and newline get
/// backslash escapes per the exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Self {
        Exposition::default()
    }

    fn header(&mut self, name: &str, help: &str, ty: FamilyType) {
        debug_assert!(valid_name(name), "bad metric name {name:?}");
        if self.seen.insert(name.to_string()) {
            // HELP text escapes backslash and newline (not quotes).
            let help = help.replace('\\', "\\\\").replace('\n', "\\n");
            self.out.push_str("# HELP ");
            self.out.push_str(name);
            self.out.push(' ');
            self.out.push_str(&help);
            self.out.push('\n');
            self.out.push_str("# TYPE ");
            self.out.push_str(name);
            self.out.push(' ');
            self.out.push_str(ty.label());
            self.out.push('\n');
        }
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                debug_assert!(valid_name(k), "bad label name {k:?}");
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// Emits one counter sample (integer counters render exactly).
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, FamilyType::Counter);
        self.sample(name, labels, &value.to_string());
    }

    /// Emits one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.header(name, help, FamilyType::Gauge);
        self.sample(name, labels, &fmt_value(value));
    }

    /// Emits one histogram family member from a log-bucketed snapshot:
    /// cumulative `_bucket` lines at each non-empty bucket's inclusive
    /// upper edge, the mandatory `le="+Inf"` bucket, `_sum`, and
    /// `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &HistSnapshot) {
        self.header(name, help, FamilyType::Histogram);
        let bucket = format!("{name}_bucket");
        let mut cum = 0u64;
        for &(idx, c) in h.buckets() {
            cum += c;
            let le = bucket_high(idx as usize).to_string();
            let mut with_le: Vec<(&str, &str)> = Vec::with_capacity(labels.len() + 1);
            with_le.extend_from_slice(labels);
            with_le.push(("le", &le));
            self.sample(&bucket, &with_le, &cum.to_string());
        }
        let mut with_le: Vec<(&str, &str)> = Vec::with_capacity(labels.len() + 1);
        with_le.extend_from_slice(labels);
        with_le.push(("le", "+Inf"));
        self.sample(&bucket, &with_le, &h.count.to_string());
        self.sample(&format!("{name}_sum"), labels, &h.sum.to_string());
        self.sample(&format!("{name}_count"), labels, &h.count.to_string());
    }

    /// The exposition text built so far.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses `name{k="v",...} value` (labels optional). Errors carry the
/// 1-based line number supplied by the caller.
fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let err = |m: &str| format!("line {lineno}: {m}: {line:?}");
    let (head, rest) = match line.find(['{', ' ']) {
        Some(i) => line.split_at(i),
        None => return Err(err("missing value")),
    };
    if !valid_name(head) {
        return Err(err("bad metric name"));
    }
    let mut labels = Vec::new();
    let value_text = if let Some(body) = rest.strip_prefix('{') {
        // Scan `k="v",k="v",...}` with quote/escape awareness (a `}` or
        // `,` inside a quoted value must not terminate the list).
        let mut rest = body;
        loop {
            if let Some(after) = rest.strip_prefix('}') {
                break after.trim_start();
            }
            let eq = rest.find('=').ok_or_else(|| err("label missing ="))?;
            let (k, v) = rest.split_at(eq);
            if !valid_name(k) {
                return Err(err("bad label name"));
            }
            let v = v
                .strip_prefix("=\"")
                .ok_or_else(|| err("label value not quoted"))?;
            // Scan to the closing unescaped quote.
            let mut val = String::new();
            let mut chars = v.char_indices();
            let mut end = None;
            while let Some((i, c)) = chars.next() {
                match c {
                    '\\' => match chars.next() {
                        Some((_, 'n')) => val.push('\n'),
                        Some((_, c2)) => val.push(c2),
                        None => return Err(err("dangling escape")),
                    },
                    '"' => {
                        end = Some(i);
                        break;
                    }
                    c => val.push(c),
                }
            }
            let end = end.ok_or_else(|| err("unterminated label value"))?;
            labels.push((k.to_string(), val));
            rest = &v[end + 1..];
            rest = rest.strip_prefix(',').unwrap_or(rest);
        }
    } else {
        rest.trim_start()
    };
    let value = match value_text {
        "NaN" => f64::NAN,
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        t => t
            .parse::<f64>()
            .map_err(|_| err("unparseable sample value"))?,
    };
    Ok(Sample {
        name: head.to_string(),
        labels,
        value,
    })
}

/// The family a sample belongs to, given declared histogram families:
/// `x_bucket`/`x_sum`/`x_count` fold into family `x` iff `x` was
/// declared as a histogram.
fn family_of<'a>(name: &'a str, histograms: &BTreeSet<String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if histograms.contains(base) {
                return base;
            }
        }
    }
    name
}

/// Structurally validates Prometheus text exposition.
///
/// Checks, per the 0.0.4 format:
/// * every non-comment line parses as `name{labels} value`;
/// * every sample's family has a preceding `# TYPE` header, and all of a
///   family's lines are contiguous (no interleaving);
/// * for each histogram label set: cumulative `_bucket` counts are
///   monotone non-decreasing in `le`, an `le="+Inf"` bucket exists, and
///   it equals the `_count` sample;
/// * counter values are finite and non-negative.
///
/// Returns `Err` with a line-anchored message on the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    let mut types: HashMap<String, FamilyType> = HashMap::new();
    let mut histograms: BTreeSet<String> = BTreeSet::new();
    let mut family_done: BTreeSet<String> = BTreeSet::new();
    let mut current_family: Option<String> = None;
    // (family, sorted non-le labels) -> (bucket (le, cum) list, sum?, count?)
    type HistState = (Vec<(f64, f64)>, Option<f64>, Option<f64>);
    let mut hists: HashMap<(String, String), HistState> = HashMap::new();

    let enter = |fam: &str,
                 current: &mut Option<String>,
                 done: &mut BTreeSet<String>,
                 lineno: usize|
     -> Result<(), String> {
        if current.as_deref() != Some(fam) {
            if let Some(prev) = current.take() {
                done.insert(prev);
            }
            if done.contains(fam) {
                return Err(format!("line {lineno}: family {fam} lines not contiguous"));
            }
            *current = Some(fam.to_string());
        }
        Ok(())
    };

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            let ty = match parts.next() {
                Some("counter") => FamilyType::Counter,
                Some("gauge") => FamilyType::Gauge,
                Some("histogram") => FamilyType::Histogram,
                other => return Err(format!("line {lineno}: unknown TYPE {other:?}")),
            };
            if !valid_name(name) {
                return Err(format!("line {lineno}: bad family name {name:?}"));
            }
            if types.insert(name.to_string(), ty).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            if ty == FamilyType::Histogram {
                histograms.insert(name.to_string());
            }
            enter(name, &mut current_family, &mut family_done, lineno)?;
            continue;
        }
        if line.starts_with('#') {
            // HELP or a free comment; HELP grammar is `# HELP name text`.
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {lineno}: bad HELP name {name:?}"));
                }
                enter(name, &mut current_family, &mut family_done, lineno)?;
            }
            continue;
        }
        let s = parse_sample(line, lineno)?;
        let fam = family_of(&s.name, &histograms).to_string();
        let ty = *types
            .get(&fam)
            .ok_or_else(|| format!("line {lineno}: sample {} has no TYPE header", s.name))?;
        enter(&fam, &mut current_family, &mut family_done, lineno)?;
        match ty {
            FamilyType::Counter => {
                if !(s.value.is_finite() && s.value >= 0.0) {
                    return Err(format!("line {lineno}: counter value {} invalid", s.value));
                }
            }
            FamilyType::Gauge => {}
            FamilyType::Histogram => {
                let mut le: Option<f64> = None;
                let mut rest: Vec<String> = Vec::new();
                for (k, v) in &s.labels {
                    if k == "le" {
                        le = Some(match v.as_str() {
                            "+Inf" => f64::INFINITY,
                            t => t
                                .parse::<f64>()
                                .map_err(|_| format!("line {lineno}: unparseable le {t:?}"))?,
                        });
                    } else {
                        rest.push(format!("{k}={v}"));
                    }
                }
                rest.sort();
                let key = (fam.clone(), rest.join(","));
                let entry = hists.entry(key).or_default();
                if s.name.ends_with("_bucket") {
                    let le = le.ok_or_else(|| {
                        format!("line {lineno}: histogram bucket without le label")
                    })?;
                    entry.0.push((le, s.value));
                } else if s.name.ends_with("_sum") {
                    entry.1 = Some(s.value);
                } else if s.name.ends_with("_count") {
                    entry.2 = Some(s.value);
                } else {
                    return Err(format!("line {lineno}: stray histogram sample {}", s.name));
                }
            }
        }
    }

    for ((fam, labels), (mut buckets, sum, count)) in hists {
        let at = |m: String| format!("histogram {fam}{{{labels}}}: {m}");
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        if buckets.is_empty() {
            return Err(at("no buckets".to_string()));
        }
        let mut prev = -1.0f64;
        for &(le, cum) in &buckets {
            if cum < prev {
                return Err(at(format!("bucket le={le} count {cum} < previous {prev}")));
            }
            prev = cum;
        }
        let (last_le, last_cum) = *buckets.last().unwrap();
        if last_le != f64::INFINITY {
            return Err(at("missing +Inf bucket".to_string()));
        }
        let count = count.ok_or_else(|| at("missing _count".to_string()))?;
        if sum.is_none() {
            return Err(at("missing _sum".to_string()));
        }
        if last_cum != count {
            return Err(at(format!("+Inf bucket {last_cum} != _count {count}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHist;

    fn sample_hist() -> HistSnapshot {
        let mut h = LogHist::new();
        h.reset();
        for v in [1u64, 1, 5, 9, 130, 4000] {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn counters_and_gauges_render_with_headers_once() {
        let mut e = Exposition::new();
        e.counter(
            "fhs_epochs_total",
            "Decision epochs.",
            &[("algo", "mqb")],
            7,
        );
        e.counter(
            "fhs_epochs_total",
            "Decision epochs.",
            &[("algo", "kgreedy")],
            9,
        );
        e.gauge("fhs_util", "Mean utilization.", &[], 0.5);
        let text = e.finish();
        assert_eq!(text.matches("# TYPE fhs_epochs_total").count(), 1);
        assert!(text.contains("fhs_epochs_total{algo=\"mqb\"} 7\n"));
        assert!(text.contains("fhs_epochs_total{algo=\"kgreedy\"} 9\n"));
        assert!(text.contains("# TYPE fhs_util gauge\n"));
        assert!(text.contains("fhs_util 0.5\n"));
        validate(&text).unwrap();
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_matches_count() {
        let h = sample_hist();
        let mut e = Exposition::new();
        e.histogram("fhs_assign_ns", "Assign latency.", &[("algo", "mqb")], &h);
        let text = e.finish();
        validate(&text).unwrap();
        // +Inf bucket and _count agree with the snapshot count.
        assert!(text.contains(&format!(
            "fhs_assign_ns_bucket{{algo=\"mqb\",le=\"+Inf\"}} {}\n",
            h.count
        )));
        assert!(text.contains(&format!(
            "fhs_assign_ns_count{{algo=\"mqb\"}} {}\n",
            h.count
        )));
        assert!(text.contains(&format!("fhs_assign_ns_sum{{algo=\"mqb\"}} {}\n", h.sum)));
        // One _bucket line per non-zero bucket plus +Inf.
        let buckets = text
            .lines()
            .filter(|l| l.starts_with("fhs_assign_ns_bucket"))
            .count();
        assert_eq!(buckets, h.buckets().len() + 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut e = Exposition::new();
        e.gauge("g", "h", &[("k", "a\"b\\c\nd")], 1.0);
        let text = e.finish();
        assert!(text.contains(r#"g{k="a\"b\\c\nd"} 1"#));
        validate(&text).unwrap();
    }

    #[test]
    fn non_finite_gauges_use_prometheus_spellings() {
        let mut e = Exposition::new();
        e.gauge("g", "h", &[("k", "nan")], f64::NAN);
        e.gauge("g", "h", &[("k", "pinf")], f64::INFINITY);
        e.gauge("g", "h", &[("k", "ninf")], f64::NEG_INFINITY);
        let text = e.finish();
        assert!(text.contains("g{k=\"nan\"} NaN\n"));
        assert!(text.contains("g{k=\"pinf\"} +Inf\n"));
        assert!(text.contains("g{k=\"ninf\"} -Inf\n"));
        validate(&text).unwrap();
    }

    #[test]
    fn validate_rejects_structural_violations() {
        // Sample before TYPE header.
        assert!(validate("x 1\n").is_err());
        // Interleaved families.
        let t = "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n";
        assert!(validate(t).unwrap_err().contains("not contiguous"));
        // Negative counter.
        assert!(validate("# TYPE c counter\nc -1\n").is_err());
        // Histogram with regressing cumulative buckets.
        let t = "# TYPE h histogram\n\
                 h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                 h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate(t).unwrap_err().contains("< previous"));
        // +Inf bucket disagreeing with _count.
        let t = "# TYPE h histogram\n\
                 h_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n";
        assert!(validate(t).unwrap_err().contains("!= _count"));
        // Missing +Inf bucket.
        let t = "# TYPE h histogram\nh_bucket{le=\"1\"} 4\nh_sum 9\nh_count 4\n";
        assert!(validate(t).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn empty_histogram_still_exposes_inf_sum_count() {
        let mut e = Exposition::new();
        e.histogram("h", "empty", &[], &HistSnapshot::default());
        let text = e.finish();
        validate(&text).unwrap();
        assert!(text.contains("h_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("h_sum 0\n"));
        assert!(text.contains("h_count 0\n"));
    }
}
