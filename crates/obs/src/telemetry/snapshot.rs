//! Atomic snapshot publication: write to a temporary file in the target
//! directory, then `rename` over the destination. On POSIX the rename is
//! atomic, so a concurrent reader (the `/metrics` server thread, a
//! `tail`ing human, or a crashed writer's successor) always sees either
//! the previous complete snapshot or the new complete snapshot — never a
//! torn prefix.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Schema version stamped into every snapshot-JSONL line (and checked by
/// the shard merge tool). Bump when a line's key set changes
/// incompatibly.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

/// Writes `contents` to `path` atomically (tmp file + rename). The
/// temporary file lives next to the destination — same filesystem — so
/// the final `rename` cannot degrade to a copy.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let base = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp = dir.join(base);
    tmp.set_extension(format!("tmp{}", std::process::id()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        // Durability before visibility: the rename must not expose a
        // file whose bytes are still in flight.
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("fhs_obs_snap_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        write_atomic(&path, "first version, quite long content\n").unwrap();
        write_atomic(&path, "second\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second\n");
        // No tmp litter left behind.
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path() != path)
            .collect();
        assert!(stray.is_empty(), "stray files: {stray:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
