//! Prometheus-style telemetry primitives.
//!
//! The workspace runs in offline containers with no crates.io access, so
//! this is a hand-rolled, dependency-free implementation of the
//! Prometheus **text exposition format** (version 0.0.4) plus the small
//! pieces a live telemetry service needs around it:
//!
//! * [`Exposition`] — an append-only builder emitting `# HELP`/`# TYPE`
//!   headers once per metric family and counter/gauge/histogram sample
//!   lines. Histograms render the workspace's log-bucketed
//!   [`HistSnapshot`](crate::HistSnapshot)s as cumulative `_bucket`
//!   lines (upper edges from [`bucket_high`](crate::bucket_high)) with
//!   the mandatory `+Inf` bucket, `_sum`, and `_count`.
//! * [`validate`] — a structural checker for exposition text (line
//!   grammar, header placement, monotone cumulative buckets, `+Inf` ==
//!   `_count`), used by tests and the CI scrape check so "what we serve
//!   actually parses" does not depend on trusting the builder.
//! * [`write_atomic`] — tmp-file + rename snapshot publication, so a
//!   concurrent reader (or a crash) never observes a torn file.
//!
//! Everything here is observe-only: building an exposition reads
//! snapshots and never touches engine state.

mod expo;
mod snapshot;

pub use expo::{validate, Exposition};
pub use snapshot::{write_atomic, SNAPSHOT_SCHEMA_VERSION};
