//! Property tests for the merge algebra of the mergeable aggregates.
//!
//! The sharded-sweep merge (PR 10) and every pooled runner rely on
//! histogram and stream-stat merges being **commutative and
//! associative**: shard grouping must not change the merged result.
//! These proptests pin that for [`HistSnapshot`] and [`StreamStats`].

use fhs_obs::{HistSnapshot, JobRecord, LogHist, StreamStats};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistSnapshot {
    let mut h = LogHist::new();
    h.reset();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn stream_of(jobs: &[(u64, u64, u64)]) -> StreamStats {
    let mut s = StreamStats::new();
    for (i, &(arrival, wait, run)) in jobs.iter().enumerate() {
        let first = arrival + wait;
        s.record(&JobRecord {
            id: i as u64,
            arrival,
            first_start: Some(first),
            finish: first + run,
            tasks: 1 + run % 5,
            work: run,
            lower_bound: 1 + run / 2,
        });
    }
    s
}

/// StreamStats has no `PartialEq` (it holds dense `LogHist`s); compare
/// through counters plus per-histogram snapshots, which is the form
/// every exporter reads.
fn stream_eq(a: &StreamStats, b: &StreamStats) -> bool {
    a.completed == b.completed
        && a.tasks == b.tasks
        && a.work == b.work
        && a.response.snapshot() == b.response.snapshot()
        && a.queueing.snapshot() == b.queueing.snapshot()
        && a.slowdown_milli.snapshot() == b.slowdown_milli.snapshot()
}

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    // Mix tiny exact-bucket values with the full u64 range so sub-bucket
    // boundaries and the top bucket are both exercised.
    proptest::collection::vec(prop_oneof![(0u64..64).boxed(), any::<u64>().boxed()], 0..40)
}

fn arb_jobs() -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    proptest::collection::vec((0u64..10_000, 0u64..500, 1u64..5_000), 0..30)
}

proptest! {
    #[test]
    fn hist_merge_is_commutative(a in arb_values(), b in arb_values()) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn hist_merge_is_associative(
        a in arb_values(), b in arb_values(), c in arb_values()
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // And both equal the single-pass recording of the concatenation.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left, snapshot_of(&all));
    }

    #[test]
    fn stream_merge_is_commutative(a in arb_jobs(), b in arb_jobs()) {
        let (sa, sb) = (stream_of(&a), stream_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert!(stream_eq(&ab, &ba));
    }

    #[test]
    fn stream_merge_is_associative(
        a in arb_jobs(), b in arb_jobs(), c in arb_jobs()
    ) {
        let (sa, sb, sc) = (stream_of(&a), stream_of(&b), stream_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert!(stream_eq(&left, &right));
        // Both equal the one-shot fold of the concatenated stream.
        let all: Vec<(u64, u64, u64)> =
            a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert!(stream_eq(&left, &stream_of(&all)));
    }

    #[test]
    fn merging_empty_is_identity(a in arb_values()) {
        let sa = snapshot_of(&a);
        let mut m = sa.clone();
        m.merge(&HistSnapshot::default());
        prop_assert_eq!(&m, &sa);
        let mut from_empty = HistSnapshot::default();
        from_empty.merge(&sa);
        prop_assert_eq!(from_empty, sa);
    }
}
