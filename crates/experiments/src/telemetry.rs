//! Live telemetry for running experiments: Prometheus text exposition,
//! periodic atomic snapshots, and the `GET /metrics` endpoint.
//!
//! Three pieces, all offline-friendly (std only):
//!
//! * [`sweep_exposition`] / [`stream_exposition`] render the existing
//!   aggregates — engine counters, selection/fast-forward counters,
//!   log-bucketed latency histograms, utilization gauges, per-job stream
//!   histograms — in the Prometheus text format 0.0.4 implemented by
//!   [`fhs_obs::Exposition`] (validated by [`fhs_obs::validate`]).
//! * [`StreamSnapshotSink`] plugs into the session engine's cadence hook
//!   ([`fhs_sim::Session::set_telemetry`]): every N epochs it atomically
//!   writes the current exposition and a versioned snapshot-JSONL line
//!   (tmp + rename, so a scraper never reads a torn file). Snapshots are
//!   observe-only — the schedule is pinned byte-identical by the session
//!   telemetry tests.
//! * [`MetricsServer`] answers `GET /metrics` from the latest published
//!   snapshot over a plain [`std::net::TcpListener`] — no HTTP stack, no
//!   runtime; good enough for a scrape cadence of seconds.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fhs_obs::{write_atomic, Exposition, StreamStats, SNAPSHOT_SCHEMA_VERSION};
use fhs_sim::{RunStats, TelemetrySink, TelemetryTick};

use crate::obsout;
use crate::runner::SweepCellResult;

// ---------------------------------------------------------------------------
// Expositions.
// ---------------------------------------------------------------------------

/// Emits the engine-counter families shared by the sweep and stream
/// expositions, **family-major** over the labeled series (the text format
/// requires a family's samples to be contiguous, so the per-series loop
/// must nest inside the per-family loop).
fn engine_counters(e: &mut Exposition, series: &[(&[(&str, &str)], &RunStats)]) {
    type Family = (&'static str, &'static str, fn(&RunStats) -> u64);
    let simple: [Family; 5] = [
        (
            "fhs_epochs_total",
            "Decision epochs (policy consultations, including fast-forwarded ones)",
            |s| s.epochs,
        ),
        (
            "fhs_epochs_skipped_total",
            "Decision epochs fast-forwarded over instead of executed",
            |s| s.epochs_skipped,
        ),
        (
            "fhs_dirty_visits_total",
            "Per-(job, epoch) policy consultations performed by the dirty-set scan",
            |s| s.dirty_visits,
        ),
        (
            "fhs_full_rescans_total",
            "Epochs in which the dirty-set skip pruned nothing",
            |s| s.full_rescans,
        ),
        (
            "fhs_tasks_assigned_total",
            "Task selections across all epochs",
            |s| s.tasks_assigned,
        ),
    ];
    for (name, help, get) in simple {
        for (labels, stats) in series {
            e.counter(name, help, labels, get(stats));
        }
    }
    for (labels, stats) in series {
        for (event, value) in [
            ("releases", stats.transitions.releases),
            ("starts", stats.transitions.starts),
            ("completions", stats.transitions.completions),
            ("progress_updates", stats.transitions.progress_updates),
        ] {
            let mut with_event = labels.to_vec();
            with_event.push(("event", event));
            e.counter(
                "fhs_transitions_total",
                "State transitions by kind",
                &with_event,
                value,
            );
        }
    }
    for (labels, stats) in series {
        for (counter, value) in [
            ("candidates_evaluated", stats.selection.candidates_evaluated),
            ("candidates_pruned", stats.selection.candidates_pruned),
            ("diff_events", stats.selection.diff_events),
            ("cold_snapshots", stats.selection.cold_snapshots),
        ] {
            let mut with_counter = labels.to_vec();
            with_counter.push(("counter", counter));
            e.counter(
                "fhs_selection_total",
                "Candidate-selection counters (incremental-index policies)",
                &with_counter,
                value,
            );
        }
    }
    for (labels, stats) in series {
        e.gauge(
            "fhs_peak_queue_depth",
            "Largest number of live candidates any single type queue held",
            labels,
            stats.transitions.peak_queue_depth as f64,
        );
    }
}

/// Renders a sweep's current per-column aggregates as one Prometheus
/// text-format page. `done`/`total` expose the sweep's progress so a
/// scraper can watch a long run converge; the per-column families are
/// labeled `algo="<label>"`. Families are emitted family-major, so the
/// page always passes [`fhs_obs::validate`].
pub fn sweep_exposition(
    workload: &str,
    mode: &str,
    labels: &[String],
    cols: &[SweepCellResult],
    done: usize,
    total: usize,
) -> String {
    let mut e = Exposition::new();
    let id = [("workload", workload), ("mode", mode)];
    e.gauge(
        "fhs_sweep_instances_total",
        "Instances this sweep will evaluate",
        &id,
        total as f64,
    );
    e.gauge(
        "fhs_sweep_instances_done",
        "Instances folded into the aggregates so far",
        &id,
        done as f64,
    );
    let label_pairs: Vec<[(&str, &str); 1]> =
        labels.iter().map(|l| [("algo", l.as_str())]).collect();
    let series: Vec<(&[(&str, &str)], &RunStats)> = label_pairs
        .iter()
        .zip(cols)
        .map(|(l, c)| (l.as_slice(), &c.stats))
        .collect();
    engine_counters(&mut e, &series);
    // Family-major from here on too: every family's per-column samples
    // must stay contiguous.
    let summaries: Vec<_> = cols.iter().map(|c| c.summary()).collect();
    for (l, (col, s)) in label_pairs.iter().zip(cols.iter().zip(&summaries)) {
        if !col.ratios.is_empty() {
            e.gauge(
                "fhs_ratio_mean",
                "Mean completion-time ratio over the instances so far",
                l,
                s.mean,
            );
        }
    }
    for (l, (col, s)) in label_pairs.iter().zip(cols.iter().zip(&summaries)) {
        if !col.ratios.is_empty() {
            e.gauge(
                "fhs_ratio_p95",
                "95th-percentile completion-time ratio",
                l,
                s.p95,
            );
        }
    }
    let observed: Vec<_> = label_pairs
        .iter()
        .zip(cols)
        .filter_map(|(l, c)| c.obs.as_ref().map(|o| (l, o)))
        .collect();
    for (l, o) in &observed {
        e.histogram(
            "fhs_queue_depth",
            "Ready-queue depth samples (one per type per epoch)",
            l.as_slice(),
            &o.queue_depth,
        );
    }
    for (l, o) in &observed {
        e.histogram(
            "fhs_assign_latency_ns",
            "Per-epoch Policy::assign wall latency",
            l.as_slice(),
            &o.assign_ns,
        );
    }
    for (l, o) in &observed {
        e.histogram(
            "fhs_epoch_latency_ns",
            "Inter-epoch wall durations within the engine loop",
            l.as_slice(),
            &o.epoch_ns,
        );
    }
    let with_util: Vec<_> = observed.iter().filter(|(_, o)| o.util.runs > 0).collect();
    for (l, o) in &with_util {
        for alpha in 0..o.util.sum_util.len() {
            let ty = alpha.to_string();
            let lt = [l[0], ("type", ty.as_str())];
            e.gauge(
                "fhs_utilization_mean",
                "Mean per-type utilization over the recorded instances",
                &lt,
                o.util.mean_util(alpha),
            );
        }
    }
    for (l, o) in &with_util {
        for alpha in 0..o.util.sum_util.len() {
            let ty = alpha.to_string();
            let lt = [l[0], ("type", ty.as_str())];
            e.gauge(
                "fhs_drain_frac_mean",
                "Mean per-type time-to-drain over makespan",
                &lt,
                o.util.mean_drain_frac(alpha),
            );
        }
    }
    for (l, o) in &with_util {
        e.gauge(
            "fhs_imbalance_mean",
            "Mean utilization-imbalance index (max-min)",
            l.as_slice(),
            o.util.mean_imbalance(),
        );
    }
    for (l, o) in &with_util {
        e.gauge(
            "fhs_cov_mean",
            "Mean coefficient of variation of per-type utilization",
            l.as_slice(),
            o.util.mean_cov(),
        );
    }
    e.finish()
}

/// Renders one running session's live state — engine counters plus the
/// per-job response/queueing/slowdown histograms — as a Prometheus page.
#[allow(clippy::too_many_arguments)]
pub fn stream_exposition(
    cell: &str,
    inter: &str,
    now: u64,
    epoch: u64,
    active_jobs: usize,
    stats: &RunStats,
    stream: &StreamStats,
) -> String {
    let mut e = Exposition::new();
    let l = [("algo", cell), ("inter", inter)];
    e.gauge("fhs_session_time", "Current simulated time", &l, now as f64);
    e.gauge(
        "fhs_session_epoch",
        "Current machine epoch",
        &l,
        epoch as f64,
    );
    e.gauge(
        "fhs_session_active_jobs",
        "Jobs admitted and not yet retired",
        &l,
        active_jobs as f64,
    );
    engine_counters(&mut e, &[(l.as_slice(), stats)]);
    e.counter(
        "fhs_jobs_completed_total",
        "Jobs retired from the session",
        &l,
        stream.completed,
    );
    e.counter(
        "fhs_job_tasks_total",
        "Tasks across all retired jobs",
        &l,
        stream.tasks,
    );
    e.counter(
        "fhs_job_work_total",
        "Total work across all retired jobs",
        &l,
        stream.work,
    );
    e.histogram(
        "fhs_job_response_time",
        "Per-job response time (finish - arrival)",
        &l,
        &stream.response.snapshot(),
    );
    e.histogram(
        "fhs_job_queueing_delay",
        "Per-job queueing delay (first start - arrival)",
        &l,
        &stream.queueing.snapshot(),
    );
    e.histogram(
        "fhs_job_slowdown_milli",
        "Per-job slowdown in milli-units (1500 = 1.5x)",
        &l,
        &stream.slowdown_milli.snapshot(),
    );
    e.finish()
}

/// The snapshot-JSONL page for a (possibly still running) sweep: a
/// versioned progress header, then one standard metrics line per column
/// covering the `done` instances folded so far.
pub fn sweep_snapshot_jsonl(
    workload: &str,
    mode: &str,
    seed: u64,
    labels: &[String],
    cols: &[SweepCellResult],
    done: usize,
    total: usize,
) -> String {
    let mut out = format!(
        "{{\"version\":{SNAPSHOT_SCHEMA_VERSION},\"kind\":\"snapshot\",\"done\":{done},\"total\":{total}}}\n"
    );
    for (label, col) in labels.iter().zip(cols) {
        out.push_str(&obsout::metrics_line(
            label,
            workload,
            mode,
            done,
            seed,
            &col.summary(),
            &col.stats,
            col.obs.as_ref(),
        ));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// The session snapshot sink.
// ---------------------------------------------------------------------------

/// A [`TelemetrySink`] for the session engine's cadence hook: every tick
/// it renders [`stream_exposition`] plus a versioned snapshot-JSONL line
/// and atomically replaces the target files (and publishes to a
/// [`MetricsServer`], when one is attached). I/O failures are reported on
/// [`StreamSnapshotSink::io_errors`] rather than panicking mid-schedule.
pub struct StreamSnapshotSink {
    /// `algo` label stamped on every family.
    pub cell: String,
    /// Inter-job policy label.
    pub inter: String,
    /// Workload label (snapshot-JSONL identity).
    pub workload: String,
    /// Mode label (snapshot-JSONL identity).
    pub mode: String,
    /// Base seed (snapshot-JSONL identity).
    pub seed: u64,
    /// Exposition target (`.prom`), if any.
    pub prom_path: Option<PathBuf>,
    /// Snapshot-JSONL target, if any.
    pub jsonl_path: Option<PathBuf>,
    /// Live endpoint to publish each exposition to, if any.
    pub server: Option<MetricsServer>,
    /// Ticks delivered so far.
    pub ticks: u64,
    /// Snapshot writes that failed (the run itself is never interrupted).
    pub io_errors: u64,
}

impl StreamSnapshotSink {
    /// A sink with the given series identity and no outputs attached yet.
    pub fn new(cell: &str, inter: &str, workload: &str, mode: &str, seed: u64) -> Self {
        StreamSnapshotSink {
            cell: cell.to_string(),
            inter: inter.to_string(),
            workload: workload.to_string(),
            mode: mode.to_string(),
            seed,
            prom_path: None,
            jsonl_path: None,
            server: None,
            ticks: 0,
            io_errors: 0,
        }
    }
}

impl TelemetrySink for StreamSnapshotSink {
    fn tick(&mut self, tick: &TelemetryTick<'_>) {
        self.ticks += 1;
        let stream = match tick.stream {
            Some(s) => s,
            None => return,
        };
        let page = stream_exposition(
            &self.cell,
            &self.inter,
            tick.now,
            tick.epoch,
            tick.active_jobs,
            tick.stats,
            stream,
        );
        if let Some(server) = &self.server {
            server.publish(page.clone());
        }
        if let Some(path) = &self.prom_path {
            if write_atomic(path, &page).is_err() {
                self.io_errors += 1;
            }
        }
        if let Some(path) = &self.jsonl_path {
            let line = format!(
                "{{\"version\":{SNAPSHOT_SCHEMA_VERSION},\"kind\":\"stream-snapshot\",\"epoch\":{},\"active_jobs\":{}}}\n{}\n",
                tick.epoch,
                tick.active_jobs,
                obsout::stream_line(
                    &self.cell,
                    &self.inter,
                    &self.workload,
                    &self.mode,
                    stream.completed as usize,
                    self.seed,
                    tick.now,
                    stream,
                ),
            );
            if write_atomic(path, &line).is_err() {
                self.io_errors += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The /metrics endpoint.
// ---------------------------------------------------------------------------

/// A minimal metrics endpoint over std's [`TcpListener`]: a detached
/// accept-loop thread serves `GET /metrics` from the latest
/// [`publish`](MetricsServer::publish)ed page (any other request gets a
/// 404). Handles are cheap clones sharing the same page; the listener
/// lives until process exit.
#[derive(Clone)]
pub struct MetricsServer {
    latest: Arc<Mutex<String>>,
    addr: SocketAddr,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port) and
    /// starts the accept loop.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let latest = Arc::new(Mutex::new(String::new()));
        let shared = Arc::clone(&latest);
        std::thread::Builder::new()
            .name("fhs-metrics".into())
            .spawn(move || {
                for stream in listener.incoming().flatten() {
                    let _ = serve_one(stream, &shared);
                }
            })?;
        Ok(MetricsServer { latest, addr })
    }

    /// Replaces the page served at `/metrics`.
    pub fn publish(&self, page: String) {
        let mut latest = self.latest.lock().unwrap_or_else(|e| e.into_inner());
        *latest = page;
    }

    /// The bound address (reports the picked port when started on `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Serves one connection: reads the request head (bounded), answers
/// `GET /metrics`, closes.
fn serve_one(mut stream: TcpStream, latest: &Mutex<String>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 16 * 1024 {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
    }
    let request_line = std::str::from_utf8(&head)
        .unwrap_or("")
        .lines()
        .next()
        .unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let hit = parts.next() == Some("GET") && parts.next() == Some("/metrics");
    let response = if hit {
        let body = latest.lock().unwrap_or_else(|e| e.into_inner()).clone();
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        )
    } else {
        "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n".to_string()
    };
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_sweep_observed, SweepCell};
    use crate::stream::{
        run_stream, run_stream_with_telemetry, Arrivals, StreamCell, StreamConfig,
    };
    use fhs_core::Algorithm;
    use fhs_obs::{validate, ObsConfig};
    use fhs_sim::{InterJobPolicy, Mode};
    use fhs_workloads::{resources::SystemSize, Family, Typing, WorkloadSpec};

    fn sweep_fixture() -> (Vec<String>, Vec<SweepCellResult>) {
        let spec = WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Small, 3);
        let algos = [Algorithm::Mqb, Algorithm::KGreedy];
        let cells: Vec<SweepCell> = algos
            .iter()
            .map(|&a| SweepCell::new(a, Mode::NonPreemptive))
            .collect();
        let cols = run_sweep_observed(&spec, &cells, 6, 9, Some(2), ObsConfig::all());
        let labels = algos.iter().map(|a| a.label().to_string()).collect();
        (labels, cols)
    }

    #[test]
    fn sweep_exposition_is_valid_and_covers_the_counters() {
        let (labels, cols) = sweep_fixture();
        let page = sweep_exposition("Small Layered IR", "np", &labels, &cols, 6, 6);
        validate(&page).expect("exposition validates");
        assert!(page.contains("# TYPE fhs_epochs_total counter"));
        assert!(page.contains("# TYPE fhs_queue_depth histogram"));
        assert!(page.contains("fhs_selection_total{algo=\"MQB\",counter=\"candidates_evaluated\"}"));
        assert!(page.contains("fhs_utilization_mean{algo=\"MQB\",type=\"0\"}"));
        assert!(
            page.contains("fhs_sweep_instances_done{workload=\"Small Layered IR\",mode=\"np\"} 6")
        );
    }

    #[test]
    fn sweep_snapshot_jsonl_is_versioned_and_parseable() {
        let (labels, cols) = sweep_fixture();
        let body = sweep_snapshot_jsonl("w", "np", 9, &labels, &cols, 6, 10);
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 3);
        let header = fhs_obs::json::parse(lines[0]).expect("header parses");
        assert_eq!(
            header.get("version").and_then(|v| v.as_u64()),
            Some(SNAPSHOT_SCHEMA_VERSION)
        );
        assert_eq!(header.get("done").and_then(|v| v.as_u64()), Some(6));
        for line in &lines[1..] {
            fhs_obs::json::parse(line).expect("metrics line parses");
        }
    }

    #[test]
    fn metrics_server_serves_the_published_page_and_404s_elsewhere() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        server.publish("# TYPE t counter\nt 1\n".to_string());
        let fetch = |path: &str| -> String {
            let mut s = TcpStream::connect(server.addr()).expect("connect");
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };
        let ok = fetch("/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("version=0.0.4"));
        assert!(ok.ends_with("# TYPE t counter\nt 1\n"));
        let miss = fetch("/other");
        assert!(miss.starts_with("HTTP/1.1 404"), "{miss}");
        // A republish is visible on the next scrape.
        server.publish("t 2\n".to_string());
        assert!(fetch("/metrics").ends_with("t 2\n"));
    }

    #[test]
    fn stream_snapshot_sink_writes_valid_pages_without_perturbing_the_run() {
        let cfg = StreamConfig {
            spec: WorkloadSpec::new(Family::Ir, Typing::Layered, SystemSize::Small, 3),
            jobs: 6,
            arrivals: Arrivals::Poisson { mean_gap: 4.0 },
            seed: 21,
        };
        let cell = StreamCell::new(Algorithm::Mqb, InterJobPolicy::FairShare);
        let base = run_stream(&cfg, &cell);

        let dir = std::env::temp_dir().join(format!("fhs-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let mut sink = StreamSnapshotSink::new("MQB", "fair", &cfg.spec.label(), "np", cfg.seed);
        sink.prom_path = Some(dir.join("stream.prom"));
        sink.jsonl_path = Some(dir.join("stream.jsonl"));
        sink.server = Some(server.clone());
        let (out, _sink) = run_stream_with_telemetry(&cfg, &cell, 8, Box::new(sink));

        // Observe-only: the telemetry run retires the same schedule.
        assert_eq!(out.makespan, base.makespan);
        let fa: Vec<(u64, u64)> = base.jobs.iter().map(|j| (j.id, j.finish)).collect();
        let fb: Vec<(u64, u64)> = out.jobs.iter().map(|j| (j.id, j.finish)).collect();
        assert_eq!(fa, fb);

        let page = std::fs::read_to_string(dir.join("stream.prom")).expect("prom written");
        validate(&page).expect("exposition validates");
        assert!(page.contains("fhs_jobs_completed_total"));
        let jsonl = std::fs::read_to_string(dir.join("stream.jsonl")).expect("jsonl written");
        let mut lines = jsonl.lines();
        let header = fhs_obs::json::parse(lines.next().unwrap()).expect("header parses");
        assert_eq!(
            header.get("kind").and_then(|v| v.as_str()),
            Some("stream-snapshot")
        );
        fhs_obs::json::parse(lines.next().unwrap()).expect("stream line parses");

        // The same page was published live.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write!(s, "GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut body = String::new();
        s.read_to_string(&mut body).unwrap();
        assert!(body.contains("fhs_job_response_time_bucket"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
