//! Aligned text tables and CSV output for the experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned table with a header row.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its length must match the header.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with padded columns, a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = width[c].max(h.chars().count());
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let pad = width[c] - cell.chars().count();
                // left-align first column, right-align the numbers
                if c == 0 {
                    out.push_str(cell);
                    out.extend(std::iter::repeat_n(' ', pad));
                } else {
                    out.extend(std::iter::repeat_n(' ', pad));
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish: quotes fields containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let mut write_row = |row: &[String]| {
            let line: Vec<String> = row.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["algo", "ratio"]);
        t.push_row(vec!["KGreedy", "3.120"]);
        t.push_row(vec!["MQB", "1.150"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
        assert!(lines[0].starts_with("algo"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // numbers right-aligned: both end at the same column
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_special_fields() {
        let mut t = Table::new(vec!["name", "v"]);
        t.push_row(vec!["a,b", "x\"y"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn csv_round_trips_simple_fields() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "algo,ratio");
    }
}
