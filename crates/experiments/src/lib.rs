//! # fhs-experiments — the paper's evaluation, regenerated
//!
//! One module (and one binary) per figure of the paper's §V:
//!
//! | Module | Paper figure | Content |
//! |---|---|---|
//! | [`figures::fig4`] | Fig. 4 (a–f) | six algorithms × six workloads, average completion-time ratio |
//! | [`figures::fig5`] | Fig. 5 (a–c) | ratio as the number of resource types K grows 1→6 |
//! | [`figures::fig6`] | Fig. 6 (a–b) | skewed load (type 1's pool ÷ 5) |
//! | [`figures::fig7`] | Fig. 7 (a–c) | non-preemptive vs preemptive |
//! | [`figures::fig8`] | Fig. 8 (a–c) | MQB under partial / imprecise information |
//! | [`figures::lower_bound`] | Thm. 2 / Fig. 2 | adversarial family: measured KGreedy vs the online lower bound |
//!
//! Every cell aggregates `--instances` independent job instances (the
//! paper uses 5000; binaries default lower for wall-clock sanity and take
//! `--instances 5000` for full parity). All randomness is derived from
//! `--seed`, so tables reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod chart;
pub mod figures;
pub mod obsout;
pub mod runner;
pub mod shard;
pub mod stats;
pub mod stream;
pub mod table;
pub mod telemetry;

pub use runner::{
    run_cell, run_sweep, run_sweep_observed, run_sweep_rows, Cell, CellObs, InstanceRuns,
    SweepCell, SweepCellResult,
};
pub use shard::{merge_shards, shard_fragment, ShardMeta, SHARD_SCHEMA_VERSION};
pub use stats::Summary;
pub use stream::{run_stream, Arrivals, StreamCell, StreamConfig, StreamResult};
pub use telemetry::MetricsServer;
