//! Sample statistics for completion-time ratios.

/// Summary statistics over one experiment cell's per-instance ratios.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std: f64,
    /// Half-width of the normal-approximation 95% confidence interval
    /// (`1.96·std/√n`; 0 for n < 2).
    pub ci95: f64,
    /// Median (linear-interpolated).
    pub p50: f64,
    /// 95th percentile (linear-interpolated).
    pub p95: f64,
}

impl Summary {
    /// Computes a summary; panics on an empty sample.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary of an empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
        }
        let (std, ci95) = if n >= 2 {
            let var = samples.iter().map(|&s| (s - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
            let std = var.sqrt();
            (std, 1.96 * std / (n as f64).sqrt())
        } else {
            (0.0, 0.0)
        };
        let mut sorted = samples.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        Summary {
            n,
            mean,
            min,
            max,
            std,
            ci95,
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
        }
    }
}

/// Linear-interpolated percentile of a pre-sorted sample (`q ∈ [0, 1]`).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} ±{:.3} (max {:.3})",
            self.mean, self.ci95, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample() {
        let s = Summary::from_samples(&[2.0; 10]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!((s.min, s.max), (2.0, 2.0));
        assert_eq!((s.p50, s.p95), (2.0, 2.0));
        assert_eq!(s.n, 10);
    }

    #[test]
    fn percentiles_interpolate() {
        // sorted: 1..=5; median 3, p95 = 4.8
        let s = Summary::from_samples(&[5.0, 1.0, 4.0, 2.0, 3.0]);
        assert_eq!(s.p50, 3.0);
        assert!((s.p95 - 4.8).abs() < 1e-12);
        // order of input must not matter
        let s2 = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.p50, s2.p50);
        assert_eq!(s.p95, s2.p95);
    }

    #[test]
    fn known_mean_and_std() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // var = (2.25+0.25+0.25+2.25)/3 = 5/3
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Summary::from_samples(&[7.5]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 7.5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        Summary::from_samples(&[]);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::from_samples(&[1.0, 3.0]);
        let text = s.to_string();
        assert!(text.starts_with("2.000"));
        assert!(text.contains("max 3.000"));
    }
}
