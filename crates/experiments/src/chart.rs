//! ASCII bar and line charts, mirroring the paper's figure shapes in the
//! terminal.

use std::fmt::Write as _;

/// Horizontal bar chart: one labelled bar per entry, scaled to
/// `max_width` characters at the largest value.
pub fn bar_chart(entries: &[(String, f64)], max_width: usize) -> String {
    let mut out = String::new();
    if entries.is_empty() {
        return out;
    }
    let label_w = entries
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let vmax = entries.iter().map(|&(_, v)| v).fold(f64::NAN, f64::max);
    let scale = if vmax > 0.0 {
        max_width as f64 / vmax
    } else {
        0.0
    };
    for (label, v) in entries {
        let bar = "#".repeat(((v * scale).round() as usize).min(max_width));
        let _ = writeln!(out, "{label:<label_w$} |{bar} {v:.3}");
    }
    out
}

/// Line chart as a table of series: rows = series, columns = x values.
/// The paper's Fig. 5 (ratio vs K) renders well in this shape.
pub fn series_table(x_label: &str, xs: &[String], series: &[(String, Vec<f64>)]) -> String {
    let mut header = vec![x_label.to_string()];
    header.extend(xs.iter().cloned());
    let mut t = crate::table::Table::new(header);
    for (name, ys) in series {
        assert_eq!(ys.len(), xs.len(), "series {name} length mismatch");
        let mut row = vec![name.clone()];
        row.extend(ys.iter().map(|y| format!("{y:.3}")));
        t.push_row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_the_maximum() {
        let chart = bar_chart(
            &[("a".into(), 1.0), ("bb".into(), 2.0), ("c".into(), 0.0)],
            10,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains(&"#".repeat(10)));
        assert!(lines[0].contains(&"#".repeat(5)));
        assert!(!lines[2].contains('#'));
        // labels padded to the same width
        assert_eq!(lines[0].find('|').unwrap(), lines[1].find('|').unwrap());
    }

    #[test]
    fn empty_chart_is_empty() {
        assert!(bar_chart(&[], 10).is_empty());
    }

    #[test]
    fn series_table_has_one_row_per_series() {
        let text = series_table(
            "K",
            &["1".into(), "2".into()],
            &[
                ("KGreedy".into(), vec![1.0, 2.0]),
                ("MQB".into(), vec![1.0, 1.1]),
            ],
        );
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("KGreedy"));
        assert!(text.contains("1.100"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn series_length_must_match_x_axis() {
        series_table("K", &["1".into()], &[("a".into(), vec![1.0, 2.0])]);
    }
}
